//! The ioco implementation relation and its decision procedure for
//! finite models.
//!
//! `i ioco s` iff for every suspension trace σ of the specification `s`,
//! `out(i after σ) ⊆ out(s after σ)` — outputs (and quiescence) of the
//! implementation are always allowed by the specification.

use crate::lts::{Event, Lts, LtsStateId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// A witness that an implementation is **not** ioco-conforming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IocoViolation {
    /// The suspension trace after which the violation occurs.
    pub trace: Vec<Event>,
    /// The offending implementation observation.
    pub observed: Event,
    /// What the specification allows at that point.
    pub allowed: BTreeSet<Event>,
}

impl std::fmt::Display for IocoViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let trace: Vec<String> = self.trace.iter().map(ToString::to_string).collect();
        let allowed: Vec<String> = self.allowed.iter().map(ToString::to_string).collect();
        write!(
            f,
            "after ⟨{}⟩ the implementation may produce {}, but the specification allows only {{{}}}",
            trace.join(" "),
            self.observed,
            allowed.join(", ")
        )
    }
}

/// Decides `imp ioco spec` for finite LTSs by a joint breadth-first
/// search over the two suspension automata, following the suspension
/// traces of the specification.
///
/// Returns the shortest violation if one exists.
///
/// The ioco testing hypothesis assumes `imp` is input-enabled on the
/// specification's input alphabet; this function does not require it —
/// inputs refused by the implementation simply truncate those branches —
/// but [`Lts::is_input_enabled`] can check it separately.
pub fn check_ioco(imp: &Lts, spec: &Lts) -> Result<(), IocoViolation> {
    type Pair = (BTreeSet<LtsStateId>, BTreeSet<LtsStateId>);
    let start: Pair = (imp.initial_set(), spec.initial_set());
    let mut seen: HashSet<Pair> = HashSet::new();
    let mut queue: VecDeque<(Pair, Vec<Event>)> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back((start, Vec::new()));

    while let Some(((i_set, s_set), trace)) = queue.pop_front() {
        // 1. Outputs: everything the implementation can observe must be
        //    allowed by the specification.
        let i_out = imp.out_set(&i_set);
        let s_out = spec.out_set(&s_set);
        for e in &i_out {
            if !s_out.contains(e) {
                return Err(IocoViolation {
                    trace,
                    observed: e.clone(),
                    allowed: s_out,
                });
            }
        }
        // 2. Extend the trace: inputs of the specification and common
        //    observations.
        for a in spec.enabled_inputs(&s_set) {
            let e = Event::Input(a);
            let s_next = spec.after_event(&s_set, &e);
            let i_next = imp.after_event(&i_set, &e);
            if i_next.is_empty() {
                // Implementation refuses the input: the hypothesis is
                // violated, but ioco itself only ranges over traces the
                // implementation can follow.
                continue;
            }
            push(&mut seen, &mut queue, (i_next, s_next), &trace, e);
        }
        for e in i_out {
            // Outputs the implementation can produce (all spec-allowed by
            // step 1); follow them on both sides.
            let s_next = spec.after_event(&s_set, &e);
            let i_next = imp.after_event(&i_set, &e);
            if i_next.is_empty() {
                continue; // δ with no quiescent impl state cannot persist
            }
            push(&mut seen, &mut queue, (i_next, s_next), &trace, e);
        }
    }
    Ok(())
}

#[allow(clippy::type_complexity)]
fn push(
    seen: &mut HashSet<(BTreeSet<LtsStateId>, BTreeSet<LtsStateId>)>,
    queue: &mut VecDeque<((BTreeSet<LtsStateId>, BTreeSet<LtsStateId>), Vec<Event>)>,
    pair: (BTreeSet<LtsStateId>, BTreeSet<LtsStateId>),
    trace: &[Event],
    e: Event,
) {
    if seen.insert(pair.clone()) {
        let mut t = trace.to_vec();
        t.push(e);
        queue.push_back((pair, t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::Label;

    /// Specification: coin? then coffee! (tea is not allowed).
    fn spec() -> Lts {
        let mut l = Lts::new();
        let s0 = l.state("idle");
        let s1 = l.state("paid");
        l.transition(s0, Label::input("coin"), s1);
        l.transition(s1, Label::output("coffee"), s0);
        l
    }

    /// A conforming implementation (input-enabled).
    fn good_impl() -> Lts {
        let mut l = Lts::new();
        let s0 = l.state("idle");
        let s1 = l.state("paid");
        l.transition(s0, Label::input("coin"), s1);
        l.transition(s1, Label::input("coin"), s1); // swallow extra coins
        l.transition(s1, Label::output("coffee"), s0);
        l
    }

    /// A mutant that may produce tea.
    fn tea_mutant() -> Lts {
        let mut l = good_impl();
        let s1 = crate::lts::LtsStateId(1);
        let s0 = crate::lts::LtsStateId(0);
        l.transition(s1, Label::output("tea"), s0);
        l
    }

    /// A mutant that may refuse to produce anything after coin
    /// (unexpected quiescence).
    fn silent_mutant() -> Lts {
        let mut l = Lts::new();
        let s0 = l.state("idle");
        let s1 = l.state("paid");
        let dead = l.state("dead");
        l.transition(s0, Label::input("coin"), s1);
        l.transition(s0, Label::input("coin"), dead);
        l.transition(s1, Label::input("coin"), s1);
        l.transition(dead, Label::input("coin"), dead);
        l.transition(s1, Label::output("coffee"), s0);
        l
    }

    #[test]
    fn conforming_implementation_passes() {
        assert!(check_ioco(&good_impl(), &spec()).is_ok());
    }

    #[test]
    fn identity_conforms() {
        assert!(check_ioco(&spec(), &spec()).is_ok());
    }

    #[test]
    fn tea_mutant_caught() {
        let v = check_ioco(&tea_mutant(), &spec()).unwrap_err();
        assert_eq!(v.observed, Event::Output("tea".to_owned()));
        assert_eq!(v.trace, vec![Event::Input("coin".to_owned())]);
        assert!(v.to_string().contains("tea"));
    }

    #[test]
    fn unexpected_quiescence_caught() {
        let v = check_ioco(&silent_mutant(), &spec()).unwrap_err();
        assert_eq!(v.observed, Event::Delta);
    }

    #[test]
    fn partial_specs_allow_extra_inputs() {
        // The implementation handles an input the spec never mentions:
        // irrelevant for ioco (spec traces only).
        let mut imp = good_impl();
        let s0 = crate::lts::LtsStateId(0);
        imp.transition(s0, Label::input("token"), s0);
        assert!(check_ioco(&imp, &spec()).is_ok());
    }

    #[test]
    fn nondeterministic_spec_allows_either_output() {
        let mut spec2 = spec();
        let s1 = crate::lts::LtsStateId(1);
        let s0 = crate::lts::LtsStateId(0);
        spec2.transition(s1, Label::output("tea"), s0);
        // Now the tea mutant conforms.
        assert!(check_ioco(&tea_mutant(), &spec2).is_ok());
    }
}
