//! # tempo — quantitative modeling and analysis of embedded systems
//!
//! `tempo-core` is the facade of the **tempo** toolkit, a Rust
//! reproduction of the tool landscape surveyed in Bozga, David,
//! Hartmanns, Hermanns, Larsen, Legay and Tretmans, *State-of-the-Art
//! Tools and Techniques for Quantitative Modeling and Analysis of
//! Embedded Systems*, DATE 2012. What makes these tools unique is their
//! ability to deal with both **timing** and **stochastic** aspects; the
//! toolkit mirrors the paper's four pillars:
//!
//! | paper tool | module | what it does |
//! |------------|--------|--------------|
//! | UPPAAL | [`ta`] (+ [`dbm`], [`expr`]) | symbolic model checking of timed-automata networks: `E<>`, `A[]`, leads-to, deadlock-freedom |
//! | UPPAAL-CORA | [`cora`] | minimum-cost reachability for priced timed automata |
//! | UPPAAL-TIGA | [`tiga`] | winning-strategy synthesis for timed games |
//! | UPPAAL-SMC | [`smc`] | statistical model checking under the paper's stochastic semantics |
//! | ECDAR | [`ecdar`] | timed I/O automata: refinement, consistency, structural & logical composition |
//! | MODEST toolset | [`modest`] (+ [`mdp`]) | one formalism, three solutions: `mctau` (TA over-approximation), `mcpta` (PTA → MDP, PRISM-style), `modes` (simulation) |
//! | BIP / D-Finder | [`bip`] | component-based design, compositional deadlock detection, safety-controller synthesis |
//! | TorX / TRON | [`ioco`] | model-based testing: ioco and rtioco, test generation and online testing |
//! | — (cross-cutting) | [`witness`] | concrete trace realization, per-engine certificates, independent replay validation |
//!
//! ## Quickstart
//!
//! ```
//! use tempo_core::ta::{NetworkBuilder, ModelChecker, StateFormula, ClockAtom};
//!
//! // A lamp that must dim within 5 time units of being switched on.
//! let mut b = NetworkBuilder::new();
//! let x = b.clock("x");
//! let mut lamp = b.automaton("Lamp");
//! let off = lamp.location("Off");
//! let on = lamp.location_with_invariant("On", vec![ClockAtom::le(x, 5)]);
//! lamp.edge(off, on).reset(x, 0).done();
//! lamp.edge(on, off).guard_clock(ClockAtom::ge(x, 1)).done();
//! let lamp_id = lamp.done();
//! let net = b.build();
//!
//! let mut mc = ModelChecker::new(&net);
//! assert!(mc.reachable(&StateFormula::at(lamp_id, on)).reachable);
//! let (deadlock_free, _) = mc.deadlock_free();
//! assert!(deadlock_free.holds());
//! ```
//!
//! The `tempo-models` crate contains the paper's complete examples
//! (train-gate, BRP, DALA, testing models); the `examples/` directory of
//! the repository reproduces every table and figure of the paper's
//! evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The BIP component framework, D-Finder and controller synthesis.
pub use tempo_bip as bip;
/// Worker-pool configuration and deterministic parallel helpers shared
/// by the analysis engines (thread-count knob, budget splitting,
/// seed-stream derivation).
pub use tempo_conc as conc;
/// Priced timed automata and minimum-cost reachability (UPPAAL-CORA).
pub use tempo_cora as cora;
/// Difference-bound matrices and federations (zone algebra).
pub use tempo_dbm as dbm;
/// Timed I/O automata, refinement and composition (ECDAR).
pub use tempo_ecdar as ecdar;
/// Bounded-integer data language (variables, expressions, updates).
pub use tempo_expr as expr;
/// Abstract-interpretation dataflow passes: LU clock bounds, variable
/// ranges, cone-of-influence slicing support.
pub use tempo_flow as flow;
/// Model-based testing: ioco and rtioco.
pub use tempo_ioco as ioco;
/// The `tempo-lang` textual frontend: parser, machine IR, elaboration
/// onto every engine substrate, pretty-printer, corpus headers.
pub use tempo_lang as lang;
/// Static model analysis: lint rules over TA networks, BIP systems and
/// MODEST models, plus the `check_*_first` gates used by the engines.
pub use tempo_lint as lint;
/// Markov decision processes and value iteration (PRISM-style backend).
pub use tempo_mdp as mdp;
/// The MODEST process language and its three analysis backends.
pub use tempo_modest as modest;
/// Resource budgets, graceful exhaustion and run reports shared by all
/// analysis engines ([`obs::Budget`], [`obs::Outcome`], [`obs::RunReport`]).
pub use tempo_obs as obs;
/// Priced statistical model checking and importance-splitting
/// rare-event simulation (UPPAAL-CORA costs × UPPAAL-SMC runs, `modes`'
/// rare-event mode).
pub use tempo_rare as rare;
/// Stochastic semantics and statistical model checking (UPPAAL-SMC).
pub use tempo_smc as smc;
/// Multi-tenant concurrent analysis service with a certified,
/// content-addressed verdict cache ([`svc::AnalysisService`]).
pub use tempo_svc as svc;
/// Timed-automata networks and the symbolic model checker (UPPAAL).
pub use tempo_ta as ta;
/// Timed games and strategy synthesis (UPPAAL-TIGA).
pub use tempo_tiga as tiga;
/// Concrete trace realization, per-engine certificates and the
/// independent cross-engine replay validator.
pub use tempo_witness as witness;
