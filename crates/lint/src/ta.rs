//! Lint rules over networks of timed automata (`TA001`–`TA008`).

use crate::LintReport;
use std::collections::HashSet;
use tempo_dbm::{Clock, Dbm};
use tempo_obs::Diagnostic;
use tempo_ta::{Automaton, ChannelKind, Network, SyncDir};

/// Runs every TA rule over the network and collects the findings.
#[must_use]
pub fn check_network(net: &Network) -> LintReport {
    let mut diagnostics = Vec::new();
    unreachable_locations(net, &mut diagnostics);
    contradictory_guards(net, &mut diagnostics);
    unmatched_channels(net, &mut diagnostics);
    clock_usage(net, &mut diagnostics);
    dead_variable_writes(net, &mut diagnostics);
    zeno_candidates(net, &mut diagnostics);
    symmetry_near_misses(net, &mut diagnostics);
    LintReport { diagnostics }
}

/// TA001: locations with no path from the initial location in the
/// automaton's (guard-oblivious) edge graph can never be entered.
fn unreachable_locations(net: &Network, out: &mut Vec<Diagnostic>) {
    for a in net.automata() {
        let mut seen = vec![false; a.locations.len()];
        let mut stack = vec![a.initial.index()];
        seen[a.initial.index()] = true;
        while let Some(l) = stack.pop() {
            for e in a.edges.iter().filter(|e| e.from.index() == l) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    stack.push(e.to.index());
                }
            }
        }
        for (i, l) in a.locations.iter().enumerate() {
            if !seen[i] {
                out.push(Diagnostic::warning(
                    "TA001",
                    Some(&format!("{}.{}", a.name, l.name)),
                    "location is unreachable from the initial location",
                ));
            }
        }
    }
}

/// TA002: an edge whose clock guard has an empty intersection with its
/// source-location invariant can never fire — the model author wrote a
/// contradiction. Checked exactly with a DBM.
fn contradictory_guards(net: &Network, out: &mut Vec<Diagnostic>) {
    for a in net.automata() {
        for (k, e) in a.edges.iter().enumerate() {
            let mut zone = Dbm::universe(net.dim());
            for atom in a.locations[e.from.index()]
                .invariant
                .iter()
                .chain(&e.guard_clocks)
            {
                zone.constrain(atom.i, atom.j, atom.bound);
            }
            if zone.is_empty() {
                out.push(Diagnostic::error(
                    "TA002",
                    Some(&format!("{}.{}", a.name, a.locations[e.from.index()].name)),
                    format!(
                        "guard of edge #{k} to {} contradicts the source invariant \
                         (the conjunction is empty); the edge can never fire",
                        a.locations[e.to.index()].name
                    ),
                ));
            }
        }
    }
}

/// TA003: a channel whose sends can never meet a receiver (or vice
/// versa). Binary channels need both directions; broadcast receivers
/// need at least one sender; a channel used by nobody is dead weight.
fn unmatched_channels(net: &Network, out: &mut Vec<Diagnostic>) {
    for (c, ch) in net.channels().iter().enumerate() {
        let mut sends = 0usize;
        let mut recvs = 0usize;
        for a in net.automata() {
            for e in &a.edges {
                if let Some(sync) = &e.sync {
                    if sync.channel.index() == c {
                        match sync.dir {
                            SyncDir::Send => sends += 1,
                            SyncDir::Recv => recvs += 1,
                        }
                    }
                }
            }
        }
        let problem = match (sends, recvs, ch.kind) {
            (0, 0, _) => Some("channel is declared but never used"),
            (_, 0, ChannelKind::Binary) => {
                Some("channel is sent on but never received; senders block forever")
            }
            (0, _, _) => Some("channel is received on but never sent; receivers block forever"),
            _ => None,
        };
        if let Some(msg) = problem {
            out.push(Diagnostic::warning("TA003", Some(&ch.name), msg));
        }
    }
}

/// TA004/TA005: clocks never read (dead — active-clock reduction removes
/// them) and clocks read but never reset (they drift unbounded, which is
/// usually a forgotten reset unless the clock measures global time).
fn clock_usage(net: &Network, out: &mut Vec<Diagnostic>) {
    let dim = net.dim();
    let mut read = vec![false; dim];
    let mut reset = vec![false; dim];
    for a in net.automata() {
        for l in &a.locations {
            for atom in &l.invariant {
                read[atom.i.index()] = true;
                read[atom.j.index()] = true;
            }
        }
        for e in &a.edges {
            for atom in &e.guard_clocks {
                read[atom.i.index()] = true;
                read[atom.j.index()] = true;
            }
            for (c, _) in &e.resets {
                reset[c.index()] = true;
            }
        }
    }
    for (i, name) in net.clock_names().iter().enumerate() {
        let c = Clock(i + 1);
        if !read[c.index()] {
            out.push(Diagnostic::warning(
                "TA004",
                Some(name),
                "clock is never read by any guard or invariant; \
                 active-clock reduction removes it from the analysis",
            ));
        } else if !reset[c.index()] {
            out.push(Diagnostic::warning(
                "TA005",
                Some(name),
                "clock is read but never reset; it measures global time \
                 and grows without bound",
            ));
        }
    }
}

/// TA008: variables that are written somewhere but lie outside the
/// cone-of-influence closure of every observable expression (data
/// guards, synchronization indices, clock-reset values). The check is
/// semantic, not syntactic: a variable read only by updates of *other*
/// dead variables is still dead — no value it ever takes can influence
/// the behaviour, and query-directed slicing freezes it.
fn dead_variable_writes(net: &Network, out: &mut Vec<Diagnostic>) {
    for id in tempo_ta::flow::dead_variables(net) {
        out.push(Diagnostic::warning(
            "TA008",
            Some(&net.decls().info(id).name),
            "variable is written but never read on any path to a guard, \
             synchronization index or clock reset; its updates cannot \
             influence the behaviour (dead code, or a forgotten guard)",
        ));
    }
}

/// TA006: a cycle of purely internal (non-synchronizing) edges on which
/// no clock is both reset and bounded below by `>= 1` admits runs that
/// take infinitely many transitions in bounded time (Zeno). Cycles that
/// synchronize are skipped: their progress may come from the partner.
fn zeno_candidates(net: &Network, out: &mut Vec<Diagnostic>) {
    for a in net.automata() {
        for scc in internal_sccs(a) {
            // Edges fully inside the SCC, internal only.
            let edges: Vec<usize> = a
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| {
                    e.sync.is_none() && scc.contains(&e.from.index()) && scc.contains(&e.to.index())
                })
                .map(|(k, _)| k)
                .collect();
            // A singleton SCC is only a cycle if it has a self-loop.
            if scc.len() == 1 && !edges.iter().any(|&k| a.edges[k].from == a.edges[k].to) {
                continue;
            }
            if edges.is_empty() {
                continue;
            }
            let mut reset_clocks = HashSet::new();
            let mut bounded_clocks = HashSet::new();
            for &k in &edges {
                let e = &a.edges[k];
                for (c, _) in &e.resets {
                    reset_clocks.insert(c.index());
                }
                for atom in &e.guard_clocks {
                    // A lower bound `x >= c` (c >= 1) is encoded as
                    // `0 - x <= -c` (or `< -c`).
                    if atom.i.is_ref() && !atom.j.is_ref() && atom.bound.constant() <= -1 {
                        bounded_clocks.insert(atom.j.index());
                    }
                }
            }
            if reset_clocks.intersection(&bounded_clocks).next().is_none() {
                let mut names: Vec<&str> =
                    scc.iter().map(|&l| a.locations[l].name.as_str()).collect();
                names.sort_unstable();
                out.push(Diagnostic::warning(
                    "TA006",
                    Some(&a.name),
                    format!(
                        "internal cycle through {{{}}} never enforces time progress \
                         (no clock is both reset and bounded below on it): Zeno candidate",
                        names.join(", ")
                    ),
                ));
            }
        }
    }
}

/// TA007: automata that look like replicated instances of one template
/// (same location count and edge/channel shape) but break the symmetry
/// checks — an edited guard on one copy, a shared "private" clock, a
/// duplicated identity constant. The modeller probably intended the
/// components to be interchangeable; the edit silently costs the up-to-
/// `k!` state-space division of template-symmetry reduction.
fn symmetry_near_misses(net: &Network, out: &mut Vec<Diagnostic>) {
    for miss in tempo_ta::near_miss_orbits(net) {
        out.push(Diagnostic::warning(
            "TA007",
            Some(&miss.automata.join(", ")),
            format!(
                "components look like instances of one template but cannot \
                 form a symmetry orbit: {}",
                miss.reason
            ),
        ));
    }
}

/// Strongly connected components of the automaton's location graph
/// restricted to internal (non-synchronizing) edges, via Kosaraju.
fn internal_sccs(a: &Automaton) -> Vec<HashSet<usize>> {
    let n = a.locations.len();
    let mut fwd = vec![Vec::new(); n];
    let mut bwd = vec![Vec::new(); n];
    for e in a.edges.iter().filter(|e| e.sync.is_none()) {
        fwd[e.from.index()].push(e.to.index());
        bwd[e.to.index()].push(e.from.index());
    }
    // First pass: finish order on the forward graph.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Iterative DFS with an explicit "exit" marker.
        let mut stack = vec![(start, false)];
        while let Some((v, exiting)) = stack.pop() {
            if exiting {
                order.push(v);
                continue;
            }
            if seen[v] {
                continue;
            }
            seen[v] = true;
            stack.push((v, true));
            for &w in &fwd[v] {
                if !seen[w] {
                    stack.push((w, false));
                }
            }
        }
    }
    // Second pass: components on the transposed graph.
    let mut comp = vec![usize::MAX; n];
    let mut sccs: Vec<HashSet<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = sccs.len();
        let mut members = HashSet::new();
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(v) = stack.pop() {
            members.insert(v);
            for &w in &bwd[v] {
                if comp[w] == usize::MAX {
                    comp[w] = id;
                    stack.push(w);
                }
            }
        }
        sccs.push(members);
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintConfig;
    use tempo_ta::{ClockAtom, NetworkBuilder};

    fn codes(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn unreachable_location_is_flagged_once() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        let island = a.location("Island");
        a.edge(l0, l1)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        a.edge(l1, l0)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        a.edge(island, l0).done();
        a.done();
        let report = check_network(&b.build());
        assert_eq!(codes(&report), vec!["TA001"]);
        assert_eq!(report.diagnostics[0].component.as_deref(), Some("A.Island"));
    }

    #[test]
    fn contradictory_guard_is_an_error() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 3)]);
        let l1 = a.location("L1");
        // Guard x >= 5 can never hold under invariant x <= 3.
        a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 5)).done();
        a.edge(l0, l1)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .done();
        a.edge(l1, l0).guard_clock(ClockAtom::ge(x, 1)).done();
        a.done();
        let net = b.build();
        let report = check_network(&net);
        assert_eq!(codes(&report), vec!["TA002"]);
        // TA002 blocks even in the default (non-strict) configuration.
        assert!(crate::check_network_first(&net, &LintConfig::default()).is_err());
    }

    #[test]
    fn unmatched_channel_variants() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let oneway = b.channel("oneway");
        let unused = b.channel("unused");
        let _ = unused;
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(x, 0)
            .send(oneway)
            .done();
        a.done();
        let report = check_network(&b.build());
        assert_eq!(codes(&report), vec!["TA003", "TA003"]);
    }

    #[test]
    fn dead_and_drifting_clocks() {
        let mut b = NetworkBuilder::new();
        let dead = b.clock("dead");
        let drift = b.clock("drift");
        let pace = b.clock("pace");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        // `dead` is reset but never read; `drift` is read but never
        // reset; `pace` keeps the self-loop non-Zeno.
        a.edge(l0, l0)
            .guard_clock(ClockAtom::ge(drift, 1))
            .guard_clock(ClockAtom::ge(pace, 1))
            .reset(dead, 0)
            .reset(pace, 0)
            .done();
        a.done();
        let report = check_network(&b.build());
        assert_eq!(codes(&report), vec!["TA004", "TA005"]);
    }

    #[test]
    fn write_only_variable_is_flagged_and_a_read_silences_it() {
        use tempo_expr::{Expr, Stmt};
        let build = |ghost_guards: bool| {
            let mut b = NetworkBuilder::new();
            let x = b.clock("x");
            let obs = b.decls_mut().int("obs", 0, 9);
            let ghost = b.decls_mut().int("ghost", 0, 9);
            let mut a = b.automaton("A");
            let l0 = a.location("L0");
            let mut e = a
                .edge(l0, l0)
                .guard_clock(ClockAtom::ge(x, 1))
                .reset(x, 0)
                .update(Stmt::assign(ghost, Expr::var(obs) + Expr::konst(1)));
            e = if ghost_guards {
                // Reading `ghost` in a guard pulls it into the cone.
                e.guard_data(Expr::var(ghost).lt(Expr::konst(5)))
            } else {
                e.guard_data(Expr::var(obs).lt(Expr::konst(5)))
            };
            e.done();
            a.done();
            b.build()
        };
        let report = check_network(&build(false));
        assert_eq!(codes(&report), vec!["TA008"]);
        assert_eq!(report.diagnostics[0].component.as_deref(), Some("ghost"));
        assert!(check_network(&build(true)).is_clean());
    }

    #[test]
    fn zeno_cycle_is_flagged_and_progress_silences_it() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Busy");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        // Cycle with an upper bound but no lower bound: Zeno.
        a.edge(l0, l1).guard_clock(ClockAtom::le(x, 5)).done();
        a.edge(l1, l0).reset(x, 0).done();
        a.done();
        let report = check_network(&b.build());
        assert_eq!(codes(&report), vec!["TA006"]);

        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Paced");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 1)).done();
        a.edge(l1, l0).reset(x, 0).done();
        a.done();
        assert!(check_network(&b.build()).is_clean());
    }

    /// Two trains on a `go[i]` channel array plus a gate; `bounds` gives
    /// each train's approach guard, `gate_guard` an optional clock read
    /// by the gate (breaking clock privacy when it names a train clock).
    fn two_trains(bounds: [i64; 2], gate_reads_x0: bool) -> tempo_ta::Network {
        use tempo_expr::Expr;
        let mut b = NetworkBuilder::new();
        let go = b.channel_array("go", 2, tempo_ta::ChannelKind::Binary, false);
        let mut clocks = Vec::new();
        for (i, bound) in bounds.into_iter().enumerate() {
            let x = b.clock(&format!("x{i}"));
            clocks.push(x);
            let mut a = b.automaton(&format!("Train{i}"));
            let far = a.location("Far");
            let near = a.location("Near");
            a.edge(far, near)
                .guard_clock(ClockAtom::ge(x, bound))
                .reset(x, 0)
                .send_indexed(go, Expr::konst(i as i64))
                .done();
            a.edge(near, far).guard_clock(ClockAtom::ge(x, 1)).done();
            a.done();
        }
        let mut g = b.automaton("Gate");
        let g0 = g.location("G0");
        let mut e = g.edge(g0, g0).recv_indexed(go, Expr::konst(0));
        if gate_reads_x0 {
            e = e.guard_clock(ClockAtom::ge(clocks[0], 1));
        }
        e.done();
        let mut e = g.edge(g0, g0).recv_indexed(go, Expr::konst(1));
        if gate_reads_x0 {
            e = e.guard_clock(ClockAtom::ge(clocks[0], 1));
        }
        e.done();
        g.done();
        b.build()
    }

    #[test]
    fn near_miss_symmetry_is_flagged_and_true_orbits_are_not() {
        // Identical except for one guard constant: TA007.
        let report = check_network(&two_trains([5, 7], false));
        let ta007: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "TA007")
            .collect();
        assert_eq!(ta007.len(), 1);
        assert_eq!(ta007[0].component.as_deref(), Some("Train0, Train1"));

        // Equal guards: a genuine orbit, no TA007.
        let report = check_network(&two_trains([5, 5], false));
        assert!(report.diagnostics.iter().all(|d| d.code != "TA007"));
    }

    #[test]
    fn shared_member_clock_breaks_the_orbit() {
        // The gate reads Train0's clock: x0 is no longer private.
        let report = check_network(&two_trains([5, 5], true));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "TA007" && d.message.contains("x0")));
    }

    #[test]
    fn scalar_channel_twins_get_the_array_slot_hint() {
        let mut b = NetworkBuilder::new();
        let go = b.channel("go");
        for i in 0..2 {
            let x = b.clock(&format!("x{i}"));
            let mut a = b.automaton(&format!("Worker{i}"));
            let l0 = a.location("L0");
            a.edge(l0, l0)
                .guard_clock(ClockAtom::ge(x, 1))
                .reset(x, 0)
                .send(go)
                .done();
            a.done();
        }
        let mut g = b.automaton("Sink");
        let g0 = g.location("G0");
        g.edge(g0, g0).recv(go).done();
        g.done();
        let report = check_network(&b.build());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "TA007" && d.message.contains("channel-array slot")));
    }

    #[test]
    fn synchronizing_cycles_are_not_zeno_candidates() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let c = b.channel("c");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).send(c).reset(x, 0).done();
        a.done();
        let mut p = b.automaton("B");
        let m0 = p.location("M0");
        p.edge(m0, m0)
            .recv(c)
            .guard_clock(ClockAtom::ge(x, 1))
            .done();
        p.done();
        assert!(check_network(&b.build()).is_clean());
    }
}
