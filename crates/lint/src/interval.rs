//! Conservative interval arithmetic over [`Expr`]s, driven by the
//! declared `int [lo, hi]` ranges — the engine behind `MOD002`.

use std::collections::HashMap;
use tempo_expr::{BinOp, Decls, Expr, UnOp, VarId};

/// A conservative over-approximation of an expression's value range,
/// with flags for the two failure modes a lint cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound (saturated on overflow).
    pub lo: i64,
    /// Inclusive upper bound (saturated on overflow).
    pub hi: i64,
    /// Whether exact 64-bit evaluation could overflow somewhere inside
    /// the expression.
    pub overflow: bool,
    /// Whether a division or remainder could see a zero divisor.
    pub div_by_zero: bool,
}

impl Interval {
    fn exact(lo: i64, hi: i64) -> Interval {
        Interval {
            lo,
            hi,
            overflow: false,
            div_by_zero: false,
        }
    }

    fn boolean() -> Interval {
        Interval::exact(0, 1)
    }

    fn carrying(self, other: Interval, lo: i64, hi: i64, overflow: bool) -> Interval {
        Interval {
            lo,
            hi,
            overflow: self.overflow || other.overflow || overflow,
            div_by_zero: self.div_by_zero || other.div_by_zero,
        }
    }
}

/// Per-variable range refinements extracted from enclosing guards.
pub type Env = HashMap<VarId, (i64, i64)>;

/// The declared range of `id`, refined by `env`.
fn var_range(decls: &Decls, env: &Env, id: VarId) -> (i64, i64) {
    let info = decls.info(id);
    env.get(&id).copied().unwrap_or((info.lo, info.hi))
}

/// Evaluates a conservative interval for `e` under the declared ranges
/// refined by `env`.
pub fn eval(e: &Expr, decls: &Decls, env: &Env) -> Interval {
    match e {
        Expr::Const(v) => Interval::exact(*v, *v),
        Expr::Var(id) => {
            let (lo, hi) = var_range(decls, env, *id);
            Interval::exact(lo, hi)
        }
        Expr::Index(id, index) => {
            // The element range is the declared range; the index itself
            // is checked by the caller (out-of-bounds is a runtime
            // EvalError, not an overflow).
            let inner = eval(index, decls, env);
            let info = decls.info(*id);
            Interval {
                lo: info.lo,
                hi: info.hi,
                overflow: inner.overflow,
                div_by_zero: inner.div_by_zero,
            }
        }
        // No enclosing `select` ranges are available statically.
        Expr::Select(_) => Interval::exact(i64::MIN, i64::MAX),
        Expr::Unary(op, inner) => {
            let i = eval(inner, decls, env);
            match op {
                UnOp::Not => Interval { lo: 0, hi: 1, ..i },
                UnOp::Neg => {
                    let (lo, o1) = neg(i.hi);
                    let (hi, o2) = neg(i.lo);
                    Interval {
                        lo,
                        hi,
                        overflow: i.overflow || o1 || o2,
                        div_by_zero: i.div_by_zero,
                    }
                }
            }
        }
        Expr::Binary(op, l, r) => {
            let a = eval(l, decls, env);
            let b = eval(r, decls, env);
            match op {
                BinOp::Add => combine(a, b, |x, y| x + y),
                BinOp::Sub => combine(a, b, |x, y| x - y),
                BinOp::Mul => combine(a, b, |x, y| x * y),
                BinOp::Min => a.carrying(b, a.lo.min(b.lo), a.hi.min(b.hi), false),
                BinOp::Max => a.carrying(b, a.lo.max(b.lo), a.hi.max(b.hi), false),
                BinOp::Div => divide(a, b),
                BinOp::Rem => remainder(a, b),
                BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or => Interval {
                    overflow: a.overflow || b.overflow,
                    div_by_zero: a.div_by_zero || b.div_by_zero,
                    ..Interval::boolean()
                },
            }
        }
    }
}

fn neg(v: i64) -> (i64, bool) {
    v.checked_neg().map_or((i64::MAX, true), |n| (n, false))
}

/// Interval of a monotone-in-endpoints operation: the min/max over the
/// four endpoint combinations, computed exactly in `i128` (a 64-bit
/// add, subtract or multiply always fits) and clamped back to `i64`.
/// Exact arithmetic saturates each bound in the direction it actually
/// left the representable range — a per-operand sign heuristic gets
/// subtraction wrong (`5 - i64::MIN` overflows *upward*) and makes the
/// result interval exclude the value the model would wrap to.
fn combine(a: Interval, b: Interval, op: fn(i128, i128) -> i128) -> Interval {
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    for x in [a.lo, a.hi] {
        for y in [b.lo, b.hi] {
            let v = op(i128::from(x), i128::from(y));
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let overflow = lo < i128::from(i64::MIN) || hi > i128::from(i64::MAX);
    a.carrying(b, clamp64(lo), clamp64(hi), overflow)
}

fn clamp64(v: i128) -> i64 {
    i64::try_from(v).unwrap_or(if v > 0 { i64::MAX } else { i64::MIN })
}

fn divide(a: Interval, b: Interval) -> Interval {
    let zero_divisor = b.lo <= 0 && b.hi >= 0;
    // Candidate divisors: the endpoints and ±1 (where the quotient
    // magnitude peaks), excluding zero.
    let divisors: Vec<i64> = [b.lo, b.hi, -1, 1]
        .into_iter()
        .filter(|&d| d != 0 && d >= b.lo && d <= b.hi)
        .collect();
    if divisors.is_empty() {
        // Division always traps; the value range is irrelevant.
        return Interval {
            lo: 0,
            hi: 0,
            overflow: a.overflow || b.overflow,
            div_by_zero: true,
        };
    }
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    let mut overflow = false;
    for x in [a.lo, a.hi] {
        for &d in &divisors {
            match x.checked_div(d) {
                Some(v) => {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                None => {
                    overflow = true; // i64::MIN / -1
                    lo = i64::MIN;
                    hi = i64::MAX;
                }
            }
        }
    }
    Interval {
        lo,
        hi,
        overflow: a.overflow || b.overflow || overflow,
        div_by_zero: a.div_by_zero || b.div_by_zero || zero_divisor,
    }
}

fn remainder(a: Interval, b: Interval) -> Interval {
    let zero_divisor = b.lo <= 0 && b.hi >= 0;
    // |x % d| < |d|, and the sign follows the dividend.
    let m =
        b.lo.saturating_abs()
            .max(b.hi.saturating_abs())
            .saturating_sub(1);
    let lo = if a.lo < 0 { -m } else { 0 };
    let hi = if a.hi > 0 { m } else { 0 };
    Interval {
        lo,
        hi,
        overflow: a.overflow || b.overflow,
        div_by_zero: a.div_by_zero || b.div_by_zero || zero_divisor,
    }
}

/// Narrows `env` with the comparisons of `guard` (conjunctions and
/// simple `var ⋈ const` / `const ⋈ var` atoms; anything else is ignored
/// — refinement is best-effort and only ever *shrinks* ranges).
pub fn refine(env: &mut Env, guard: &Expr, decls: &Decls) {
    let Expr::Binary(op, l, r) = guard else {
        return;
    };
    match (op, l.as_ref(), r.as_ref()) {
        (BinOp::And, _, _) => {
            refine(env, l, decls);
            refine(env, r, decls);
        }
        (_, Expr::Var(id), Expr::Const(c)) => narrow(env, decls, *id, *op, *c, false),
        (_, Expr::Const(c), Expr::Var(id)) => narrow(env, decls, *id, *op, *c, true),
        _ => {}
    }
}

fn narrow(env: &mut Env, decls: &Decls, id: VarId, op: BinOp, c: i64, flipped: bool) {
    let (mut lo, mut hi) = var_range(decls, env, id);
    // Normalize to `var ⋈ c`.
    let op = if flipped {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    } else {
        op
    };
    match op {
        BinOp::Lt => hi = hi.min(c.saturating_sub(1)),
        BinOp::Le => hi = hi.min(c),
        BinOp::Gt => lo = lo.max(c.saturating_add(1)),
        BinOp::Ge => lo = lo.max(c),
        BinOp::Eq => {
            lo = lo.max(c);
            hi = hi.min(c);
        }
        _ => return,
    }
    env.insert(id, (lo, hi));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_mul_track_declared_ranges() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 10);
        let e = Expr::var(a) * Expr::konst(3) + Expr::konst(1);
        let i = eval(&e, &d, &Env::new());
        assert_eq!((i.lo, i.hi), (1, 31));
        assert!(!i.overflow && !i.div_by_zero);
    }

    #[test]
    fn multiplication_of_huge_ranges_flags_overflow() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 4_000_000_000);
        let e = Expr::var(a) * Expr::var(a);
        let i = eval(&e, &d, &Env::new());
        assert!(i.overflow);
        assert_eq!(i.hi, i64::MAX);
    }

    #[test]
    fn subtraction_overflow_saturates_in_the_right_direction() {
        let mut d = Decls::new();
        let big = d.int("big", i64::MIN, -4_000_000_000);
        // 5 - big overflows *upward* at big = i64::MIN: the result range
        // must be [4e9 + 5, i64::MAX], not include spurious negatives.
        let e = Expr::konst(5) - Expr::var(big);
        let i = eval(&e, &d, &Env::new());
        assert!(i.overflow);
        assert_eq!(i.lo, 4_000_000_005);
        assert_eq!(i.hi, i64::MAX);
    }

    #[test]
    fn division_by_possibly_zero_is_flagged() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 5);
        let i = eval(
            &Expr::konst(10).bin(BinOp::Div, Expr::var(a)),
            &d,
            &Env::new(),
        );
        assert!(i.div_by_zero);
        let j = eval(
            &Expr::konst(10).bin(BinOp::Div, Expr::konst(2)),
            &d,
            &Env::new(),
        );
        assert!(!j.div_by_zero);
        assert_eq!((j.lo, j.hi), (5, 5));
    }

    #[test]
    fn guard_refinement_narrows() {
        let mut d = Decls::new();
        let a = d.int("a", 0, 100);
        let mut env = Env::new();
        refine(
            &mut env,
            &(Expr::var(a).lt(Expr::konst(10)) & Expr::var(a).ge(Expr::konst(2))),
            &d,
        );
        assert_eq!(env[&a], (2, 9));
        let i = eval(&(Expr::var(a) + Expr::konst(1)), &d, &env);
        assert_eq!((i.lo, i.hi), (3, 10));
    }
}
