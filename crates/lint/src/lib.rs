//! # tempo-lint — static analysis of models before they reach an engine
//!
//! A diagnostics framework plus a registry of static passes ("lint
//! rules") over the three modelling substrates of the workspace:
//! networks of timed automata ([`check_network`]), BIP systems
//! ([`check_bip`]) and MODEST models ([`check_modest`]). Each pass
//! reports [`Diagnostic`]s with a stable rule code; the `*_first`
//! variants turn blocking findings into a typed [`LintError`] so that
//! engines can *refuse* a broken model instead of panicking or silently
//! producing a meaningless verdict.
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | TA001  | warning  | location unreachable in the automaton's edge graph |
//! | TA002  | error    | edge guard contradicts its source invariant (DBM-empty) |
//! | TA003  | warning  | channel without matching sender/receiver |
//! | TA004  | warning  | clock never read by any guard or invariant |
//! | TA005  | warning  | clock read but never reset (unbounded drift) |
//! | TA006  | warning  | internal cycle with no time progress (Zeno candidate) |
//! | TA007  | warning  | near-miss symmetry orbit: template instances that differ |
//! | TA008  | warning  | variable written but never read on a path to an observable expression |
//! | BIP001 | warning  | port bound to no interaction |
//! | BIP002 | warning  | component state unreachable in the transition graph |
//! | MOD001 | mixed    | duplicate/shadowed identifier (warning), call of an undefined process (error) |
//! | MOD002 | mixed    | 64-bit-overflow-prone expression (warning), assignment definitely out of range (error) |
//! | MOD003 | warning  | `when` guard provably false under range analysis (unreachable branch) |
//! | CORA001 | error   | negative location cost rate or edge cost on a priced network |
//!
//! ## Example
//!
//! ```
//! use tempo_ta::NetworkBuilder;
//!
//! let mut b = NetworkBuilder::new();
//! let _dead = b.clock("dead"); // never read: TA004
//! let mut a = b.automaton("A");
//! let l0 = a.location("L0");
//! a.edge(l0, l0).reset(_dead, 0).done();
//! a.done();
//! let net = b.build();
//!
//! let report = tempo_lint::check_network(&net);
//! assert!(report.diagnostics.iter().any(|d| d.code == "TA004"));
//! // Warnings do not block engines by default:
//! assert!(tempo_lint::check_network_first(&net, &tempo_lint::LintConfig::default()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bip;
mod interval;
mod modest;
mod ta;

pub use bip::check_bip;
pub use modest::check_modest;
pub use ta::check_network;
pub use tempo_obs::{Diagnostic, LintError, Severity};

/// How strictly a `*_first` entry point treats the lint report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// When set, warnings also block (the default blocks on
    /// [`Severity::Error`] only).
    pub warnings_as_errors: bool,
}

impl LintConfig {
    /// The strict configuration: any finding blocks.
    #[must_use]
    pub fn strict() -> Self {
        LintConfig {
            warnings_as_errors: true,
        }
    }
}

/// The outcome of running a lint pass over one model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in rule-code order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether the pass found nothing at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any finding blocks under `config`.
    #[must_use]
    pub fn has_blocking(&self, config: &LintConfig) -> bool {
        if config.warnings_as_errors {
            !self.diagnostics.is_empty()
        } else {
            self.errors().next().is_some()
        }
    }

    /// Converts the report into the typed refusal of a `check_first`
    /// entry point: `Ok` with the non-blocking findings, or `Err` with
    /// the blocking ones.
    ///
    /// # Errors
    ///
    /// Returns a [`LintError`] carrying every blocking diagnostic.
    pub fn into_result(self, config: &LintConfig) -> Result<LintReport, LintError> {
        if self.has_blocking(config) {
            let blocking = if config.warnings_as_errors {
                self.diagnostics
            } else {
                self.errors().cloned().collect()
            };
            Err(LintError::new(blocking))
        } else {
            Ok(self)
        }
    }
}

/// One entry of the rule registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Stable code (`"TA002"`).
    pub code: &'static str,
    /// Severity the rule reports at (its worst case for mixed rules).
    pub severity: Severity,
    /// One-line description.
    pub description: &'static str,
}

/// The registry of every lint rule, in code order.
#[must_use]
pub fn rules() -> &'static [Rule] {
    const RULES: &[Rule] = &[
        Rule {
            code: "TA001",
            severity: Severity::Warning,
            description: "location unreachable in the automaton's edge graph",
        },
        Rule {
            code: "TA002",
            severity: Severity::Error,
            description: "edge guard contradicts its source-location invariant",
        },
        Rule {
            code: "TA003",
            severity: Severity::Warning,
            description: "channel without matching sender/receiver",
        },
        Rule {
            code: "TA004",
            severity: Severity::Warning,
            description: "clock never read by any guard or invariant",
        },
        Rule {
            code: "TA005",
            severity: Severity::Warning,
            description: "clock read but never reset",
        },
        Rule {
            code: "TA006",
            severity: Severity::Warning,
            description: "internal cycle with no enforced time progress (Zeno candidate)",
        },
        Rule {
            code: "TA007",
            severity: Severity::Warning,
            description: "components almost form a symmetry orbit but an edit breaks it",
        },
        Rule {
            code: "TA008",
            severity: Severity::Warning,
            description: "variable written but never read on a path to an observable expression",
        },
        Rule {
            code: "BIP001",
            severity: Severity::Warning,
            description: "port bound to no interaction",
        },
        Rule {
            code: "BIP002",
            severity: Severity::Warning,
            description: "component state unreachable in the transition graph",
        },
        Rule {
            code: "MOD001",
            severity: Severity::Error,
            description: "duplicate or shadowed identifier; undefined process call",
        },
        Rule {
            code: "MOD002",
            severity: Severity::Error,
            description: "overflow-prone integer expression or out-of-range assignment",
        },
        Rule {
            code: "MOD003",
            severity: Severity::Warning,
            description: "guard provably false under range analysis (unreachable branch)",
        },
        Rule {
            code: "CORA001",
            severity: Severity::Error,
            description: "negative location cost rate or edge cost (cost-bounded queries assume monotone cost)",
        },
    ];
    RULES
}

/// Lints a network of timed automata and refuses on blocking findings.
///
/// This is the `check_first` entry point for the symbolic engines of
/// `tempo-ta` ([`ModelChecker`](tempo_ta::ModelChecker), `leads_to`):
/// call it before construction. Engines that additionally require
/// digital-clocks-closed models (cora, tiga, smc) wrap this with
/// [`DigitalExplorer::try_new`](tempo_ta::DigitalExplorer::try_new) in
/// their own `check_first` methods.
///
/// # Errors
///
/// Returns a [`LintError`] with every blocking diagnostic under
/// `config`; never panics.
pub fn check_network_first(
    net: &tempo_ta::Network,
    config: &LintConfig,
) -> Result<LintReport, LintError> {
    check_network(net).into_result(config)
}

/// Lints a BIP system and refuses on blocking findings.
///
/// # Errors
///
/// Returns a [`LintError`] with every blocking diagnostic under
/// `config`; never panics.
pub fn check_bip_first(
    sys: &tempo_bip::BipSystem,
    config: &LintConfig,
) -> Result<LintReport, LintError> {
    check_bip(sys).into_result(config)
}

/// Lints a MODEST model and refuses on blocking findings.
///
/// # Errors
///
/// Returns a [`LintError`] with every blocking diagnostic under
/// `config`; never panics.
pub fn check_modest_first(
    model: &tempo_modest::ModestModel,
    config: &LintConfig,
) -> Result<LintReport, LintError> {
    check_modest(model).into_result(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique() {
        let codes: Vec<&str> = rules().iter().map(|r| r.code).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(codes.len(), dedup.len(), "registry codes unique");
    }

    #[test]
    fn strict_config_blocks_on_warnings() {
        let report = LintReport {
            diagnostics: vec![Diagnostic::warning("TA004", None, "w")],
        };
        assert!(!report.has_blocking(&LintConfig::default()));
        assert!(report.has_blocking(&LintConfig::strict()));
        let err = report.into_result(&LintConfig::strict()).unwrap_err();
        assert_eq!(err.diagnostics.len(), 1);
    }
}
