//! Lint rules over BIP systems (`BIP001`, `BIP002`).

use crate::LintReport;
use tempo_bip::BipSystem;
use tempo_obs::Diagnostic;

/// Runs every BIP rule over the system and collects the findings.
#[must_use]
pub fn check_bip(sys: &BipSystem) -> LintReport {
    let mut diagnostics = Vec::new();
    unbound_ports(sys, &mut diagnostics);
    unreachable_states(sys, &mut diagnostics);
    LintReport { diagnostics }
}

/// BIP001: a port that participates in no interaction can never fire, so
/// every transition labelled with it is dead — usually a forgotten
/// connector.
fn unbound_ports(sys: &BipSystem, out: &mut Vec<Diagnostic>) {
    for comp in sys.components() {
        for &port in &comp.ports {
            let bound = sys.interactions().iter().any(|i| i.ports.contains(&port));
            if !bound {
                // Port names are already component-qualified.
                out.push(Diagnostic::warning(
                    "BIP001",
                    Some(sys.port_name(port)),
                    "port participates in no interaction; \
                     its transitions can never fire",
                ));
            }
        }
    }
}

/// BIP002: a control location with no path from the component's initial
/// location in the (guard- and glue-oblivious) transition graph.
fn unreachable_states(sys: &BipSystem, out: &mut Vec<Diagnostic>) {
    for comp in sys.components() {
        let mut seen = vec![false; comp.states.len()];
        let mut stack = vec![comp.initial.0];
        seen[comp.initial.0] = true;
        while let Some(s) = stack.pop() {
            for t in comp.transitions.iter().filter(|t| t.from.0 == s) {
                if !seen[t.to.0] {
                    seen[t.to.0] = true;
                    stack.push(t.to.0);
                }
            }
        }
        for (i, name) in comp.states.iter().enumerate() {
            if !seen[i] {
                out.push(Diagnostic::warning(
                    "BIP002",
                    Some(&format!("{}.{name}", comp.name)),
                    "control location is unreachable from the initial location",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_bip::BipSystemBuilder;

    #[test]
    fn unbound_port_and_unreachable_state() {
        let mut b = BipSystemBuilder::new();
        let mut c = b.component("C");
        let s0 = c.state("S0");
        let s1 = c.state("Orphan");
        let p = c.port("work");
        let lonely = c.port("lonely");
        c.transition(s0, s0, p);
        c.transition(s1, s0, lonely);
        c.done();
        b.rendezvous("go", &[p]);
        let sys = b.build();
        let report = check_bip(&sys);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["BIP001", "BIP002"]);
        assert_eq!(report.diagnostics[0].component.as_deref(), Some("C.lonely"));
        assert_eq!(report.diagnostics[1].component.as_deref(), Some("C.Orphan"));
    }

    #[test]
    fn fully_glued_system_is_clean() {
        let mut b = BipSystemBuilder::new();
        let mut ping = b.component("Ping");
        let p0 = ping.state("P0");
        let hello = ping.port("hello");
        ping.transition(p0, p0, hello);
        ping.done();
        let mut pong = b.component("Pong");
        let q0 = pong.state("Q0");
        let world = pong.port("world");
        pong.transition(q0, q0, world);
        pong.done();
        b.rendezvous("greet", &[hello, world]);
        assert!(check_bip(&b.build()).is_clean());
    }
}
