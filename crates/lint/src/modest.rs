//! Lint rules over MODEST models (`MOD001`–`MOD003`).

use crate::interval::{self, Env};
use crate::LintReport;
use std::collections::HashMap;
use tempo_expr::{Decls, Expr};
use tempo_flow::Truth;
use tempo_modest::{Assignment, ModestModel, Process};
use tempo_obs::Diagnostic;

/// Runs every MODEST rule over the model and collects the findings.
#[must_use]
pub fn check_modest(model: &ModestModel) -> LintReport {
    let mut diagnostics = Vec::new();
    identifiers(model, &mut diagnostics);
    undefined_calls(model, &mut diagnostics);
    overflow_prone(model, &mut diagnostics);
    LintReport { diagnostics }
}

/// MOD001 (warning half): the model's namespaces — variables, clocks,
/// actions, processes — share one identifier space in the concrete
/// syntax, so a name declared twice shadows its earlier declaration.
fn identifiers(model: &ModestModel, out: &mut Vec<Diagnostic>) {
    let mut entries: Vec<(&str, &'static str)> = Vec::new();
    for v in model.decls().vars() {
        entries.push((v.name.as_str(), "variable"));
    }
    for c in model.clock_names() {
        entries.push((c.as_str(), "clock"));
    }
    for a in model.actions() {
        entries.push((a.as_str(), "action"));
    }
    for (name, _) in model.processes() {
        entries.push((name.as_str(), "process"));
    }
    let mut seen: HashMap<&str, &'static str> = HashMap::new();
    for (name, kind) in entries {
        match seen.get(name) {
            Some(&prev) if prev == kind => out.push(Diagnostic::warning(
                "MOD001",
                Some(name),
                format!("duplicate {kind} declaration; the later one shadows the earlier"),
            )),
            Some(&prev) => out.push(Diagnostic::warning(
                "MOD001",
                Some(name),
                format!(
                    "identifier is declared as both {prev} and {kind}; \
                     the later declaration shadows the earlier one"
                ),
            )),
            None => {
                seen.insert(name, kind);
            }
        }
    }
}

/// MOD001 (error half): a tail call of a process that is never defined
/// crashes compilation; so does a `system` line naming one.
fn undefined_calls(model: &ModestModel, out: &mut Vec<Diagnostic>) {
    for (name, body) in model.processes() {
        walk_calls(body, &mut |callee| {
            if model.process(callee).is_none() {
                out.push(Diagnostic::error(
                    "MOD001",
                    Some(name),
                    format!("calls undefined process `{callee}`"),
                ));
            }
        });
    }
    for name in model.system_processes() {
        if model.process(name).is_none() {
            out.push(Diagnostic::error(
                "MOD001",
                Some(name),
                "system composition names an undefined process",
            ));
        }
    }
}

fn walk_calls(p: &Process, visit: &mut impl FnMut(&str)) {
    match p {
        Process::Stop | Process::Skip => {}
        Process::Act(_, _, then) => walk_calls(then, visit),
        Process::Palt(_, branches) => {
            for b in branches {
                walk_calls(&b.then, visit);
            }
        }
        Process::Alt(choices) => {
            for c in choices {
                walk_calls(c, visit);
            }
        }
        Process::When(_, p) | Process::WhenClock(_, p) | Process::Invariant(_, p) => {
            walk_calls(p, visit)
        }
        Process::Call(name) => visit(name),
    }
}

/// MOD002: interval arithmetic over the declared `int [lo, hi]` ranges,
/// refined by enclosing `when` guards. Flags expressions that can
/// overflow 64-bit arithmetic or divide by zero (warnings) and
/// assignments or indices that are *always* outside their declared range
/// (errors — "may exceed" alone is deliberately not reported: bounded
/// protocols routinely guard increments by means invisible to a static
/// range analysis).
fn overflow_prone(model: &ModestModel, out: &mut Vec<Diagnostic>) {
    for (name, body) in model.processes() {
        walk_ranges(body, model.decls(), &Env::new(), name, out);
    }
}

fn walk_ranges(p: &Process, decls: &Decls, env: &Env, proc_name: &str, out: &mut Vec<Diagnostic>) {
    match p {
        Process::Stop | Process::Skip | Process::Call(_) => {}
        Process::Act(_, assignments, then) => {
            let next = check_assignments(assignments, decls, env, proc_name, out);
            walk_ranges(then, decls, &next, proc_name, out);
        }
        Process::Palt(_, branches) => {
            for b in branches {
                let next = check_assignments(&b.assignments, decls, env, proc_name, out);
                walk_ranges(&b.then, decls, &next, proc_name, out);
            }
        }
        Process::Alt(choices) => {
            for c in choices {
                walk_ranges(c, decls, env, proc_name, out);
            }
        }
        Process::When(guard, p) => {
            check_expr(guard, decls, env, proc_name, "guard", out);
            // MOD003: `Truth::False` is a *proof* that no valuation in
            // the declared ranges (refined by the enclosing guards)
            // satisfies the guard — the branch is semantically dead.
            // Don't descend: findings under an unreachable guard would
            // be noise. A warning, not an error: provably-false guards
            // are routine in parameter instantiations (`i < N-1` with
            // N = 1) and the slicing pass exploits them as dead edges,
            // so they must not block admission by default (matching
            // TA008 dead-variable).
            if guard_truth(guard, decls, env) == Truth::False {
                out.push(Diagnostic::warning(
                    "MOD003",
                    Some(proc_name),
                    "`when` guard is provably false under the declared \
                     variable ranges; the branch is unreachable",
                ));
                return;
            }
            let mut refined = env.clone();
            interval::refine(&mut refined, guard, decls);
            walk_ranges(p, decls, &refined, proc_name, out);
        }
        Process::WhenClock(_, p) | Process::Invariant(_, p) => {
            walk_ranges(p, decls, env, proc_name, out);
        }
    }
}

/// Three-valued truth of `guard` under the lint refinement environment,
/// via the semantic interval domain of `tempo-flow` (which, unlike the
/// overflow-tracking domain above, decides comparisons).
fn guard_truth(guard: &Expr, decls: &Decls, env: &Env) -> Truth {
    let fenv: tempo_flow::Env = env
        .iter()
        .map(|(&id, &(lo, hi))| (id, tempo_flow::Interval::new(lo, hi)))
        .collect();
    tempo_flow::truth(guard, decls, &fenv, &[])
}

/// Checks one assignment block and returns the environment for the
/// continuation: assigned variables lose their guard refinement (their
/// new value is no longer constrained by the enclosing `when`).
fn check_assignments(
    assignments: &[Assignment],
    decls: &Decls,
    env: &Env,
    proc_name: &str,
    out: &mut Vec<Diagnostic>,
) -> Env {
    let mut next = env.clone();
    for a in assignments {
        match a {
            Assignment::Clock(_, _) => {}
            Assignment::Var(id, e) => {
                check_expr(e, decls, &next, proc_name, "assignment", out);
                let iv = interval::eval(e, decls, &next);
                let info = decls.info(*id);
                if iv.hi < info.lo || iv.lo > info.hi {
                    out.push(Diagnostic::error(
                        "MOD002",
                        Some(proc_name),
                        format!(
                            "assignment to `{}` is always outside its declared range \
                             [{}, {}] (value in [{}, {}])",
                            info.name, info.lo, info.hi, iv.lo, iv.hi
                        ),
                    ));
                }
                next.remove(id);
            }
            Assignment::ArrayElem(id, index, e) => {
                check_expr(index, decls, &next, proc_name, "array index", out);
                check_expr(e, decls, &next, proc_name, "assignment", out);
                let ix = interval::eval(index, decls, &next);
                let info = decls.info(*id);
                let len = info.len as i64;
                if ix.hi < 0 || ix.lo >= len {
                    out.push(Diagnostic::error(
                        "MOD002",
                        Some(proc_name),
                        format!(
                            "index into `{}` is always out of bounds \
                             (index in [{}, {}], length {len})",
                            info.name, ix.lo, ix.hi
                        ),
                    ));
                }
                let iv = interval::eval(e, decls, &next);
                if iv.hi < info.lo || iv.lo > info.hi {
                    out.push(Diagnostic::error(
                        "MOD002",
                        Some(proc_name),
                        format!(
                            "assignment to `{}[..]` is always outside its declared \
                             range [{}, {}] (value in [{}, {}])",
                            info.name, info.lo, info.hi, iv.lo, iv.hi
                        ),
                    ));
                }
                next.remove(id);
            }
        }
    }
    next
}

fn check_expr(
    e: &Expr,
    decls: &Decls,
    env: &Env,
    proc_name: &str,
    what: &str,
    out: &mut Vec<Diagnostic>,
) {
    let iv = interval::eval(e, decls, env);
    if iv.overflow {
        out.push(Diagnostic::warning(
            "MOD002",
            Some(proc_name),
            format!("{what} expression may overflow 64-bit integer arithmetic"),
        ));
    }
    if iv.div_by_zero {
        out.push(Diagnostic::warning(
            "MOD002",
            Some(proc_name),
            format!("{what} expression may divide by zero"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_obs::Severity;

    fn codes(report: &LintReport) -> Vec<(&str, Severity)> {
        report
            .diagnostics
            .iter()
            .map(|d| (d.code.as_str(), d.severity))
            .collect()
    }

    #[test]
    fn shadowed_identifier_is_warned() {
        let mut m = ModestModel::new();
        let _c = m.clock("t");
        let a = m.action("t"); // shadows the clock
        m.define("P", Process::act(a, Process::stop()));
        m.system(&["P"]);
        let report = check_modest(&m);
        assert_eq!(codes(&report), vec![("MOD001", Severity::Warning)]);
    }

    #[test]
    fn undefined_call_is_an_error() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        m.define("P", Process::act(a, Process::call("Ghost")));
        m.system(&["P"]);
        let report = check_modest(&m);
        assert_eq!(codes(&report), vec![("MOD001", Severity::Error)]);
    }

    #[test]
    fn guarded_increment_is_clean_unguarded_constant_is_not() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let x = m.decls_mut().int("x", 0, 5);
        // when (x < 5) a {= x = x + 1 =} — in range thanks to the guard.
        m.define(
            "P",
            Process::when(
                Expr::var(x).lt(Expr::konst(5)),
                Process::act_with(
                    a,
                    vec![Assignment::Var(x, Expr::var(x) + Expr::konst(1))],
                    Process::call("P"),
                ),
            ),
        );
        m.system(&["P"]);
        assert!(check_modest(&m).is_clean());

        // x = 99 is always out of [0, 5].
        let mut m = ModestModel::new();
        let a = m.action("a");
        let x = m.decls_mut().int("x", 0, 5);
        m.define(
            "P",
            Process::act_with(
                a,
                vec![Assignment::Var(x, Expr::konst(99))],
                Process::stop(),
            ),
        );
        m.system(&["P"]);
        let report = check_modest(&m);
        assert_eq!(codes(&report), vec![("MOD002", Severity::Error)]);
    }

    #[test]
    fn provably_false_guard_is_an_unreachable_branch_warning() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let x = m.decls_mut().int("x", 0, 5);
        // x > 100 can never hold for x in [0, 5].
        m.define(
            "P",
            Process::when(
                Expr::var(x).gt(Expr::konst(100)),
                Process::act(a, Process::stop()),
            ),
        );
        m.system(&["P"]);
        let report = check_modest(&m);
        assert_eq!(codes(&report), vec![("MOD003", Severity::Warning)]);
    }

    #[test]
    fn guard_refinement_feeds_nested_unreachability() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let x = m.decls_mut().int("x", 0, 100);
        // Outer guard x < 3 narrows x to [0, 2]; the nested x > 50 is
        // then provably false even though it is satisfiable on its own.
        m.define(
            "P",
            Process::when(
                Expr::var(x).lt(Expr::konst(3)),
                Process::when(
                    Expr::var(x).gt(Expr::konst(50)),
                    Process::act(a, Process::stop()),
                ),
            ),
        );
        m.system(&["P"]);
        let report = check_modest(&m);
        assert_eq!(codes(&report), vec![("MOD003", Severity::Warning)]);

        // The satisfiable nested guard alone is clean.
        let mut m = ModestModel::new();
        let a = m.action("a");
        let x = m.decls_mut().int("x", 0, 100);
        m.define(
            "P",
            Process::when(
                Expr::var(x).gt(Expr::konst(50)),
                Process::act(a, Process::stop()),
            ),
        );
        m.system(&["P"]);
        assert!(check_modest(&m).is_clean());
    }

    #[test]
    fn large_constant_subtraction_reports_a_range_error() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let big = m.decls_mut().int("big", i64::MIN, -4_000_000_000);
        let out = m.decls_mut().int("out", 0, 100);
        // 5 - big is at least 4e9 + 5, far above out's range; before the
        // exact-i128 interval fix the wrong-direction saturation made
        // the value interval straddle the range and the error vanished.
        m.define(
            "P",
            Process::act_with(
                a,
                vec![Assignment::Var(out, Expr::konst(5) - Expr::var(big))],
                Process::stop(),
            ),
        );
        m.system(&["P"]);
        let report = check_modest(&m);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "MOD002" && d.severity == Severity::Error));
    }

    #[test]
    fn overflow_prone_product_is_warned() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let big = m.decls_mut().int("big", 0, 4_000_000_000);
        let out = m.decls_mut().int("out", 0, i64::MAX);
        m.define(
            "P",
            Process::act_with(
                a,
                vec![Assignment::Var(out, Expr::var(big) * Expr::var(big))],
                Process::stop(),
            ),
        );
        m.system(&["P"]);
        let report = check_modest(&m);
        assert_eq!(codes(&report), vec![("MOD002", Severity::Warning)]);
    }
}
