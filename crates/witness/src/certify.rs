//! Per-engine certificates and certified entry points.
//!
//! A *certificate* is a self-contained object that lets a checker — one
//! sharing no code with the engine that produced the verdict — confirm
//! the verdict against the raw network semantics:
//!
//! * [`TraceCertificate`] — a realized concrete run witnessing a
//!   reachability verdict or a leads-to counterexample.
//! * [`CostCertificate`] — a cost-annotated digital run whose step costs
//!   sum exactly to the minimum reported by the CORA engine.
//! * [`StrategyCertificate`] — the full closed loop of a synthesized
//!   TIGA strategy, certified exhaustively (every environment branch).
//! * [`SchedulerCertificate`] — a memoryless scheduler whose induced
//!   Markov chain reproduces the value reported by MDP value iteration.
//! * [`RunCertificate`] — simulated SMC runs, each replayed as a legal
//!   timed run of the network.
//!
//! The `certified_*` functions wrap the engines' governed entry points:
//! they run the analysis, build the certificate, validate it, and stamp
//! the certificate's serialized size and validation time into the
//! returned [`RunReport`].

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use tempo_cora::{MinCostResult, PricedNetwork};
use tempo_mdp::{Mdp, Opt, Quantitative};
use tempo_modest::Mcpta;
use tempo_obs::{Budget, ExploreConfig, Outcome};
use tempo_smc::{Estimate, RatePolicy, Run, Simulator, StatisticalChecker};
use tempo_ta::{AutomatonId, DigitalState, Network, ReachResult, StateFormula, Stats, Verdict};
use tempo_tiga::{GameResult, GameSolver, Strategy, StrategyMove};

use crate::error::WitnessError;
use crate::realize::realize;
use crate::semantics::{RState, Replayer};
use crate::trace::{ConcreteState, ConcreteTrace, JointAction, TraceSemantics};
use crate::validate::{replay, replay_internal, replay_run};

/// Return shape of every `certified_*` wrapper: the engine's governed
/// [`Outcome`] paired with the certificate (entry points whose engines
/// may answer without a witness wrap the certificate in `Option`).
pub type Certified<T, C> = Result<(Outcome<T>, C), WitnessError>;

/// Any certificate, for uniform serialization ([`crate::format`]).
#[derive(Debug, Clone)]
pub enum Certificate {
    /// A realized concrete trace (reachability / liveness).
    Trace(TraceCertificate),
    /// A cost-annotated optimal run (CORA).
    Cost(CostCertificate),
    /// A closed-loop strategy table (TIGA).
    Strategy(StrategyCertificate),
    /// A memoryless scheduler with its claimed value (MDP / mcpta).
    Scheduler(SchedulerCertificate),
    /// A batch of stochastic runs (SMC).
    Runs(RunCertificate),
    /// A batch of priced stochastic runs with claimed costs (rare-event
    /// / priced SMC).
    PricedRuns(PricedRunCertificate),
}

/// A concrete trace witnessing that some state satisfying the goal is
/// reachable (or, for liveness counterexamples, that the engine's
/// symbolic counterexample prefix is a real run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCertificate {
    /// The realized run.
    pub trace: ConcreteTrace,
}

impl TraceCertificate {
    /// Validates the certificate: the trace replays against the raw
    /// network semantics and ends in a state satisfying `goal`.
    ///
    /// # Errors
    ///
    /// A typed [`WitnessError`] naming the first violated rule.
    pub fn validate(&self, net: &Network, goal: &StateFormula) -> Result<(), WitnessError> {
        replay(net, &self.trace, Some(goal))
    }
}

/// A cost-annotated digital run: the per-step costs must sum exactly to
/// the total, and every step cost must equal the cost recomputed from
/// the network's rates and edge prices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostCertificate {
    /// The optimal run (digital semantics, denominator 1).
    pub trace: ConcreteTrace,
    /// The claimed cost of each step, aligned with `trace.steps`.
    pub step_costs: Vec<i64>,
    /// The claimed total (the engine's reported minimum).
    pub total: i64,
}

impl CostCertificate {
    /// Builds the certificate by re-executing the engine's structured
    /// step list on the full (unreduced) network.
    ///
    /// # Errors
    ///
    /// [`WitnessError`] if the recorded steps do not execute — which
    /// would indicate an engine bug, not a caller error.
    pub fn build(pnet: &PricedNetwork, res: &MinCostResult) -> Result<Self, WitnessError> {
        let r = Replayer::new(pnet.network(), TraceSemantics::Digital, 1);
        let mut state = r.initial();
        let mut steps = Vec::with_capacity(res.steps.len());
        let mut step_costs = Vec::with_capacity(res.steps.len());
        for (i, cs) in res.steps.iter().enumerate() {
            let next = match &cs.action {
                None => r
                    .tick(&state)
                    .ok_or(WitnessError::DelayForbidden { step: i })?,
                Some(mv) => {
                    let action = JointAction {
                        label: mv.label.clone(),
                        participants: mv.participants.clone(),
                    };
                    r.check_action(&state, &action, i)?;
                    r.apply_action(&state, &action, i)?
                }
            };
            steps.push(crate::trace::ConcreteStep {
                delay: i64::from(cs.action.is_none()),
                action: cs.action.as_ref().map(|mv| JointAction {
                    label: mv.label.clone(),
                    participants: mv.participants.clone(),
                }),
                state: r.to_concrete(&next),
            });
            step_costs.push(cs.cost);
            state = next;
        }
        Ok(CostCertificate {
            trace: ConcreteTrace {
                semantics: TraceSemantics::Digital,
                denom: 1,
                initial: r.to_concrete(&r.initial()),
                steps,
            },
            step_costs,
            total: res.cost,
        })
    }

    /// Validates the certificate: the run replays, its final state
    /// satisfies `goal`, every step cost matches the cost recomputed
    /// from rates/edge prices, and the step costs sum to the total.
    ///
    /// # Errors
    ///
    /// [`WitnessError::CostMismatch`] on any cost disagreement (step
    /// index `usize::MAX` flags the total), plus the replay errors of
    /// [`crate::replay`].
    pub fn validate(&self, pnet: &PricedNetwork, goal: &StateFormula) -> Result<(), WitnessError> {
        if self.trace.semantics != TraceSemantics::Digital {
            return Err(WitnessError::Malformed(
                "cost certificates use the digital semantics".to_owned(),
            ));
        }
        if self.step_costs.len() != self.trace.steps.len() {
            return Err(WitnessError::Malformed(format!(
                "{} step costs for {} steps",
                self.step_costs.len(),
                self.trace.steps.len()
            )));
        }
        let net = pnet.network();
        let (r, states) = replay_internal(net, &self.trace)?;
        let last = states.last().expect("at least the initial state");
        if !r.eval_formula(last, goal) {
            return Err(WitnessError::GoalNotSatisfied);
        }
        for (i, (step, &recorded)) in self.trace.steps.iter().zip(&self.step_costs).enumerate() {
            let pre = &states[i];
            let rate_sum: i64 = pre
                .locs
                .iter()
                .enumerate()
                .map(|(ai, &l)| pnet.rate(AutomatonId(ai), l))
                .sum();
            let action_cost: i64 = step.action.as_ref().map_or(0, |a| {
                a.participants
                    .iter()
                    .map(|&(ai, ei, _)| pnet.edge_cost(AutomatonId(ai), ei))
                    .sum()
            });
            let recomputed = step.delay * rate_sum + action_cost;
            if recomputed != recorded {
                return Err(WitnessError::CostMismatch {
                    step: i,
                    recorded,
                    recomputed,
                });
            }
        }
        let sum: i64 = self.step_costs.iter().sum();
        if sum != self.total {
            return Err(WitnessError::CostMismatch {
                step: usize::MAX,
                recorded: self.total,
                recomputed: sum,
            });
        }
        Ok(())
    }
}

/// The objective a strategy certificate claims to enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameObjective {
    /// Reach a state satisfying the formula, whatever the environment
    /// does.
    Reach,
    /// Avoid states satisfying the formula forever.
    Avoid,
}

/// The full closed loop of a synthesized strategy: every state reachable
/// under the prescriptions (against *every* environment move) and the
/// prescription taken there (`None` = wait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyCertificate {
    /// The claimed objective.
    pub objective: GameObjective,
    /// `(state, prescription)` in closed-loop discovery order.
    pub prescriptions: Vec<(ConcreteState, Option<JointAction>)>,
}

/// DFS colors for closed-loop reachability certification.
#[derive(Clone, Copy, PartialEq)]
enum Color {
    /// On the DFS stack — hitting a grey state closes a cycle.
    Grey,
    /// Fully certified: every branch from here reaches the goal.
    Black,
}

/// Expands one state of the reach-certification DFS: goal states
/// terminate the branch (black), others get a frame with their
/// closed-loop successors.
fn push_reach_frame(
    r: &Replayer<'_>,
    goal: &StateFormula,
    table: &HashMap<&ConcreteState, &Option<JointAction>>,
    state: ConcreteState,
    colors: &mut HashMap<ConcreteState, Color>,
    stack: &mut Vec<(ConcreteState, Vec<ConcreteState>, usize)>,
) -> Result<(), WitnessError> {
    let rstate = r.decode(&state)?;
    if r.eval_formula(&rstate, goal) {
        colors.insert(state, Color::Black);
        return Ok(());
    }
    let Some(prescription) = table.get(&state) else {
        return Err(WitnessError::StrategyIncomplete {
            state: format!("{state:?}"),
        });
    };
    let succs = closed_loop_successors(r, &rstate, prescription.as_ref())?;
    if succs.is_empty() {
        return Err(WitnessError::GoalAvoidable {
            state: format!("{state:?}"),
        });
    }
    let succs: Vec<ConcreteState> = succs.iter().map(|s| r.to_concrete(s)).collect();
    colors.insert(state.clone(), Color::Grey);
    stack.push((state, succs, 0));
    Ok(())
}

/// The closed-loop successors of a digital game state under a
/// prescription: the prescribed controllable move (if acting) or the
/// tick (if waiting), plus every uncontrollable environment move.
fn closed_loop_successors(
    r: &Replayer<'_>,
    state: &RState,
    prescription: Option<&JointAction>,
) -> Result<Vec<RState>, WitnessError> {
    let mut succs = Vec::new();
    match prescription {
        Some(action) => {
            let enabled = r.enumerate_moves(state);
            let Some((_, controllable)) = enabled
                .iter()
                .find(|(cand, _)| cand.participants == action.participants)
            else {
                return Err(WitnessError::PrescriptionUnsound {
                    state: format!("{state:?}"),
                    reason: "prescribed move is not enabled".to_owned(),
                });
            };
            if !controllable {
                return Err(WitnessError::PrescriptionUnsound {
                    state: format!("{state:?}"),
                    reason: "prescribed move is not controllable".to_owned(),
                });
            }
            succs.push(r.apply_action(state, action, 0).map_err(|e| {
                WitnessError::PrescriptionUnsound {
                    state: format!("{state:?}"),
                    reason: e.to_string(),
                }
            })?);
        }
        None => {
            if let Some(next) = r.tick(state) {
                succs.push(next);
            }
        }
    }
    for (cand, controllable) in r.enumerate_moves(state) {
        if !controllable {
            succs.push(r.apply_action(state, &cand, 0).map_err(|e| {
                WitnessError::PrescriptionUnsound {
                    state: format!("{state:?}"),
                    reason: format!("environment move fails: {e}"),
                }
            })?);
        }
    }
    Ok(succs)
}

impl StrategyCertificate {
    /// Builds the certificate by walking the closed loop of `strategy`
    /// from the initial state over the full network, consulting the
    /// strategy for each state reached. For a reachability objective the
    /// walk stops at goal states; for safety it covers the whole closed
    /// loop (finite, since digital clocks are clamped).
    ///
    /// # Errors
    ///
    /// [`WitnessError::StrategyIncomplete`] if the closed loop escapes
    /// the strategy's domain.
    pub fn build(
        net: &Network,
        objective: GameObjective,
        formula: &StateFormula,
        strategy: &Strategy,
    ) -> Result<Self, WitnessError> {
        let r = Replayer::new(net, TraceSemantics::Digital, 1);
        let mut prescriptions = Vec::new();
        let mut seen: HashMap<ConcreteState, usize> = HashMap::new();
        let mut queue = vec![r.initial()];
        seen.insert(r.to_concrete(&queue[0]), 0);
        let mut head = 0;
        while head < queue.len() {
            let state = queue[head].clone();
            head += 1;
            if objective == GameObjective::Reach && r.eval_formula(&state, formula) {
                prescriptions.push((r.to_concrete(&state), None));
                continue;
            }
            let dstate = DigitalState {
                locs: state.locs.clone(),
                store: state.store.clone(),
                clocks: state.clocks.clone(),
            };
            let Some(mv) = strategy.decide(&dstate) else {
                return Err(WitnessError::StrategyIncomplete {
                    state: format!("{dstate:?}"),
                });
            };
            let prescription = match mv {
                StrategyMove::Wait => None,
                StrategyMove::Act(m) => Some(JointAction {
                    label: m.label.clone(),
                    participants: m.participants.clone(),
                }),
            };
            let succs = closed_loop_successors(&r, &state, prescription.as_ref())?;
            prescriptions.push((r.to_concrete(&state), prescription));
            for next in succs {
                if let Entry::Vacant(slot) = seen.entry(r.to_concrete(&next)) {
                    slot.insert(queue.len());
                    queue.push(next);
                }
            }
        }
        Ok(StrategyCertificate {
            objective,
            prescriptions,
        })
    }

    /// Exhaustively certifies the closed loop against the raw network
    /// semantics:
    ///
    /// * **Reach**: every infinite environment resolution hits the goal —
    ///   no reachable cycle or dead end avoids it
    ///   ([`WitnessError::GoalAvoidable`]).
    /// * **Avoid**: no reachable closed-loop state satisfies the formula
    ///   ([`WitnessError::BadStateReached`]); quiescent states are fine.
    ///
    /// In both cases every reachable state needs a prescription
    /// ([`WitnessError::StrategyIncomplete`]) and every prescription must
    /// be an enabled, controllable move
    /// ([`WitnessError::PrescriptionUnsound`]).
    ///
    /// # Errors
    ///
    /// The typed [`WitnessError`]s listed above.
    pub fn validate(&self, net: &Network, formula: &StateFormula) -> Result<(), WitnessError> {
        let r = Replayer::new(net, TraceSemantics::Digital, 1);
        let table: HashMap<&ConcreteState, &Option<JointAction>> =
            self.prescriptions.iter().map(|(s, p)| (s, p)).collect();
        match self.objective {
            GameObjective::Reach => self.validate_reach(&r, formula, &table),
            GameObjective::Avoid => self.validate_avoid(&r, formula, &table),
        }
    }

    /// Iterative DFS with colors: a grey hit is a goal-avoiding cycle, a
    /// successor-free non-goal state a goal-avoiding dead end.
    fn validate_reach(
        &self,
        r: &Replayer<'_>,
        goal: &StateFormula,
        table: &HashMap<&ConcreteState, &Option<JointAction>>,
    ) -> Result<(), WitnessError> {
        let mut colors: HashMap<ConcreteState, Color> = HashMap::new();
        // Stack of (state, successors, next successor index); pushing a
        // frame marks the state grey, popping it marks it black.
        let mut stack: Vec<(ConcreteState, Vec<ConcreteState>, usize)> = Vec::new();
        let init = r.to_concrete(&r.initial());
        push_reach_frame(r, goal, table, init, &mut colors, &mut stack)?;
        while let Some((state, succs, idx)) = stack.last_mut() {
            if *idx == succs.len() {
                colors.insert(state.clone(), Color::Black);
                stack.pop();
                continue;
            }
            let next = succs[*idx].clone();
            *idx += 1;
            match colors.get(&next) {
                Some(Color::Grey) => {
                    return Err(WitnessError::GoalAvoidable {
                        state: format!("{next:?}"),
                    });
                }
                Some(Color::Black) => {}
                None => push_reach_frame(r, goal, table, next, &mut colors, &mut stack)?,
            }
        }
        Ok(())
    }

    /// BFS over the closed loop: no reachable state may satisfy `bad`.
    fn validate_avoid(
        &self,
        r: &Replayer<'_>,
        bad: &StateFormula,
        table: &HashMap<&ConcreteState, &Option<JointAction>>,
    ) -> Result<(), WitnessError> {
        let init = r.to_concrete(&r.initial());
        let mut seen: HashMap<ConcreteState, ()> = HashMap::new();
        seen.insert(init.clone(), ());
        let mut queue = vec![init];
        let mut head = 0;
        while head < queue.len() {
            let state = queue[head].clone();
            head += 1;
            let rstate = r.decode(&state)?;
            if r.eval_formula(&rstate, bad) {
                return Err(WitnessError::BadStateReached {
                    state: format!("{state:?}"),
                });
            }
            let Some(prescription) = table.get(&state) else {
                return Err(WitnessError::StrategyIncomplete {
                    state: format!("{state:?}"),
                });
            };
            for next in closed_loop_successors(r, &rstate, prescription.as_ref())? {
                let key = r.to_concrete(&next);
                if !seen.contains_key(&key) {
                    seen.insert(key.clone(), ());
                    queue.push(key);
                }
            }
        }
        Ok(())
    }
}

/// A memoryless scheduler with the value it claims to achieve: fixing
/// the per-state action choices turns the MDP into a Markov chain whose
/// reachability probability the validator recomputes by power iteration
/// — independently of the engine's value iteration over all schedulers.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerCertificate {
    /// Optimization direction the engine ran.
    pub opt: Opt,
    /// The claimed value of the initial state.
    pub value: f64,
    /// Accepted absolute deviation between claimed and recomputed value.
    pub epsilon: f64,
    /// Chosen action index per state (`None` on absorbing states).
    pub choices: Vec<Option<usize>>,
    /// Goal membership per state.
    pub goal: Vec<bool>,
}

impl SchedulerCertificate {
    /// Wraps an engine result and its goal mask as a certificate.
    #[must_use]
    pub fn build(q: &Quantitative, goal: Vec<bool>, epsilon: f64) -> Self {
        SchedulerCertificate {
            opt: Opt::Max,
            value: q.initial_value,
            epsilon,
            choices: q.scheduler.clone(),
            goal,
        }
    }

    /// Same as [`SchedulerCertificate::build`] with an explicit
    /// direction recorded (the induced-chain check is identical; the
    /// direction documents what the value claims to be optimal for).
    #[must_use]
    pub fn build_with_opt(q: &Quantitative, opt: Opt, goal: Vec<bool>, epsilon: f64) -> Self {
        SchedulerCertificate {
            opt,
            ..Self::build(q, goal, epsilon)
        }
    }

    /// Validates the certificate against the MDP: the choices must be
    /// legal action indices, and the induced chain's reach probability
    /// from the initial state must match the claimed value within
    /// epsilon. The recomputation is a least-fixpoint power iteration
    /// starting from zero, so cycles in the chain converge to the true
    /// reach probability.
    ///
    /// # Errors
    ///
    /// [`WitnessError::Malformed`] on shape mismatches,
    /// [`WitnessError::PrescriptionUnsound`] on out-of-range choices and
    /// [`WitnessError::ValueMismatch`] when the recomputed probability
    /// deviates by more than epsilon.
    pub fn validate(&self, mdp: &Mdp) -> Result<(), WitnessError> {
        let n = mdp.num_states();
        if self.choices.len() != n || self.goal.len() != n {
            return Err(WitnessError::Malformed(format!(
                "certificate covers {} states, MDP has {n}",
                self.choices.len()
            )));
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(WitnessError::Malformed(format!(
                "invalid epsilon {}",
                self.epsilon
            )));
        }
        for (s, choice) in self.choices.iter().enumerate() {
            if let Some(c) = choice {
                let id = tempo_mdp::StateId(s);
                if *c >= mdp.actions(id).len() {
                    return Err(WitnessError::PrescriptionUnsound {
                        state: format!("state {s}"),
                        reason: format!("action index {c} out of range"),
                    });
                }
            }
        }
        let mut p: Vec<f64> = self.goal.iter().map(|&g| f64::from(u8::from(g))).collect();
        let tol = (self.epsilon * 1e-3).max(1e-12);
        for _ in 0..1_000_000 {
            let mut delta = 0.0_f64;
            for s in 0..n {
                if self.goal[s] {
                    continue;
                }
                let next = match self.choices[s] {
                    None => 0.0,
                    Some(c) => mdp.actions(tempo_mdp::StateId(s))[c]
                        .transitions
                        .iter()
                        .map(|&(t, pr)| pr * p[t.0])
                        .sum(),
                };
                delta = delta.max((next - p[s]).abs());
                p[s] = next;
            }
            if delta < tol {
                break;
            }
        }
        let recomputed = p[mdp.initial().0];
        if (recomputed - self.value).abs() > self.epsilon {
            return Err(WitnessError::ValueMismatch {
                reported: self.value,
                recomputed,
                epsilon: self.epsilon,
            });
        }
        Ok(())
    }
}

/// A batch of stochastic runs: the statistical verdict itself is not
/// re-derived (it is a confidence statement), but every exported run
/// must be a legal timed run of the network — the simulator cannot have
/// sampled through a guard, invariant or urgency violation.
#[derive(Debug, Clone)]
pub struct RunCertificate {
    /// The exported runs.
    pub runs: Vec<Run>,
}

impl RunCertificate {
    /// Validates every run with [`crate::replay_run`].
    ///
    /// # Errors
    ///
    /// The first failing run's typed [`WitnessError`].
    pub fn validate(&self, net: &Network) -> Result<(), WitnessError> {
        for run in &self.runs {
            replay_run(net, run)?;
        }
        Ok(())
    }
}

/// A batch of priced stochastic runs, each paired with the accumulated
/// cost the priced simulator claims for it. Validation replays every
/// run with its *recorded* synchronizations (a different move with the
/// same label cannot stand in) and re-sums the cost — delay times the
/// pre-state's location-rate sum, plus the participating edges' prices
/// — in recording order, so the claimed value must match bit for bit.
#[derive(Debug, Clone)]
pub struct PricedRunCertificate {
    /// The exported runs, with participants recorded per step.
    pub runs: Vec<Run>,
    /// The claimed accumulated cost of each run, aligned with `runs`.
    pub costs: Vec<f64>,
}

impl PricedRunCertificate {
    /// Validates every run with [`crate::replay_priced_run`] and checks
    /// the re-summed cost equals the claimed one exactly.
    ///
    /// # Errors
    ///
    /// The first failing run's typed [`WitnessError`];
    /// [`WitnessError::RunCostMismatch`] on any cost disagreement.
    pub fn validate(&self, pnet: &PricedNetwork) -> Result<(), WitnessError> {
        if self.costs.len() != self.runs.len() {
            return Err(WitnessError::Malformed(format!(
                "{} costs for {} runs",
                self.costs.len(),
                self.runs.len()
            )));
        }
        for (i, (run, &recorded)) in self.runs.iter().zip(&self.costs).enumerate() {
            let recomputed = crate::validate::replay_priced_run(pnet, run)?;
            if recomputed.to_bits() != recorded.to_bits() {
                return Err(WitnessError::RunCostMismatch {
                    run: i,
                    recorded,
                    recomputed,
                });
            }
        }
        Ok(())
    }
}

/// Serializes a certificate, validates the stated invariant that it
/// stays parseable, and stamps its size and the validation wall time
/// into the outcome's report.
fn stamp<T>(out: &mut Outcome<T>, cert: &Certificate, started: Instant) {
    let bytes = crate::format::render(cert).len() as u64;
    let (Outcome::Complete { report, .. } | Outcome::Exhausted { report, .. }) = out;
    report.certificate_bytes = bytes;
    report.certify_time = started.elapsed();
}

/// Reachability with a validated concrete witness: runs the symbolic
/// engine, realizes the symbolic trace, replays it independently, and
/// returns the certificate alongside the verdict. `None` when the goal
/// is unreachable (or not proven reachable within the budget).
///
/// # Errors
///
/// A [`WitnessError`] if the engine's trace cannot be realized or fails
/// validation — either indicates an engine bug.
pub fn certified_reachable(
    net: &Network,
    goal: &StateFormula,
    budget: &Budget,
) -> Certified<ReachResult, Option<TraceCertificate>> {
    certified_reachable_with(net, goal, ExploreConfig::default(), budget)
}

/// [`certified_reachable`] with explicit exploration knobs. The
/// certificate pipeline is reduction-agnostic: a symmetry-folded engine
/// trace is realized back through the orbit permutations into a
/// concrete run of the *original* network, so validation never sees the
/// reduced state space.
///
/// # Errors
///
/// A [`WitnessError`] if the engine's trace cannot be realized or fails
/// validation — either indicates an engine bug — or a
/// [`WitnessError::Spill`] if the engine's out-of-core state store
/// failed (only possible with [`ExploreConfig::with_spill`]).
pub fn certified_reachable_with(
    net: &Network,
    goal: &StateFormula,
    config: ExploreConfig,
    budget: &Budget,
) -> Certified<ReachResult, Option<TraceCertificate>> {
    let mut mc = tempo_ta::ModelChecker::new(net).with_config(config);
    let mut out = mc.try_reachable_governed(goal, budget)?;
    let started = Instant::now();
    let cert = match &out.value().trace {
        Some(trace) if out.value().reachable => {
            let concrete = realize(net, trace, goal)?;
            let cert = TraceCertificate { trace: concrete };
            cert.validate(net, goal)?;
            Some(cert)
        }
        _ => None,
    };
    if let Some(c) = &cert {
        stamp(&mut out, &Certificate::Trace(c.clone()), started);
    }
    Ok((out, cert))
}

/// Leads-to checking with a certified counterexample: when `phi --> psi`
/// is violated, the engine's symbolic counterexample prefix (ending in a
/// `psi`-avoiding cycle or dead end) is realized as a concrete run whose
/// final state satisfies `!psi`, and replayed independently.
///
/// # Errors
///
/// A [`WitnessError`] if realization or validation fails.
pub fn certified_leads_to(
    net: &Network,
    phi: &StateFormula,
    psi: &StateFormula,
    budget: &Budget,
) -> Certified<(Verdict, Stats), Option<TraceCertificate>> {
    let mut out = tempo_ta::leads_to_governed(net, phi, psi, budget);
    let started = Instant::now();
    let cert = match &out.value().0 {
        Verdict::Violated(trace) => {
            let avoid = StateFormula::not(psi.clone());
            let concrete = realize(net, trace, &avoid)?;
            let cert = TraceCertificate { trace: concrete };
            cert.validate(net, &avoid)?;
            Some(cert)
        }
        Verdict::Satisfied => None,
    };
    if let Some(c) = &cert {
        stamp(&mut out, &Certificate::Trace(c.clone()), started);
    }
    Ok((out, cert))
}

/// Minimum-cost reachability with a validated cost certificate: the
/// optimal run replays against the raw semantics and its step costs are
/// recomputed from rates and edge prices, summing to the reported
/// minimum.
///
/// # Errors
///
/// A [`WitnessError`] if the certificate fails to build or validate.
pub fn certified_min_cost(
    pnet: &PricedNetwork,
    goal: &StateFormula,
    budget: &Budget,
) -> Certified<Option<MinCostResult>, Option<CostCertificate>> {
    let mut out = pnet.min_cost_reach_governed(goal, budget);
    let started = Instant::now();
    let cert = match out.value() {
        Some(res) => {
            let cert = CostCertificate::build(pnet, res)?;
            cert.validate(pnet, goal)?;
            Some(cert)
        }
        None => None,
    };
    if let Some(c) = &cert {
        stamp(&mut out, &Certificate::Cost(c.clone()), started);
    }
    Ok((out, cert))
}

/// Reachability-game synthesis with an exhaustively certified strategy:
/// the closed loop of the synthesized strategy is explored over *all*
/// environment moves and certified to reach the goal on every branch.
///
/// # Errors
///
/// A [`WitnessError`] if the strategy's closed loop escapes its domain
/// or can avoid the goal.
pub fn certified_reach_game(
    net: &Network,
    goal: &StateFormula,
    budget: &Budget,
) -> Certified<GameResult, Option<StrategyCertificate>> {
    let solver = GameSolver::new(net);
    let mut out = solver.solve_reachability_governed(goal, budget);
    let started = Instant::now();
    let cert = if out.value().winning {
        let cert =
            StrategyCertificate::build(net, GameObjective::Reach, goal, &out.value().strategy)?;
        cert.validate(net, goal)?;
        Some(cert)
    } else {
        None
    };
    if let Some(c) = &cert {
        stamp(&mut out, &Certificate::Strategy(c.clone()), started);
    }
    Ok((out, cert))
}

/// Safety-game synthesis with an exhaustively certified strategy: the
/// closed loop is certified to never reach a bad state, whatever the
/// environment does.
///
/// # Errors
///
/// A [`WitnessError`] if certification fails.
pub fn certified_safety_game(
    net: &Network,
    bad: &StateFormula,
    budget: &Budget,
) -> Certified<GameResult, Option<StrategyCertificate>> {
    let solver = GameSolver::new(net);
    let mut out = solver.solve_safety_governed(bad, budget);
    let started = Instant::now();
    let cert = if out.value().winning {
        let cert =
            StrategyCertificate::build(net, GameObjective::Avoid, bad, &out.value().strategy)?;
        cert.validate(net, bad)?;
        Some(cert)
    } else {
        None
    };
    if let Some(c) = &cert {
        stamp(&mut out, &Certificate::Strategy(c.clone()), started);
    }
    Ok((out, cert))
}

/// Probability estimation with exported, independently replayed runs:
/// estimates `Pr[<=bound](<> goal)` as usual, then simulates
/// `witness_runs` fresh runs with the same seed and certifies each as a
/// legal timed run of the network.
///
/// # Errors
///
/// [`WitnessError::Malformed`] on invalid statistical parameters, or a
/// replay error if the simulator produced an illegal run.
#[allow(clippy::too_many_arguments)]
pub fn certified_probability(
    net: &Network,
    rates: &RatePolicy,
    seed: u64,
    goal: &StateFormula,
    bound: f64,
    runs: usize,
    confidence: f64,
    witness_runs: usize,
    budget: &Budget,
) -> Certified<Option<Estimate>, RunCertificate> {
    let mut checker = StatisticalChecker::new(net, rates.clone(), seed);
    let mut out = checker
        .probability_governed(goal, bound, runs, confidence, budget)
        .map_err(|e| WitnessError::Malformed(e.to_string()))?;
    let started = Instant::now();
    let mut sim = Simulator::new(net, rates.clone(), seed);
    let exported: Vec<Run> = (0..witness_runs)
        .map(|_| sim.simulate(bound, tempo_smc::DEFAULT_MAX_STEPS))
        .collect();
    let cert = RunCertificate { runs: exported };
    cert.validate(net)?;
    stamp(&mut out, &Certificate::Runs(cert.clone()), started);
    Ok((out, cert))
}

/// MDP reachability with a certified scheduler: value iteration's argmax
/// policy is exported and its induced Markov chain's probability
/// recomputed within `epsilon` of the reported value.
///
/// # Errors
///
/// A [`WitnessError`] if the scheduler fails validation.
pub fn certified_mdp_reachability(
    mdp: &Mdp,
    opt: Opt,
    goal: &[bool],
    epsilon: f64,
    budget: &Budget,
) -> Certified<Quantitative, SchedulerCertificate> {
    let mut out = tempo_mdp::reachability_governed(mdp, opt, goal, budget);
    let started = Instant::now();
    let cert = SchedulerCertificate::build_with_opt(out.value(), opt, goal.to_vec(), epsilon);
    cert.validate(mdp)?;
    stamp(&mut out, &Certificate::Scheduler(cert.clone()), started);
    Ok((out, cert))
}

/// Probabilistic reachability on a compiled MODEST model (mcpta) with a
/// certified scheduler over the underlying MDP.
///
/// # Errors
///
/// A [`WitnessError`] if the scheduler fails validation.
pub fn certified_mcpta_reach(
    m: &Mcpta,
    opt: Opt,
    goal: &StateFormula,
    epsilon: f64,
    budget: &Budget,
) -> Certified<Quantitative, SchedulerCertificate> {
    let mask = m.goal_mask(goal);
    let mut out = m.reach_quantitative(opt, goal, budget);
    let started = Instant::now();
    let cert = SchedulerCertificate::build_with_opt(out.value(), opt, mask, epsilon);
    cert.validate(m.mdp())?;
    stamp(&mut out, &Certificate::Scheduler(cert.clone()), started);
    Ok((out, cert))
}
