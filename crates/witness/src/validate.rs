//! The independent replay validator.
//!
//! [`replay`] re-executes a [`ConcreteTrace`] step by step against the
//! raw network semantics (see [`crate::semantics`]) and rejects it with
//! a typed [`WitnessError`] the moment any rule is broken: a delay in an
//! urgent situation, an unsatisfied guard, an illegal synchronization,
//! or a successor state that does not match the recorded one. It shares
//! no code with the exploration engines whose answers it checks.
//!
//! [`replay_run`] does the same for a stochastic [`tempo_smc::Run`],
//! whose clock values are `f64`: discrete state parts are compared
//! exactly and real-valued parts within a `1e-9` tolerance.

use crate::error::WitnessError;
use crate::semantics::{RState, Replayer};
use crate::trace::{ConcreteTrace, TraceSemantics};
use tempo_cora::PricedNetwork;
use tempo_smc::Run;
use tempo_ta::{AutomatonId, ClockAtom, LocationKind, Network, StateFormula};

/// Tolerance for comparing `f64` clock values during stochastic replay.
const F64_TOL: f64 = 1e-9;

/// Replays a concrete trace against the network and, if given, checks
/// that the final state satisfies `goal`. Returns the first violation
/// as a typed error.
///
/// # Errors
///
/// Every semantic violation has its own [`WitnessError`] variant; see
/// the enum for the full catalogue.
pub fn replay(
    net: &Network,
    trace: &ConcreteTrace,
    goal: Option<&StateFormula>,
) -> Result<(), WitnessError> {
    let (r, states) = replay_internal(net, trace)?;
    if let Some(g) = goal {
        let last = states
            .last()
            .expect("replay keeps at least the initial state");
        if !r.eval_formula(last, g) {
            return Err(WitnessError::GoalNotSatisfied);
        }
    }
    Ok(())
}

/// Replays a trace and returns the replayer plus the state sequence
/// (initial state first, then one state per step). Used by the
/// certificate checkers to recompute per-step quantities (e.g. costs).
pub(crate) fn replay_internal<'n>(
    net: &'n Network,
    trace: &ConcreteTrace,
) -> Result<(Replayer<'n>, Vec<RState>), WitnessError> {
    if trace.denom < 1 {
        return Err(WitnessError::Malformed(format!(
            "denominator {} must be >= 1",
            trace.denom
        )));
    }
    if trace.semantics == TraceSemantics::Digital && trace.denom != 1 {
        return Err(WitnessError::Malformed(
            "digital traces must use denominator 1".to_owned(),
        ));
    }
    let r = Replayer::new(net, trace.semantics, trace.denom);
    let init = r.decode(&trace.initial)?;
    if init != r.initial() {
        return Err(WitnessError::WrongInitialState);
    }
    let mut states = vec![init];
    for (i, step) in trace.steps.iter().enumerate() {
        let cur = states.last().expect("non-empty");
        if step.delay < 0 {
            return Err(WitnessError::WrongDelay { step: i });
        }
        // Urgency is clock-independent (urgent-channel edges carry no
        // clock guards), and invariants are convex: one check for the
        // whole delay plus one at its endpoint suffices.
        if step.delay > 0 && !r.can_delay(cur) {
            return Err(WitnessError::DelayForbidden { step: i });
        }
        let clocks = r.delayed_clocks(&cur.clocks, step.delay);
        if let Some(a) = r.invariant_violation(&cur.locs, &clocks) {
            return Err(WitnessError::InvariantViolated {
                step: i,
                automaton: a,
            });
        }
        let mid = RState {
            locs: cur.locs.clone(),
            store: cur.store.clone(),
            clocks,
        };
        let next = match &step.action {
            Some(action) => {
                r.check_action(&mid, action, i)?;
                r.apply_action(&mid, action, i)?
            }
            None => mid,
        };
        if r.to_concrete(&next) != step.state {
            return Err(WitnessError::StateMismatch { step: i });
        }
        states.push(next);
    }
    Ok((r, states))
}

/// Replays a stochastic run sampled by [`tempo_smc::Simulator`]. The
/// discrete parts (locations, variables, move labels) are validated
/// exactly; clock values and delays within [`F64_TOL`]. The stochastic
/// race itself is not re-derived (any legal resolution is accepted),
/// but every step must be a legal timed transition of the network that
/// reproduces the recorded successor.
///
/// # Errors
///
/// Typed [`WitnessError`]s as for [`replay`].
pub fn replay_run(net: &Network, run: &Run) -> Result<(), WitnessError> {
    let r = Replayer::data_only(net);
    let initial = &run.initial;
    let init_ok = initial.locs.len() == net.automata().len()
        && initial
            .locs
            .iter()
            .zip(net.automata())
            .all(|(&l, a)| l == a.initial)
        && initial.store.as_slice() == net.decls().initial_store().as_slice()
        && initial.clocks.len() == net.dim()
        && initial.clocks.iter().all(|&c| c.abs() <= F64_TOL)
        && initial.time.abs() <= F64_TOL;
    if !init_ok {
        return Err(WitnessError::WrongInitialState);
    }
    let mut cur = initial.clone();
    for (i, step) in run.steps.iter().enumerate() {
        if step.delay < -F64_TOL || !step.delay.is_finite() {
            return Err(WitnessError::WrongDelay { step: i });
        }
        // The simulator forces zero delay in urgent/committed locations.
        let urgent = cur
            .locs
            .iter()
            .zip(net.automata())
            .any(|(&l, a)| a.locations[l.index()].kind != LocationKind::Normal);
        if urgent && step.delay > F64_TOL {
            return Err(WitnessError::DelayForbidden { step: i });
        }
        let mut mid = cur.clone();
        for (k, c) in mid.clocks.iter_mut().enumerate() {
            if k != 0 {
                *c += step.delay;
            }
        }
        mid.time += step.delay;
        if let Some(a) = invariant_violation_f64(net, &mid) {
            return Err(WitnessError::InvariantViolated {
                step: i,
                automaton: a,
            });
        }
        let next = if step.label == "delay" {
            mid
        } else {
            find_matching_move(net, &r, &mid, step, i, None)?
        };
        if !states_close(&next, &step.state) {
            return Err(WitnessError::StateMismatch { step: i });
        }
        cur = step.state.clone();
    }
    Ok(())
}

/// Replays a priced stochastic run and re-sums its accumulated cost.
///
/// Beyond the legality checks of [`replay_run`], each non-delay step
/// must carry its recorded participants (the exact synchronizing edges)
/// and those participants must be one of the legal joint moves at the
/// step's state — the edge prices of a *different* move with the same
/// label cannot be substituted. The returned cost is accumulated in
/// recording order (`delay × Σ location rates`, then the participating
/// edges' prices), so a simulator that sums the same way reproduces it
/// bit-for-bit.
///
/// # Errors
///
/// Typed [`WitnessError`]s as for [`replay_run`];
/// [`WitnessError::IllegalMove`] when a step's recorded participants do
/// not form a legal joint move.
pub fn replay_priced_run(pnet: &PricedNetwork, run: &Run) -> Result<f64, WitnessError> {
    let net = pnet.network();
    let r = Replayer::data_only(net);
    let initial = &run.initial;
    let init_ok = initial.locs.len() == net.automata().len()
        && initial
            .locs
            .iter()
            .zip(net.automata())
            .all(|(&l, a)| l == a.initial)
        && initial.store.as_slice() == net.decls().initial_store().as_slice()
        && initial.clocks.len() == net.dim()
        && initial.clocks.iter().all(|&c| c.abs() <= F64_TOL)
        && initial.time.abs() <= F64_TOL;
    if !init_ok {
        return Err(WitnessError::WrongInitialState);
    }
    let mut cur = initial.clone();
    let mut cost = 0.0_f64;
    for (i, step) in run.steps.iter().enumerate() {
        if step.delay < -F64_TOL || !step.delay.is_finite() {
            return Err(WitnessError::WrongDelay { step: i });
        }
        let urgent = cur
            .locs
            .iter()
            .zip(net.automata())
            .any(|(&l, a)| a.locations[l.index()].kind != LocationKind::Normal);
        if urgent && step.delay > F64_TOL {
            return Err(WitnessError::DelayForbidden { step: i });
        }
        // Locations are fixed during the delay, so the whole delay is
        // priced at the pre-state's rate sum.
        let rate_sum: i64 = cur
            .locs
            .iter()
            .enumerate()
            .map(|(ai, &l)| pnet.rate(AutomatonId(ai), l))
            .sum();
        cost += step.delay * rate_sum as f64;
        let mut mid = cur.clone();
        for (k, c) in mid.clocks.iter_mut().enumerate() {
            if k != 0 {
                *c += step.delay;
            }
        }
        mid.time += step.delay;
        if let Some(a) = invariant_violation_f64(net, &mid) {
            return Err(WitnessError::InvariantViolated {
                step: i,
                automaton: a,
            });
        }
        let next = if step.label == "delay" {
            mid
        } else {
            if step.participants.is_empty() {
                return Err(WitnessError::IllegalMove {
                    step: i,
                    reason: "priced step records no participants".to_owned(),
                });
            }
            let next = find_matching_move(net, &r, &mid, step, i, Some(&step.participants))?;
            cost += step
                .participants
                .iter()
                .map(|&(ai, ei, _)| pnet.edge_cost(AutomatonId(ai), ei))
                .sum::<i64>() as f64;
            next
        };
        if !states_close(&next, &step.state) {
            return Err(WitnessError::StateMismatch { step: i });
        }
        cur = step.state.clone();
    }
    Ok(cost)
}

fn atom_holds_f64(atom: &ClockAtom, clocks: &[f64]) -> bool {
    if atom.bound.is_inf() {
        return true;
    }
    let d = clocks[atom.i.index()] - clocks[atom.j.index()];
    let c = atom.bound.constant() as f64;
    if atom.bound.is_strict() {
        d < c
    } else {
        d <= c + F64_TOL
    }
}

fn invariant_violation_f64(net: &Network, s: &tempo_smc::ConcreteState) -> Option<usize> {
    net.automata().iter().zip(&s.locs).position(|(a, &l)| {
        a.locations[l.index()]
            .invariant
            .iter()
            .any(|atom| !atom_holds_f64(atom, &s.clocks))
    })
}

/// Searches the data-level joint moves for one with the recorded label
/// whose clock guards hold at the `f64` valuation and whose application
/// reproduces the recorded successor. With `expected` set, only the
/// joint move with exactly those participants qualifies — priced
/// replay must pin down the edges whose prices it re-sums.
fn find_matching_move(
    net: &Network,
    r: &Replayer<'_>,
    mid: &tempo_smc::ConcreteState,
    step: &tempo_smc::RunStep,
    i: usize,
    expected: Option<&[(usize, usize, Vec<i64>)]>,
) -> Result<tempo_smc::ConcreteState, WitnessError> {
    // Enumerate candidates at the data level (the clockless replayer
    // ignores clock guards; they are re-checked here in f64).
    let probe = RState {
        locs: mid.locs.clone(),
        store: mid.store.clone(),
        clocks: vec![0; net.dim()],
    };
    let mut label_seen = false;
    for (action, _) in r.enumerate_moves(&probe) {
        if action.label != step.label {
            continue;
        }
        if let Some(exp) = expected {
            if action.participants != exp {
                continue;
            }
        }
        label_seen = true;
        let guards_ok = action.participants.iter().all(|&(ai, ei, _)| {
            net.automata()[ai].edges[ei]
                .guard_clocks
                .iter()
                .all(|atom| atom_holds_f64(atom, &mid.clocks))
        });
        if !guards_ok {
            continue;
        }
        if let Some(next) = apply_f64(net, mid, &action.participants) {
            if states_close(&next, &step.state) {
                return Ok(next);
            }
        }
    }
    if label_seen {
        Err(WitnessError::StateMismatch { step: i })
    } else {
        let reason = if expected.is_some() {
            format!(
                "recorded participants are not a legal `{}` move",
                step.label
            )
        } else {
            format!("no enabled move labelled `{}`", step.label)
        };
        Err(WitnessError::IllegalMove { step: i, reason })
    }
}

fn apply_f64(
    net: &Network,
    state: &tempo_smc::ConcreteState,
    participants: &[(usize, usize, Vec<i64>)],
) -> Option<tempo_smc::ConcreteState> {
    let decls = net.decls();
    let mut next = state.clone();
    for &(ai, ei, ref sel) in participants {
        let e = &net.automata()[ai].edges[ei];
        // Select bindings are enumerated, not recorded, so re-check them.
        if sel.len() != e.selects.len() {
            return None;
        }
        for (clock, value) in &e.resets {
            let v = value.eval(decls, &next.store, sel).ok()?;
            next.clocks[clock.index()] = v as f64;
        }
        e.update.execute(decls, &mut next.store, sel).ok()?;
        next.locs[ai] = e.to;
    }
    net.automata()
        .iter()
        .zip(&next.locs)
        .all(|(a, &l)| {
            a.locations[l.index()]
                .invariant
                .iter()
                .all(|atom| atom_holds_f64(atom, &next.clocks))
        })
        .then_some(next)
}

fn states_close(a: &tempo_smc::ConcreteState, b: &tempo_smc::ConcreteState) -> bool {
    a.locs == b.locs
        && a.store.as_slice() == b.store.as_slice()
        && a.clocks.len() == b.clocks.len()
        && a.clocks
            .iter()
            .zip(&b.clocks)
            .all(|(x, y)| (x - y).abs() <= F64_TOL)
        && (a.time - b.time).abs() <= F64_TOL
}
