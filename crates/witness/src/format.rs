//! A std-only, line-oriented text format for certificates.
//!
//! Every certificate starts with the header `tempo-witness v1 <kind>`
//! (`trace`, `cost`, `strategy`, `scheduler`, `runs` or `priced-runs`)
//! followed by kind-specific keyword lines. All numbers are plain decimal tokens;
//! floats use Rust's shortest round-trip rendering, so
//! `parse(render(c))` reproduces `c` exactly. Blank lines and leading
//! whitespace are ignored. Parse failures return
//! [`WitnessError::Format`] with the 1-based line number.
//!
//! ```text
//! tempo-witness v1 trace
//! semantics symbolic
//! denom 3
//! initial locs 0 1 ; store 2 ; clocks 0 0 0
//! step 0
//! delay 3
//! action tau 0:1
//! state locs 0 2 ; store 2 ; clocks 0 3 0
//! ```

use std::fmt::Write as _;

use tempo_expr::Store;
use tempo_smc::{ConcreteState as SmcState, Run, RunStep};
use tempo_ta::{LocationId, Network};

use crate::certify::{
    Certificate, CostCertificate, GameObjective, PricedRunCertificate, RunCertificate,
    SchedulerCertificate, StrategyCertificate, TraceCertificate,
};
use crate::error::WitnessError;
use crate::semantics::store_from_values;
use crate::trace::{ConcreteState, ConcreteStep, ConcreteTrace, JointAction, TraceSemantics};

/// Renders a certificate in the v1 text format.
#[must_use]
pub fn render(cert: &Certificate) -> String {
    let mut out = String::new();
    match cert {
        Certificate::Trace(c) => render_trace_body(&mut out, "trace", &c.trace, None),
        Certificate::Cost(c) => {
            render_trace_body(&mut out, "cost", &c.trace, Some(&c.step_costs));
            let _ = writeln!(out, "total {}", c.total);
        }
        Certificate::Strategy(c) => {
            let _ = writeln!(out, "tempo-witness v1 strategy");
            let obj = match c.objective {
                GameObjective::Reach => "reach",
                GameObjective::Avoid => "avoid",
            };
            let _ = writeln!(out, "objective {obj}");
            for (state, prescription) in &c.prescriptions {
                let _ = writeln!(out, "state {}", fmt_state(state));
                match prescription {
                    None => {
                        let _ = writeln!(out, "wait");
                    }
                    Some(a) => {
                        let _ = writeln!(out, "act {}", fmt_action(a));
                    }
                }
            }
        }
        Certificate::Scheduler(c) => {
            let _ = writeln!(out, "tempo-witness v1 scheduler");
            let opt = match c.opt {
                tempo_mdp::Opt::Max => "max",
                tempo_mdp::Opt::Min => "min",
            };
            let _ = writeln!(out, "opt {opt}");
            let _ = writeln!(out, "value {:?}", c.value);
            let _ = writeln!(out, "epsilon {:?}", c.epsilon);
            let _ = write!(out, "choices");
            for choice in &c.choices {
                match choice {
                    None => out.push_str(" -"),
                    Some(i) => {
                        let _ = write!(out, " {i}");
                    }
                }
            }
            out.push('\n');
            let _ = write!(out, "goal");
            for &g in &c.goal {
                let _ = write!(out, " {}", u8::from(g));
            }
            out.push('\n');
        }
        Certificate::Runs(c) => {
            let _ = writeln!(out, "tempo-witness v1 runs");
            for (i, run) in c.runs.iter().enumerate() {
                let tag = if run.deadlocked { "deadlocked" } else { "ok" };
                let _ = writeln!(out, "run {i} {tag}");
                let _ = writeln!(out, "initial {}", fmt_f64_state(&run.initial));
                for step in &run.steps {
                    let _ = writeln!(out, "step {:?} {}", step.delay, step.label);
                    let _ = writeln!(out, "state {}", fmt_f64_state(&step.state));
                }
            }
        }
        Certificate::PricedRuns(c) => {
            let _ = writeln!(out, "tempo-witness v1 priced-runs");
            for (i, (run, cost)) in c.runs.iter().zip(&c.costs).enumerate() {
                let tag = if run.deadlocked { "deadlocked" } else { "ok" };
                let _ = writeln!(out, "run {i} {tag} cost {cost:?}");
                let _ = writeln!(out, "initial {}", fmt_f64_state(&run.initial));
                for step in &run.steps {
                    // Participants are serialized (unlike plain `runs`):
                    // the priced validator re-sums the prices of exactly
                    // the edges the simulator fired.
                    let _ = write!(out, "step {:?} {}", step.delay, step.label);
                    for (ai, ei, sel) in &step.participants {
                        let _ = write!(out, " {ai}:{ei}");
                        for (k, v) in sel.iter().enumerate() {
                            out.push(if k == 0 { ':' } else { ',' });
                            let _ = write!(out, "{v}");
                        }
                    }
                    out.push('\n');
                    let _ = writeln!(out, "state {}", fmt_f64_state(&step.state));
                }
            }
        }
    }
    out
}

/// Parses a certificate from the v1 text format. The network is needed
/// to rebuild variable stores for stochastic (`runs`) certificates; the
/// other kinds only validate against it at `validate` time.
///
/// # Errors
///
/// [`WitnessError::Format`] with the offending 1-based line.
pub fn parse(net: &Network, text: &str) -> Result<Certificate, WitnessError> {
    let mut lines = Lines::new(text);
    let (line, header) = lines.next_line("certificate header")?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 3 || tokens[0] != "tempo-witness" || tokens[1] != "v1" {
        return Err(fail(line, "expected header `tempo-witness v1 <kind>`"));
    }
    match tokens[2] {
        "trace" => {
            let (trace, _) = parse_trace_body(&mut lines, false)?;
            lines.expect_end()?;
            Ok(Certificate::Trace(TraceCertificate { trace }))
        }
        "cost" => {
            let (trace, step_costs) = parse_trace_body(&mut lines, true)?;
            let (line, rest) = lines.expect_keyword("total")?;
            let total = parse_int(line, rest.trim())?;
            lines.expect_end()?;
            Ok(Certificate::Cost(CostCertificate {
                trace,
                step_costs,
                total,
            }))
        }
        "strategy" => parse_strategy(&mut lines).map(Certificate::Strategy),
        "scheduler" => parse_scheduler(&mut lines).map(Certificate::Scheduler),
        "runs" => parse_runs(&mut lines, net).map(Certificate::Runs),
        "priced-runs" => parse_priced_runs(&mut lines, net).map(Certificate::PricedRuns),
        kind => Err(fail(line, &format!("unknown certificate kind `{kind}`"))),
    }
}

/// Parses a certificate without a network. Works for every kind except
/// `runs`, whose variable stores can only be rebuilt against concrete
/// declarations — exactly the kinds the analysis service persists for
/// models that have no [`Network`] (MDPs, compiled MODEST models).
///
/// # Errors
///
/// [`WitnessError::Format`] with the offending 1-based line; a `runs`
/// certificate fails with a message directing callers to [`parse`].
pub fn parse_standalone(text: &str) -> Result<Certificate, WitnessError> {
    let first = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty())
        .unwrap_or("");
    if matches!(
        first.split_whitespace().nth(2),
        Some("runs" | "priced-runs")
    ) {
        return Err(WitnessError::Format {
            line: 1,
            detail: "run certificates need a network; use `parse`".to_owned(),
        });
    }
    // All network-dependent parsing lives under the run kinds, so an
    // empty network never gets consulted for the remaining kinds.
    let empty = tempo_ta::NetworkBuilder::new().build();
    parse(&empty, text)
}

fn fmt_state(s: &ConcreteState) -> String {
    let mut out = String::from("locs");
    for &l in &s.locs {
        let _ = write!(out, " {l}");
    }
    out.push_str(" ; store");
    for &v in &s.store {
        let _ = write!(out, " {v}");
    }
    out.push_str(" ; clocks");
    for &c in &s.clocks {
        let _ = write!(out, " {c}");
    }
    out
}

fn fmt_f64_state(s: &SmcState) -> String {
    let mut out = String::from("locs");
    for &l in &s.locs {
        let _ = write!(out, " {}", l.index());
    }
    out.push_str(" ; store");
    for &v in s.store.as_slice() {
        let _ = write!(out, " {v}");
    }
    out.push_str(" ; clocks");
    for &c in &s.clocks {
        let _ = write!(out, " {c:?}");
    }
    let _ = write!(out, " ; time {:?}", s.time);
    out
}

fn fmt_action(a: &JointAction) -> String {
    let mut out = a.label.clone();
    for (ai, ei, sel) in &a.participants {
        let _ = write!(out, " {ai}:{ei}");
        for (k, v) in sel.iter().enumerate() {
            out.push(if k == 0 { ':' } else { ',' });
            let _ = write!(out, "{v}");
        }
    }
    out
}

fn render_trace_body(out: &mut String, kind: &str, trace: &ConcreteTrace, costs: Option<&[i64]>) {
    let _ = writeln!(out, "tempo-witness v1 {kind}");
    let sem = match trace.semantics {
        TraceSemantics::Symbolic => "symbolic",
        TraceSemantics::Digital => "digital",
    };
    let _ = writeln!(out, "semantics {sem}");
    let _ = writeln!(out, "denom {}", trace.denom);
    let _ = writeln!(out, "initial {}", fmt_state(&trace.initial));
    for (i, step) in trace.steps.iter().enumerate() {
        let _ = writeln!(out, "step {i}");
        let _ = writeln!(out, "delay {}", step.delay);
        if let Some(a) = &step.action {
            let _ = writeln!(out, "action {}", fmt_action(a));
        }
        let _ = writeln!(out, "state {}", fmt_state(&step.state));
        if let Some(costs) = costs {
            let _ = writeln!(out, "cost {}", costs.get(i).copied().unwrap_or(0));
        }
    }
}

/// Line cursor: skips blank lines, tracks 1-based numbers.
struct Lines<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Lines { lines, pos: 0 }
    }

    /// The next non-blank line, or a format error naming what was
    /// expected.
    fn next_line(&mut self, expected: &str) -> Result<(usize, &'a str), WitnessError> {
        let Some(&(n, l)) = self.lines.get(self.pos) else {
            let last = self.lines.last().map_or(1, |&(n, _)| n + 1);
            return Err(fail(
                last,
                &format!("unexpected end of input, expected {expected}"),
            ));
        };
        self.pos += 1;
        Ok((n, l))
    }

    /// Peeks at the next line's first token without consuming it.
    fn peek_keyword(&self) -> Option<&'a str> {
        self.lines
            .get(self.pos)
            .and_then(|&(_, l)| l.split_whitespace().next())
    }

    /// Consumes a line that must start with `keyword`; returns the rest.
    fn expect_keyword(&mut self, keyword: &str) -> Result<(usize, &'a str), WitnessError> {
        let (n, l) = self.next_line(&format!("`{keyword} ...`"))?;
        l.strip_prefix(keyword)
            .filter(|rest| rest.is_empty() || rest.starts_with(char::is_whitespace))
            .map(|rest| (n, rest))
            .ok_or_else(|| fail(n, &format!("expected `{keyword} ...`, found `{l}`")))
    }

    fn expect_end(&mut self) -> Result<(), WitnessError> {
        if let Some(&(n, l)) = self.lines.get(self.pos) {
            return Err(fail(n, &format!("trailing content `{l}`")));
        }
        Ok(())
    }
}

fn fail(line: usize, detail: &str) -> WitnessError {
    WitnessError::Format {
        line,
        detail: detail.to_owned(),
    }
}

fn parse_int(line: usize, tok: &str) -> Result<i64, WitnessError> {
    tok.parse()
        .map_err(|_| fail(line, &format!("expected an integer, found `{tok}`")))
}

fn parse_f64(line: usize, tok: &str) -> Result<f64, WitnessError> {
    tok.parse()
        .map_err(|_| fail(line, &format!("expected a number, found `{tok}`")))
}

/// Parses `locs .. ; store .. ; clocks ..` into integer sections.
fn parse_sections<'a>(
    line: usize,
    rest: &'a str,
    names: &[&str],
) -> Result<Vec<Vec<&'a str>>, WitnessError> {
    let mut sections = Vec::new();
    for (i, part) in rest.split(';').enumerate() {
        let mut toks = part.split_whitespace();
        let Some(name) = toks.next() else {
            return Err(fail(line, "empty state section"));
        };
        if names.get(i) != Some(&name) {
            return Err(fail(
                line,
                &format!(
                    "expected section `{}`, found `{name}`",
                    names.get(i).unwrap_or(&"?")
                ),
            ));
        }
        sections.push(toks.collect());
    }
    if sections.len() != names.len() {
        return Err(fail(
            line,
            &format!(
                "expected {} state sections, found {}",
                names.len(),
                sections.len()
            ),
        ));
    }
    Ok(sections)
}

fn parse_state(line: usize, rest: &str) -> Result<ConcreteState, WitnessError> {
    let sections = parse_sections(line, rest, &["locs", "store", "clocks"])?;
    let ints = |toks: &[&str]| -> Result<Vec<i64>, WitnessError> {
        toks.iter().map(|t| parse_int(line, t)).collect()
    };
    let locs = sections[0]
        .iter()
        .map(|t| {
            parse_int(line, t)
                .and_then(|v| usize::try_from(v).map_err(|_| fail(line, "negative location index")))
        })
        .collect::<Result<_, _>>()?;
    Ok(ConcreteState {
        locs,
        store: ints(&sections[1])?,
        clocks: ints(&sections[2])?,
    })
}

fn parse_action(line: usize, rest: &str) -> Result<JointAction, WitnessError> {
    let mut toks = rest.split_whitespace();
    let Some(label) = toks.next() else {
        return Err(fail(line, "action needs a label"));
    };
    let mut participants = Vec::new();
    for tok in toks {
        let mut fields = tok.splitn(3, ':');
        let ai = fields
            .next()
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| fail(line, &format!("bad participant `{tok}`")))?;
        let ei = fields
            .next()
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| fail(line, &format!("bad participant `{tok}`")))?;
        let sel = match fields.next() {
            None => Vec::new(),
            Some(s) => s
                .split(',')
                .map(|v| parse_int(line, v))
                .collect::<Result<_, _>>()?,
        };
        participants.push((ai, ei, sel));
    }
    if participants.is_empty() {
        return Err(fail(line, "action needs at least one participant"));
    }
    Ok(JointAction {
        label: label.to_owned(),
        participants,
    })
}

fn parse_trace_body(
    lines: &mut Lines<'_>,
    with_costs: bool,
) -> Result<(ConcreteTrace, Vec<i64>), WitnessError> {
    let (line, rest) = lines.expect_keyword("semantics")?;
    let semantics = match rest.trim() {
        "symbolic" => TraceSemantics::Symbolic,
        "digital" => TraceSemantics::Digital,
        other => return Err(fail(line, &format!("unknown semantics `{other}`"))),
    };
    let (line, rest) = lines.expect_keyword("denom")?;
    let denom = parse_int(line, rest.trim())?;
    let (line, rest) = lines.expect_keyword("initial")?;
    let initial = parse_state(line, rest)?;
    let mut steps = Vec::new();
    let mut costs = Vec::new();
    while lines.peek_keyword() == Some("step") {
        let (line, rest) = lines.expect_keyword("step")?;
        let idx = parse_int(line, rest.trim())?;
        if idx != steps.len() as i64 {
            return Err(fail(
                line,
                &format!("expected step {}, found {idx}", steps.len()),
            ));
        }
        let (line, rest) = lines.expect_keyword("delay")?;
        let delay = parse_int(line, rest.trim())?;
        let action = if lines.peek_keyword() == Some("action") {
            let (line, rest) = lines.expect_keyword("action")?;
            Some(parse_action(line, rest)?)
        } else {
            None
        };
        let (line, rest) = lines.expect_keyword("state")?;
        let state = parse_state(line, rest)?;
        if with_costs {
            let (line, rest) = lines.expect_keyword("cost")?;
            costs.push(parse_int(line, rest.trim())?);
        }
        steps.push(ConcreteStep {
            delay,
            action,
            state,
        });
    }
    Ok((
        ConcreteTrace {
            semantics,
            denom,
            initial,
            steps,
        },
        costs,
    ))
}

fn parse_strategy(lines: &mut Lines<'_>) -> Result<StrategyCertificate, WitnessError> {
    let (line, rest) = lines.expect_keyword("objective")?;
    let objective = match rest.trim() {
        "reach" => GameObjective::Reach,
        "avoid" => GameObjective::Avoid,
        other => return Err(fail(line, &format!("unknown objective `{other}`"))),
    };
    let mut prescriptions = Vec::new();
    while lines.peek_keyword() == Some("state") {
        let (line, rest) = lines.expect_keyword("state")?;
        let state = parse_state(line, rest)?;
        let (line, l) = lines.next_line("`wait` or `act ...`")?;
        let prescription = if l == "wait" {
            None
        } else if let Some(rest) = l.strip_prefix("act") {
            Some(parse_action(line, rest)?)
        } else {
            return Err(fail(
                line,
                &format!("expected `wait` or `act ...`, found `{l}`"),
            ));
        };
        prescriptions.push((state, prescription));
    }
    lines.expect_end()?;
    Ok(StrategyCertificate {
        objective,
        prescriptions,
    })
}

fn parse_scheduler(lines: &mut Lines<'_>) -> Result<SchedulerCertificate, WitnessError> {
    let (line, rest) = lines.expect_keyword("opt")?;
    let opt = match rest.trim() {
        "max" => tempo_mdp::Opt::Max,
        "min" => tempo_mdp::Opt::Min,
        other => return Err(fail(line, &format!("unknown direction `{other}`"))),
    };
    let (line, rest) = lines.expect_keyword("value")?;
    let value = parse_f64(line, rest.trim())?;
    let (line, rest) = lines.expect_keyword("epsilon")?;
    let epsilon = parse_f64(line, rest.trim())?;
    let (line, rest) = lines.expect_keyword("choices")?;
    let choices = rest
        .split_whitespace()
        .map(|t| {
            if t == "-" {
                Ok(None)
            } else {
                t.parse::<usize>()
                    .map(Some)
                    .map_err(|_| fail(line, &format!("bad choice `{t}`")))
            }
        })
        .collect::<Result<_, _>>()?;
    let (line, rest) = lines.expect_keyword("goal")?;
    let goal = rest
        .split_whitespace()
        .map(|t| match t {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(fail(line, &format!("bad goal flag `{other}`"))),
        })
        .collect::<Result<_, _>>()?;
    lines.expect_end()?;
    Ok(SchedulerCertificate {
        opt,
        value,
        epsilon,
        choices,
        goal,
    })
}

fn parse_f64_state(line: usize, rest: &str, net: &Network) -> Result<SmcState, WitnessError> {
    let sections = parse_sections(line, rest, &["locs", "store", "clocks", "time"])?;
    let locs: Vec<LocationId> = sections[0]
        .iter()
        .map(|t| {
            t.parse::<usize>()
                .map(LocationId)
                .map_err(|_| fail(line, &format!("bad location `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    let values: Vec<i64> = sections[1]
        .iter()
        .map(|t| parse_int(line, t))
        .collect::<Result<_, _>>()?;
    let store: Store = store_from_values(net, &values).map_err(|e| fail(line, &e.to_string()))?;
    let clocks: Vec<f64> = sections[2]
        .iter()
        .map(|t| parse_f64(line, t))
        .collect::<Result<_, _>>()?;
    let [time] = sections[3][..] else {
        return Err(fail(line, "expected exactly one time value"));
    };
    Ok(SmcState {
        locs,
        store,
        clocks,
        time: parse_f64(line, time)?,
    })
}

fn parse_runs(lines: &mut Lines<'_>, net: &Network) -> Result<RunCertificate, WitnessError> {
    let mut runs = Vec::new();
    while lines.peek_keyword() == Some("run") {
        let (line, rest) = lines.expect_keyword("run")?;
        let mut toks = rest.split_whitespace();
        let idx: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| fail(line, "run needs an index"))?;
        if idx != runs.len() {
            return Err(fail(
                line,
                &format!("expected run {}, found {idx}", runs.len()),
            ));
        }
        let deadlocked = match toks.next() {
            Some("deadlocked") => true,
            Some("ok") => false,
            _ => return Err(fail(line, "expected `deadlocked` or `ok`")),
        };
        let (line, rest) = lines.expect_keyword("initial")?;
        let initial = parse_f64_state(line, rest, net)?;
        let mut steps = Vec::new();
        while lines.peek_keyword() == Some("step") {
            let (line, rest) = lines.expect_keyword("step")?;
            let mut toks = rest.split_whitespace();
            let delay = toks
                .next()
                .map(|t| parse_f64(line, t))
                .transpose()?
                .ok_or_else(|| fail(line, "step needs a delay"))?;
            let label = toks
                .next()
                .ok_or_else(|| fail(line, "step needs a label"))?
                .to_owned();
            let (line, rest) = lines.expect_keyword("state")?;
            let state = parse_f64_state(line, rest, net)?;
            steps.push(RunStep {
                delay,
                label,
                participants: Vec::new(),
                state,
            });
        }
        runs.push(Run {
            initial,
            steps,
            deadlocked,
        });
    }
    lines.expect_end()?;
    Ok(RunCertificate { runs })
}

/// Parses one `ai:ei[:sel,sel,...]` participant token.
fn parse_participant(line: usize, tok: &str) -> Result<(usize, usize, Vec<i64>), WitnessError> {
    let mut fields = tok.splitn(3, ':');
    let ai = fields
        .next()
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| fail(line, &format!("bad participant `{tok}`")))?;
    let ei = fields
        .next()
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| fail(line, &format!("bad participant `{tok}`")))?;
    let sel = match fields.next() {
        None => Vec::new(),
        Some(s) => s
            .split(',')
            .map(|v| parse_int(line, v))
            .collect::<Result<_, _>>()?,
    };
    Ok((ai, ei, sel))
}

fn parse_priced_runs(
    lines: &mut Lines<'_>,
    net: &Network,
) -> Result<PricedRunCertificate, WitnessError> {
    let mut runs = Vec::new();
    let mut costs = Vec::new();
    while lines.peek_keyword() == Some("run") {
        let (line, rest) = lines.expect_keyword("run")?;
        let mut toks = rest.split_whitespace();
        let idx: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| fail(line, "run needs an index"))?;
        if idx != runs.len() {
            return Err(fail(
                line,
                &format!("expected run {}, found {idx}", runs.len()),
            ));
        }
        let deadlocked = match toks.next() {
            Some("deadlocked") => true,
            Some("ok") => false,
            _ => return Err(fail(line, "expected `deadlocked` or `ok`")),
        };
        if toks.next() != Some("cost") {
            return Err(fail(line, "expected `cost <value>`"));
        }
        let cost = toks
            .next()
            .map(|t| parse_f64(line, t))
            .transpose()?
            .ok_or_else(|| fail(line, "cost needs a value"))?;
        let (line, rest) = lines.expect_keyword("initial")?;
        let initial = parse_f64_state(line, rest, net)?;
        let mut steps = Vec::new();
        while lines.peek_keyword() == Some("step") {
            let (line, rest) = lines.expect_keyword("step")?;
            let mut toks = rest.split_whitespace();
            let delay = toks
                .next()
                .map(|t| parse_f64(line, t))
                .transpose()?
                .ok_or_else(|| fail(line, "step needs a delay"))?;
            let label = toks
                .next()
                .ok_or_else(|| fail(line, "step needs a label"))?
                .to_owned();
            let participants = toks
                .map(|t| parse_participant(line, t))
                .collect::<Result<_, _>>()?;
            let (line, rest) = lines.expect_keyword("state")?;
            let state = parse_f64_state(line, rest, net)?;
            steps.push(RunStep {
                delay,
                label,
                participants,
                state,
            });
        }
        runs.push(Run {
            initial,
            steps,
            deadlocked,
        });
        costs.push(cost);
    }
    lines.expect_end()?;
    Ok(PricedRunCertificate { runs, costs })
}
