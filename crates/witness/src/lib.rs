//! `tempo-witness` — concrete trace realization, certificates, and an
//! independent cross-engine replay validator.
//!
//! Every verdict-producing engine in the workspace (reachability, liveness,
//! CORA cost-optimal search, TIGA synthesis, SMC simulation, MDP value
//! iteration) answers with a *symbolic* artifact: a zone trace, a strategy
//! over symbolic states, a probability. This crate closes the loop between
//! those artifacts and the raw model semantics:
//!
//! 1. **Realization** ([`realize`]) turns a symbolic zone [`tempo_ta::Trace`]
//!    into a [`ConcreteTrace`] — an explicit timed run with one rational
//!    delay per step (encoded exactly as scaled integers) that satisfies
//!    every guard, invariant, and reset along the way.
//! 2. **Replay validation** ([`replay`], [`replay_run`]) re-executes a
//!    concrete trace against the raw [`tempo_ta::Network`] definition using
//!    an independent interpreter that shares *no* code with the exploration
//!    engines. A bug in zone extrapolation, in the digital-clocks engine, or
//!    in the simulator cannot also hide in the validator.
//! 3. **Certificates** ([`certify`]) wrap each engine's governed entry point
//!    so that, alongside the verdict, the caller receives a self-contained
//!    checkable object: a realized trace, a cost-annotated run whose step
//!    costs sum to the reported minimum, a closed-loop strategy table, or a
//!    memoryless scheduler whose induced Markov chain reproduces the
//!    reported probability.
//! 4. **Serialization** ([`format`]) renders certificates in a line-oriented
//!    std-only text format and parses them back, so certificates can be
//!    stored as golden files and checked by third parties.
//!
//! Validation failures are *typed* ([`WitnessError`]): a wrong delay, an
//! unsatisfied guard, a cost mismatch, or an incomplete strategy each
//! produce a distinct error naming the offending step or state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod realize;
mod semantics;
mod trace;
mod validate;

pub mod certify;
pub mod format;

pub use error::WitnessError;
pub use realize::realize;
pub use trace::{ConcreteState, ConcreteStep, ConcreteTrace, JointAction, TraceSemantics};
pub use validate::{replay, replay_priced_run, replay_run};
