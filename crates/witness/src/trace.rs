//! The concrete timed run: the common witness shape shared by every
//! engine's certificate.
//!
//! A [`ConcreteTrace`] is a fully explicit run of a network: an initial
//! state, then steps of the form *delay, then (optionally) fire a joint
//! move*, each with the full successor state. Clock values and delays
//! are integers over a common denominator [`ConcreteTrace::denom`], so
//! symbolic zone traces (which may require rational delays at strict
//! bounds) and digital-clock traces (denominator 1) share one exact,
//! float-free representation.

use std::fmt;
use tempo_ta::Network;

/// Which concrete semantics the trace claims to follow. The two differ
/// only in the urgency rule used to decide whether time may elapse and
/// in clock clamping (see `validate`); both are replayed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSemantics {
    /// The symbolic engines' semantics (`tempo_ta::Explorer`): rational
    /// time, no clamping; an urgent synchronization blocks delay only if
    /// a matching receiver is enabled.
    Symbolic,
    /// The digital-clocks semantics (`tempo_ta::DigitalExplorer`):
    /// integer time, clocks clamped one above the model's maximal
    /// constants; an urgent *broadcast* sender blocks delay even without
    /// receivers.
    Digital,
}

/// A fully concrete network state: locations, discrete store and exact
/// clock values (numerators over the trace's denominator).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConcreteState {
    /// Current location index of each automaton.
    pub locs: Vec<usize>,
    /// Flattened discrete variable values (declaration order, as in
    /// [`tempo_expr::Store::as_slice`]).
    pub store: Vec<i64>,
    /// Clock value numerators; `clocks[0]` is the reference clock and is
    /// always `0`.
    pub clocks: Vec<i64>,
}

/// A joint action: the participating edges, sender (or lone mover)
/// first, each with its select-binding values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JointAction {
    /// Display label (`tau`, `chan[idx]`, `chan[idx]!!`).
    pub label: String,
    /// `(automaton index, edge index, select values)` per participant.
    pub participants: Vec<(usize, usize, Vec<i64>)>,
}

/// One step of a concrete run: let `delay` time pass, then fire
/// `action` (or nothing, for a trailing/pure delay), landing in `state`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteStep {
    /// Delay numerator (over the trace denominator); never negative.
    pub delay: i64,
    /// The joint move fired after the delay, if any.
    pub action: Option<JointAction>,
    /// The state reached after the delay and the action.
    pub state: ConcreteState,
}

/// A concrete timed run of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteTrace {
    /// Claimed semantics (decides the urgency rule during replay).
    pub semantics: TraceSemantics,
    /// Common denominator of all clock values and delays (`>= 1`;
    /// digital traces use `1`).
    pub denom: i64,
    /// The initial state (all clocks zero).
    pub initial: ConcreteState,
    /// The steps, in execution order.
    pub steps: Vec<ConcreteStep>,
}

impl ConcreteTrace {
    /// Total elapsed time of the run, as `(numerator, denominator)`.
    #[must_use]
    pub fn duration(&self) -> (i64, i64) {
        (self.steps.iter().map(|s| s.delay).sum(), self.denom)
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the trace with location and clock names resolved against
    /// the network (the human-oriented counterpart of the certificate
    /// text format).
    #[must_use]
    pub fn render(&self, net: &Network) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", render_state(net, &self.initial, self.denom));
        for step in &self.steps {
            let action = step.action.as_ref().map_or("(delay)", |a| a.label.as_str());
            let _ = writeln!(
                out,
                "  --[{} after {}]-->",
                action,
                render_time(step.delay, self.denom)
            );
            let _ = writeln!(out, "{}", render_state(net, &step.state, self.denom));
        }
        out
    }
}

fn render_time(num: i64, denom: i64) -> String {
    if denom == 1 || num % denom == 0 {
        format!("{}", num / denom.max(1))
    } else {
        format!("{num}/{denom}")
    }
}

fn render_state(net: &Network, s: &ConcreteState, denom: i64) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("(");
    for (ai, a) in net.automata().iter().enumerate() {
        if ai > 0 {
            out.push_str(", ");
        }
        let name = s
            .locs
            .get(ai)
            .and_then(|&l| a.locations.get(l))
            .map_or("?", |l| l.name.as_str());
        let _ = write!(out, "{}.{}", a.name, name);
    }
    out.push(')');
    let names = net.clock_names();
    for (i, &c) in s.clocks.iter().enumerate().skip(1) {
        let name = names.get(i).map_or("?", String::as_str);
        let _ = write!(out, " {}={}", name, render_time(c, denom));
    }
    out
}

impl fmt::Display for JointAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)?;
        for (ai, ei, sel) in &self.participants {
            write!(f, " {ai}.{ei}")?;
            if !sel.is_empty() {
                write!(f, "{sel:?}")?;
            }
        }
        Ok(())
    }
}
