//! An independent re-implementation of the concrete network semantics,
//! built only from the public model data of [`tempo_ta::Network`] (and
//! the [`tempo_expr`] data language). It shares *no* code with the
//! exploration engines (`Explorer`, `DigitalExplorer`, the zone
//! algebra): guards, invariants, synchronization discipline, urgency,
//! committed priority, resets and updates are all re-derived from the
//! raw edges, so it can serve as a semantic oracle for their outputs.
//!
//! Clock values are integers scaled by a common denominator, which makes
//! every comparison exact: a symbolic trace realized with denominator
//! `d` checks the atom `x - y < c` as `x_num - y_num < c * d`.

use crate::error::WitnessError;
use crate::trace::{ConcreteState, JointAction, TraceSemantics};
use tempo_expr::Store;
use tempo_ta::{ChannelKind, ClockAtom, LocationId, LocationKind, Network, StateFormula, SyncDir};

/// A replay state: the exact concrete configuration being re-executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RState {
    pub locs: Vec<LocationId>,
    pub store: Store,
    /// Scaled clock numerators; `clocks[0] == 0`.
    pub clocks: Vec<i64>,
}

/// The independent replayer: network + semantics mode + scale.
#[derive(Debug)]
pub(crate) struct Replayer<'n> {
    pub net: &'n Network,
    pub mode: TraceSemantics,
    pub denom: i64,
    /// Scaled clamp values (digital mode only): one above the model's
    /// maximal constants, the documented [`tempo_ta::DigitalState`]
    /// contract.
    clamp: Option<Vec<i64>>,
    /// When set, clock guards are ignored during enumeration (the f64
    /// replay re-checks them at its own valuation).
    clockless: bool,
}

/// Checks `diff ≺ c * denom` for the atom's bound, exactly.
pub(crate) fn bound_satisfied_scaled(atom: &ClockAtom, diff: i64, denom: i64) -> bool {
    if atom.bound.is_inf() {
        return true;
    }
    let rhs = atom.bound.constant() * denom;
    if atom.bound.is_strict() {
        diff < rhs
    } else {
        diff <= rhs
    }
}

/// All select-binding assignments of the given ranges (cartesian).
pub(crate) fn select_values(ranges: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = vec![Vec::new()];
    for &(lo, hi) in ranges {
        let mut next = Vec::new();
        for prefix in &out {
            for v in lo..=hi {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Rebuilds a variable [`Store`] from its flattened value list
/// (declaration order), validating every value against its declared
/// range.
pub(crate) fn store_from_values(net: &Network, values: &[i64]) -> Result<Store, WitnessError> {
    let decls = net.decls();
    let mut store = decls.initial_store();
    if values.len() != store.as_slice().len() {
        return Err(WitnessError::Malformed(format!(
            "{} store values, network declares {}",
            values.len(),
            store.as_slice().len()
        )));
    }
    for info in decls.vars() {
        let id = decls
            .lookup(&info.name)
            .expect("declared variables resolve by name");
        for k in 0..info.len {
            let value = values[info.offset() + k];
            store
                .set_index(decls, id, k as i64, value)
                .map_err(|e| WitnessError::Malformed(format!("store value: {e}")))?;
        }
    }
    Ok(store)
}

impl<'n> Replayer<'n> {
    pub fn new(net: &'n Network, mode: TraceSemantics, denom: i64) -> Self {
        let clamp = (mode == TraceSemantics::Digital).then(|| {
            net.max_constants()
                .into_iter()
                .map(|c| (c + 1) * denom)
                .collect()
        });
        Replayer {
            net,
            mode,
            denom,
            clamp,
            clockless: false,
        }
    }

    /// A data-level replayer: enumerates joint moves without clock
    /// guards, for callers replaying at a non-integer valuation.
    pub fn data_only(net: &'n Network) -> Self {
        Replayer {
            net,
            mode: TraceSemantics::Symbolic,
            denom: 1,
            clamp: None,
            clockless: true,
        }
    }

    /// The network's initial replay state.
    pub fn initial(&self) -> RState {
        RState {
            locs: self.net.automata().iter().map(|a| a.initial).collect(),
            store: self.net.decls().initial_store(),
            clocks: vec![0; self.net.dim()],
        }
    }

    /// Converts to the serializable state shape.
    pub fn to_concrete(&self, s: &RState) -> ConcreteState {
        ConcreteState {
            locs: s.locs.iter().map(|l| l.index()).collect(),
            store: s.store.as_slice().to_vec(),
            clocks: s.clocks.clone(),
        }
    }

    /// Rebuilds a replay state from its serialized shape, validating
    /// every index and variable range against the network.
    pub fn decode(&self, s: &ConcreteState) -> Result<RState, WitnessError> {
        let autos = self.net.automata();
        if s.locs.len() != autos.len() {
            return Err(WitnessError::Malformed(format!(
                "{} locations for {} automata",
                s.locs.len(),
                autos.len()
            )));
        }
        for (ai, (&l, a)) in s.locs.iter().zip(autos).enumerate() {
            if l >= a.locations.len() {
                return Err(WitnessError::Malformed(format!(
                    "location {l} out of range for automaton {ai}"
                )));
            }
        }
        if s.clocks.len() != self.net.dim() {
            return Err(WitnessError::Malformed(format!(
                "{} clocks, network has {}",
                s.clocks.len(),
                self.net.dim()
            )));
        }
        if s.clocks.first().copied().unwrap_or(0) != 0 {
            return Err(WitnessError::Malformed(
                "reference clock must be 0".to_owned(),
            ));
        }
        let store = store_from_values(self.net, &s.store)?;
        Ok(RState {
            locs: s.locs.iter().map(|&l| LocationId(l)).collect(),
            store,
            clocks: s.clocks.clone(),
        })
    }

    /// The automaton whose invariant is violated at the valuation, if
    /// any.
    pub fn invariant_violation(&self, locs: &[LocationId], clocks: &[i64]) -> Option<usize> {
        self.net.automata().iter().zip(locs).position(|(a, &l)| {
            a.locations[l.index()].invariant.iter().any(|atom| {
                !bound_satisfied_scaled(
                    atom,
                    clocks[atom.i.index()] - clocks[atom.j.index()],
                    self.denom,
                )
            })
        })
    }

    /// Advances every non-reference clock by `delay` (scaled), applying
    /// the digital clamp in digital mode.
    pub fn delayed_clocks(&self, clocks: &[i64], delay: i64) -> Vec<i64> {
        clocks
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i == 0 {
                    0
                } else {
                    let v = c + delay;
                    match &self.clamp {
                        Some(clamp) => v.min(clamp[i]),
                        None => v,
                    }
                }
            })
            .collect()
    }

    fn edge_data_enabled(&self, state: &RState, ai: usize, ei: usize, sel: &[i64]) -> bool {
        let e = &self.net.automata()[ai].edges[ei];
        e.from == state.locs[ai]
            && e.guard_data
                .eval_bool(self.net.decls(), &state.store, sel)
                .unwrap_or(false)
    }

    fn edge_clock_enabled(&self, state: &RState, ai: usize, ei: usize) -> bool {
        if self.clockless {
            return true;
        }
        self.net.automata()[ai].edges[ei]
            .guard_clocks
            .iter()
            .all(|atom| {
                bound_satisfied_scaled(
                    atom,
                    state.clocks[atom.i.index()] - state.clocks[atom.j.index()],
                    self.denom,
                )
            })
    }

    /// Whether some automaton has a data-enabled receiving edge for
    /// `(channel, idx)`, other than `sender` (used for urgency and for
    /// broadcast maximality).
    fn matching_receiver(&self, state: &RState, sender: usize, channel: usize, idx: i64) -> bool {
        self.receiver_options(state, sender, channel, idx)
            .iter()
            .any(|opts| !opts.is_empty())
    }

    /// Per automaton, the data-enabled `(edge, sel)` receive options for
    /// `(channel, idx)`; the sender's entry is always empty.
    fn receiver_options(
        &self,
        state: &RState,
        sender: usize,
        channel: usize,
        idx: i64,
    ) -> Vec<Vec<(usize, Vec<i64>)>> {
        let decls = self.net.decls();
        self.net
            .automata()
            .iter()
            .enumerate()
            .map(|(bi, b)| {
                if bi == sender {
                    return Vec::new();
                }
                let mut opts = Vec::new();
                for (ri, r) in b.edges.iter().enumerate() {
                    let Some(rs) = &r.sync else { continue };
                    if rs.dir != SyncDir::Recv || rs.channel.index() != channel {
                        continue;
                    }
                    for rsel in select_values(&r.selects) {
                        if rs.index.eval(decls, &state.store, &rsel) == Ok(idx)
                            && self.edge_data_enabled(state, bi, ri, &rsel)
                        {
                            opts.push((ri, rsel));
                        }
                    }
                }
                opts
            })
            .collect()
    }

    /// Whether time may elapse: no urgent or committed location, and no
    /// enabled urgent synchronization (rule per semantics mode).
    pub fn can_delay(&self, state: &RState) -> bool {
        let urgent_loc = state
            .locs
            .iter()
            .zip(self.net.automata())
            .any(|(&l, a)| a.locations[l.index()].kind != LocationKind::Normal);
        if urgent_loc {
            return false;
        }
        !self.urgent_sync_enabled(state)
    }

    fn urgent_sync_enabled(&self, state: &RState) -> bool {
        let decls = self.net.decls();
        for (ai, a) in self.net.automata().iter().enumerate() {
            for e in a.edges.iter().filter(|e| e.from == state.locs[ai]) {
                let Some(sync) = &e.sync else { continue };
                let ch = &self.net.channels()[sync.channel.index()];
                if sync.dir != SyncDir::Send || !ch.urgent {
                    continue;
                }
                for sel in select_values(&e.selects) {
                    if !e
                        .guard_data
                        .eval_bool(decls, &state.store, &sel)
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    let Ok(idx) = sync.index.eval(decls, &state.store, &sel) else {
                        continue;
                    };
                    if idx < 0 || idx as usize >= ch.size {
                        continue;
                    }
                    // Digital semantics: an urgent broadcast sender
                    // blocks time even with no receiver; otherwise a
                    // matching receiver is required.
                    if self.mode == TraceSemantics::Digital && ch.kind == ChannelKind::Broadcast {
                        return true;
                    }
                    if self.matching_receiver(state, ai, sync.channel.index(), idx) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Validates that a recorded joint action is a legal move in the
    /// state: edges exist and start here, guards hold, the participants
    /// form a legal synchronization (binary pairing, broadcast
    /// maximality), and committed priority is respected.
    pub fn check_action(
        &self,
        state: &RState,
        action: &JointAction,
        step: usize,
    ) -> Result<(), WitnessError> {
        let autos = self.net.automata();
        let decls = self.net.decls();
        let illegal = |reason: &str| WitnessError::IllegalMove {
            step,
            reason: reason.to_owned(),
        };
        if action.participants.is_empty() {
            return Err(illegal("no participants"));
        }
        // Structural checks per participant.
        let mut seen = vec![false; autos.len()];
        for &(ai, ei, ref sel) in &action.participants {
            if ai >= autos.len() || ei >= autos[ai].edges.len() {
                return Err(illegal("edge index out of range"));
            }
            if seen[ai] {
                return Err(illegal("duplicate participant automaton"));
            }
            seen[ai] = true;
            let e = &autos[ai].edges[ei];
            if e.from != state.locs[ai] {
                return Err(illegal("edge does not start in the current location"));
            }
            if sel.len() != e.selects.len()
                || sel
                    .iter()
                    .zip(&e.selects)
                    .any(|(&v, &(lo, hi))| v < lo || v > hi)
            {
                return Err(illegal("select binding outside its range"));
            }
            if !self.edge_data_enabled(state, ai, ei, sel) {
                return Err(WitnessError::GuardUnsatisfied {
                    step,
                    automaton: ai,
                });
            }
            if !self.edge_clock_enabled(state, ai, ei) {
                return Err(WitnessError::GuardUnsatisfied {
                    step,
                    automaton: ai,
                });
            }
        }
        // Committed priority: when any automaton rests in a committed
        // location, the move must involve a committed participant.
        let committed: Vec<bool> = state
            .locs
            .iter()
            .zip(autos)
            .map(|(&l, a)| a.locations[l.index()].kind == LocationKind::Committed)
            .collect();
        if committed.iter().any(|&c| c)
            && !action.participants.iter().any(|&(ai, _, _)| committed[ai])
        {
            return Err(illegal("committed priority violated"));
        }
        // Synchronization structure, keyed by the initiator's sync.
        let (ai0, ei0, ref sel0) = action.participants[0];
        let initiator = &autos[ai0].edges[ei0];
        match &initiator.sync {
            None => {
                if action.participants.len() != 1 {
                    return Err(illegal("internal move with multiple participants"));
                }
            }
            Some(sync) => {
                if sync.dir != SyncDir::Send {
                    return Err(illegal("initiator is not a sender"));
                }
                let ch = &self.net.channels()[sync.channel.index()];
                let idx = sync
                    .index
                    .eval(decls, &state.store, sel0)
                    .map_err(|e| illegal(&format!("channel index: {e}")))?;
                if idx < 0 || idx as usize >= ch.size {
                    return Err(illegal("channel index out of range"));
                }
                for &(bi, ri, ref rsel) in &action.participants[1..] {
                    let r = &autos[bi].edges[ri];
                    let matches = r.sync.as_ref().is_some_and(|rs| {
                        rs.dir == SyncDir::Recv
                            && rs.channel == sync.channel
                            && rs.index.eval(decls, &state.store, rsel) == Ok(idx)
                    });
                    if !matches {
                        return Err(illegal("receiver does not match the sender's channel"));
                    }
                }
                match ch.kind {
                    ChannelKind::Binary => {
                        if action.participants.len() != 2 {
                            return Err(illegal("binary sync needs exactly one receiver"));
                        }
                    }
                    ChannelKind::Broadcast => {
                        // Maximality: every automaton with a data-enabled
                        // matching receiver must participate (broadcast
                        // receivers carry no clock guards by model
                        // validation, so data-enabled is enabled).
                        let opts = self.receiver_options(state, ai0, sync.channel.index(), idx);
                        for (bi, o) in opts.iter().enumerate() {
                            let participates =
                                action.participants.iter().any(|&(pi, _, _)| pi == bi);
                            if !o.is_empty() && !participates {
                                return Err(illegal("broadcast synchronization not maximal"));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fires a checked action: per participant (in order) evaluate and
    /// apply resets over the evolving store, run the update, move the
    /// location; then check the target invariants.
    pub fn apply_action(
        &self,
        state: &RState,
        action: &JointAction,
        step: usize,
    ) -> Result<RState, WitnessError> {
        let mut next = state.clone();
        let decls = self.net.decls();
        for &(ai, ei, ref sel) in &action.participants {
            let e = &self.net.automata()[ai].edges[ei];
            for (clock, value) in &e.resets {
                let v =
                    value
                        .eval(decls, &next.store, sel)
                        .map_err(|e| WitnessError::IllegalMove {
                            step,
                            reason: format!("reset evaluation: {e}"),
                        })?;
                if v < 0 {
                    return Err(WitnessError::IllegalMove {
                        step,
                        reason: "clock reset to a negative value".to_owned(),
                    });
                }
                let scaled = v * self.denom;
                next.clocks[clock.index()] = match &self.clamp {
                    Some(clamp) => scaled.min(clamp[clock.index()]),
                    None => scaled,
                };
            }
            e.update
                .execute(decls, &mut next.store, sel)
                .map_err(|err| WitnessError::IllegalMove {
                    step,
                    reason: format!("update: {err}"),
                })?;
            next.locs[ai] = e.to;
        }
        if let Some(a) = self.invariant_violation(&next.locs, &next.clocks) {
            return Err(WitnessError::InvariantViolated { step, automaton: a });
        }
        Ok(next)
    }

    /// Enumerates every joint move enabled in the state, with its
    /// controllability (for game certification and realization search).
    /// Broadcast receiver choices follow the mode: digital semantics
    /// commits to the first matching edge per automaton, the symbolic
    /// semantics branches over all of them.
    pub fn enumerate_moves(&self, state: &RState) -> Vec<(JointAction, bool)> {
        let autos = self.net.automata();
        let decls = self.net.decls();
        let committed: Vec<bool> = state
            .locs
            .iter()
            .zip(autos)
            .map(|(&l, a)| a.locations[l.index()].kind == LocationKind::Committed)
            .collect();
        let any_committed = committed.iter().any(|&c| c);
        let mut out = Vec::new();
        for (ai, a) in autos.iter().enumerate() {
            for (ei, e) in a.edges.iter().enumerate() {
                if e.from != state.locs[ai] {
                    continue;
                }
                for sel in select_values(&e.selects) {
                    if !self.edge_data_enabled(state, ai, ei, &sel)
                        || !self.edge_clock_enabled(state, ai, ei)
                    {
                        continue;
                    }
                    match &e.sync {
                        None => {
                            if any_committed && !committed[ai] {
                                continue;
                            }
                            out.push((
                                JointAction {
                                    label: "tau".to_owned(),
                                    participants: vec![(ai, ei, sel.clone())],
                                },
                                e.controllable,
                            ));
                        }
                        Some(sync) if sync.dir == SyncDir::Send => {
                            let Ok(idx) = sync.index.eval(decls, &state.store, &sel) else {
                                continue;
                            };
                            let ch = &self.net.channels()[sync.channel.index()];
                            if idx < 0 || idx as usize >= ch.size {
                                continue;
                            }
                            let opts = self.receiver_options(state, ai, sync.channel.index(), idx);
                            match ch.kind {
                                ChannelKind::Binary => {
                                    for (bi, o) in opts.iter().enumerate() {
                                        if any_committed && !committed[ai] && !committed[bi] {
                                            continue;
                                        }
                                        for (ri, rsel) in o {
                                            if !self.edge_clock_enabled(state, bi, *ri) {
                                                continue;
                                            }
                                            out.push((
                                                JointAction {
                                                    label: format!("{}[{}]", ch.name, idx),
                                                    participants: vec![
                                                        (ai, ei, sel.clone()),
                                                        (bi, *ri, rsel.clone()),
                                                    ],
                                                },
                                                e.controllable && autos[bi].edges[*ri].controllable,
                                            ));
                                        }
                                    }
                                }
                                ChannelKind::Broadcast => {
                                    if any_committed
                                        && self.mode == TraceSemantics::Digital
                                        && !committed[ai]
                                    {
                                        continue;
                                    }
                                    let mut combos: Vec<Vec<(usize, usize, Vec<i64>)>> =
                                        vec![vec![(ai, ei, sel.clone())]];
                                    for (bi, o) in opts.iter().enumerate() {
                                        if o.is_empty() {
                                            continue;
                                        }
                                        let choices: &[(usize, Vec<i64>)] =
                                            if self.mode == TraceSemantics::Digital {
                                                &o[..1]
                                            } else {
                                                o
                                            };
                                        let mut next = Vec::new();
                                        for combo in &combos {
                                            for (ri, rsel) in choices {
                                                let mut c = combo.clone();
                                                c.push((bi, *ri, rsel.clone()));
                                                next.push(c);
                                            }
                                        }
                                        combos = next;
                                    }
                                    for participants in combos {
                                        if any_committed
                                            && self.mode == TraceSemantics::Symbolic
                                            && !participants.iter().any(|&(pi, _, _)| committed[pi])
                                        {
                                            continue;
                                        }
                                        let ctrl = participants
                                            .iter()
                                            .all(|&(pi, pe, _)| autos[pi].edges[pe].controllable);
                                        out.push((
                                            JointAction {
                                                label: format!("{}[{}]!!", ch.name, idx),
                                                participants,
                                            },
                                            ctrl,
                                        ));
                                    }
                                }
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        out
    }

    /// Whether the digital unit-delay tick is permitted, and its
    /// successor (digital mode only).
    pub fn tick(&self, state: &RState) -> Option<RState> {
        if !self.can_delay(state) {
            return None;
        }
        let clocks = self.delayed_clocks(&state.clocks, self.denom);
        if self.invariant_violation(&state.locs, &clocks).is_some() {
            return None;
        }
        Some(RState {
            locs: state.locs.clone(),
            store: state.store.clone(),
            clocks,
        })
    }

    /// Exact satisfaction of a state formula at the concrete state.
    pub fn eval_formula(&self, state: &RState, f: &StateFormula) -> bool {
        match f {
            StateFormula::True => true,
            StateFormula::False => false,
            StateFormula::At(a, l) => state.locs[a.index()] == *l,
            StateFormula::Data(e) => e
                .eval_bool(self.net.decls(), &state.store, &[])
                .unwrap_or(false),
            StateFormula::Clock(atom) => bound_satisfied_scaled(
                atom,
                state.clocks[atom.i.index()] - state.clocks[atom.j.index()],
                self.denom,
            ),
            StateFormula::Not(g) => !self.eval_formula(state, g),
            StateFormula::And(gs) => gs.iter().all(|g| self.eval_formula(state, g)),
            StateFormula::Or(gs) => gs.iter().any(|g| self.eval_formula(state, g)),
        }
    }
}
