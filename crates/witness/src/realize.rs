//! Concrete trace realization: turning a symbolic zone [`Trace`] into a
//! fully explicit [`ConcreteTrace`] with exact rational delays.
//!
//! A symbolic trace records, per step, the discrete configuration and a
//! (possibly extrapolated) clock zone; it never commits to concrete
//! delays. Realization recomputes the *exact* zones along the trace,
//! propagates the goal constraint backwards to learn where each step
//! must land, and then walks forward choosing one integer-scaled delay
//! per step. All arithmetic is exact: clock values are integers over
//! the denominator `net.dim()`, which is enough to hit every nonempty
//! DBM zone (the zone's vertices are integral; its open faces admit
//! points at that granularity).
//!
//! The search is a small DFS: a recorded action (or, for liveness
//! traces, a recorded discrete successor) may be produced by several
//! joint moves or select bindings, and the goal federation may have
//! several pieces; the realizer backtracks over these until one choice
//! realizes, and reports [`WitnessError::Unrealizable`] only when none
//! does.

use crate::error::WitnessError;
use crate::semantics::{RState, Replayer};
use crate::trace::{ConcreteState, ConcreteStep, ConcreteTrace, JointAction, TraceSemantics};
use tempo_dbm::{Bound, Clock, Dbm};
use tempo_expr::Store;
use tempo_ta::{Action, ClockAtom, LocationId, Network, StateFormula, SymState, Trace};

/// One chosen transition of the realization: the concrete joint move
/// (`None` for a pure delay step — liveness lassos close through time
/// elapse), its flattened resets (application order, values already
/// evaluated over the evolving store) and the clock guards it must pass.
struct Leg {
    action: Option<JointAction>,
    resets: Vec<(Clock, i64)>,
    guards: Vec<ClockAtom>,
}

/// Discrete effect of a joint move: successor locations and store, plus
/// the flattened reset list in application order.
type DiscreteEffect = (Vec<LocationId>, Store, Vec<(Clock, i64)>);

/// Realizes a symbolic trace as a concrete timed run whose final state
/// satisfies `goal`. The result is guaranteed to pass
/// [`crate::validate::replay`] (it is replayed before being returned).
///
/// # Errors
///
/// [`WitnessError::Malformed`] if the trace is empty or does not start
/// in the network's initial configuration, and
/// [`WitnessError::Unrealizable`] if no concrete run matches the
/// symbolic steps (e.g. the trace only exists under extrapolation).
pub fn realize(
    net: &Network,
    trace: &Trace,
    goal: &StateFormula,
) -> Result<ConcreteTrace, WitnessError> {
    let Some(first) = trace.steps.first() else {
        return Err(WitnessError::Malformed("empty symbolic trace".to_owned()));
    };
    let initial_ok = first
        .state
        .locs
        .iter()
        .zip(net.automata())
        .all(|(&l, a)| l == a.initial)
        && first.state.store.as_slice() == net.decls().initial_store().as_slice();
    if !initial_ok {
        return Err(WitnessError::WrongInitialState);
    }
    let ctx = Ctx {
        net,
        r: Replayer::data_only(net),
        steps: &trace.steps,
        goal,
        denom: net.dim().max(1) as i64,
    };
    let mut zones = vec![ctx.exact_initial_zone(&first.state)];
    let mut legs = Vec::new();
    let result = ctx.search(0, &mut zones, &mut legs);
    match result {
        Some(concrete) => {
            // Safety net: the realizer's output must satisfy its own
            // independent validator before anyone else sees it.
            crate::validate::replay(net, &concrete, Some(goal))?;
            Ok(concrete)
        }
        None => Err(WitnessError::Unrealizable {
            step: trace.len(),
            reason: "no concrete run matches the symbolic steps and goal".to_owned(),
        }),
    }
}

struct Ctx<'n> {
    net: &'n Network,
    r: Replayer<'n>,
    steps: &'n [tempo_ta::TraceStep],
    goal: &'n StateFormula,
    denom: i64,
}

impl Ctx<'_> {
    fn probe(&self, s: &SymState) -> RState {
        RState {
            locs: s.locs.clone(),
            store: s.store.clone(),
            clocks: vec![0; self.net.dim()],
        }
    }

    fn can_delay(&self, s: &SymState) -> bool {
        self.r.can_delay(&self.probe(s))
    }

    fn invariant_atoms(&self, locs: &[LocationId]) -> Vec<ClockAtom> {
        self.net
            .automata()
            .iter()
            .zip(locs)
            .flat_map(|(a, &l)| a.locations[l.index()].invariant.iter().copied())
            .collect()
    }

    /// The exact (unextrapolated) initial zone: the origin, delayed under
    /// the invariant when the initial configuration admits delay.
    fn exact_initial_zone(&self, s: &SymState) -> Dbm {
        let mut z = Dbm::zero(self.net.dim());
        for atom in self.invariant_atoms(&s.locs) {
            z.constrain(atom.i, atom.j, atom.bound);
        }
        if self.can_delay(s) {
            z.up();
            for atom in self.invariant_atoms(&s.locs) {
                z.constrain(atom.i, atom.j, atom.bound);
            }
        }
        z
    }

    /// Evaluates the discrete effect of a candidate move: successor
    /// locations and store, plus the flattened reset list (application
    /// order, concrete values). `None` if a reset is negative or an
    /// update fails.
    fn discrete_apply(
        &self,
        locs: &[LocationId],
        store: &Store,
        participants: &[(usize, usize, Vec<i64>)],
    ) -> Option<DiscreteEffect> {
        let decls = self.net.decls();
        let mut locs = locs.to_vec();
        let mut store = store.clone();
        let mut resets = Vec::new();
        for &(ai, ei, ref sel) in participants {
            let e = &self.net.automata()[ai].edges[ei];
            for (clock, value) in &e.resets {
                let v = value.eval(decls, &store, sel).ok()?;
                if v < 0 {
                    return None;
                }
                resets.push((*clock, v));
            }
            e.update.execute(decls, &mut store, sel).ok()?;
            locs[ai] = e.to;
        }
        Some((locs, store, resets))
    }

    /// Whether a candidate joint move corresponds to the recorded action.
    fn action_matches(recorded: &Action, cand: &JointAction) -> bool {
        match recorded {
            Action::Internal { automaton, edge } => {
                cand.participants.len() == 1
                    && cand.participants[0].0 == automaton.index()
                    && cand.participants[0].1 == *edge
            }
            Action::Sync {
                sender, receivers, ..
            } => {
                cand.participants.len() == receivers.len() + 1
                    && cand.participants[0].0 == sender.0.index()
                    && cand.participants[0].1 == sender.1
                    && receivers
                        .iter()
                        .zip(&cand.participants[1..])
                        .all(|(rec, p)| p.0 == rec.0.index() && p.1 == rec.1)
            }
        }
    }

    /// DFS over candidate moves for step `idx -> idx+1`; at the last
    /// state, tries each piece of the goal federation.
    fn search(
        &self,
        idx: usize,
        zones: &mut Vec<Dbm>,
        legs: &mut Vec<Leg>,
    ) -> Option<ConcreteTrace> {
        if idx + 1 == self.steps.len() {
            return self.finalize(zones, legs);
        }
        let here = &self.steps[idx].state;
        let next = &self.steps[idx + 1];
        let next_delays = self.can_delay(&next.state);
        // A recorded stutter (same locations and store, no action) is a
        // pure delay step: liveness lassos close through time elapse.
        if next.action.is_none()
            && here.locs == next.state.locs
            && here.store.as_slice() == next.state.store.as_slice()
        {
            zones.push(zones[idx].clone());
            legs.push(Leg {
                action: None,
                resets: Vec::new(),
                guards: Vec::new(),
            });
            if let Some(found) = self.search(idx + 1, zones, legs) {
                return Some(found);
            }
            zones.pop();
            legs.pop();
        }
        for (cand, _) in self.r.enumerate_moves(&self.probe(here)) {
            if let Some(recorded) = &next.action {
                if !Self::action_matches(recorded, &cand) {
                    continue;
                }
            }
            let Some((locs2, store2, resets)) =
                self.discrete_apply(&here.locs, &here.store, &cand.participants)
            else {
                continue;
            };
            if locs2 != next.state.locs || store2.as_slice() != next.state.store.as_slice() {
                continue;
            }
            // Exact successor zone: guards, resets, target invariant,
            // then delay closure when the successor admits delay.
            let guards: Vec<ClockAtom> = cand
                .participants
                .iter()
                .flat_map(|&(ai, ei, _)| {
                    self.net.automata()[ai].edges[ei]
                        .guard_clocks
                        .iter()
                        .copied()
                })
                .collect();
            let mut z = zones[idx].clone();
            if !guards.iter().all(|a| z.constrain(a.i, a.j, a.bound)) {
                continue;
            }
            for &(c, v) in &resets {
                z.reset(c, v);
            }
            let inv = self.invariant_atoms(&locs2);
            if !inv.iter().all(|a| z.constrain(a.i, a.j, a.bound)) {
                continue;
            }
            if next_delays {
                z.up();
                if !inv.iter().all(|a| z.constrain(a.i, a.j, a.bound)) {
                    continue;
                }
            }
            zones.push(z);
            legs.push(Leg {
                action: Some(cand),
                resets,
                guards,
            });
            if let Some(found) = self.search(idx + 1, zones, legs) {
                return Some(found);
            }
            zones.pop();
            legs.pop();
        }
        None
    }

    /// With a complete candidate sequence in hand, tries each goal piece:
    /// backward constraint propagation, then forward delay picking.
    fn finalize(&self, zones: &[Dbm], legs: &[Leg]) -> Option<ConcreteTrace> {
        let last = self.steps.last().expect("non-empty trace");
        let sym = SymState {
            locs: last.state.locs.clone(),
            store: last.state.store.clone(),
            zone: zones.last().expect("one zone per state").clone(),
        };
        let fed = self.goal.sat_federation(self.net, &sym);
        for g in fed.zones() {
            if let Some(t) = self.attempt(zones, legs, g) {
                return Some(t);
            }
        }
        None
    }

    fn attempt(&self, zones: &[Dbm], legs: &[Leg], goal_zone: &Dbm) -> Option<ConcreteTrace> {
        let n = legs.len();
        let delays: Vec<bool> = self
            .steps
            .iter()
            .map(|s| self.can_delay(&s.state))
            .collect();
        // Backward pass: X_i = the subset of state i's zone from which
        // the remaining steps can still reach the goal piece. W_i is the
        // post-delay, pre-action zone of step i (what the forward pass
        // aims its delay at).
        let mut x = if delays[n] {
            let mut x = goal_zone.clone();
            x.down();
            x.intersect(&zones[n]);
            x
        } else {
            goal_zone.clone()
        };
        let mut ws: Vec<Dbm> = vec![Dbm::universe(self.net.dim()); n];
        for i in (0..n).rev() {
            let mut w = x.clone();
            // Reset preimage, exactly: free(W ∩ {c = v}) per reset, in
            // reverse application order.
            for &(c, v) in legs[i].resets.iter().rev() {
                if !w.constrain(c, Clock::REF, Bound::le(v))
                    || !w.constrain(Clock::REF, c, Bound::le(-v))
                {
                    return None;
                }
                w.free(c);
            }
            if !legs[i]
                .guards
                .iter()
                .all(|a| w.constrain(a.i, a.j, a.bound))
            {
                return None;
            }
            if !w.intersect(&zones[i]) {
                return None;
            }
            x = if delays[i] {
                let mut x = w.clone();
                x.down();
                if !x.intersect(&zones[i]) {
                    return None;
                }
                x
            } else {
                w.clone()
            };
            ws[i] = w;
        }
        if !scale_tighten(&x, self.denom).contains(&vec![0; self.net.dim()]) {
            return None;
        }
        // Forward pass: walk from the origin, choosing the minimal
        // integer-scaled delay landing in W_i, then firing the move.
        let mut v = vec![0_i64; self.net.dim()];
        let mut steps = Vec::with_capacity(n + 1);
        for (i, leg) in legs.iter().enumerate() {
            let w = scale_tighten(&ws[i], self.denom);
            let d = pick_delay(&w, &v, delays[i])?;
            for (k, c) in v.iter_mut().enumerate() {
                if k != 0 {
                    *c += d;
                }
            }
            if !w.contains(&v) {
                return None;
            }
            for &(c, val) in &leg.resets {
                v[c.index()] = val * self.denom;
            }
            steps.push(ConcreteStep {
                delay: d,
                action: leg.action.clone(),
                state: ConcreteState {
                    locs: self.steps[i + 1]
                        .state
                        .locs
                        .iter()
                        .map(|l| l.index())
                        .collect(),
                    store: self.steps[i + 1].state.store.as_slice().to_vec(),
                    clocks: v.clone(),
                },
            });
        }
        // Trailing delay into the goal piece, if the arrival point does
        // not satisfy it yet.
        let gsc = scale_tighten(goal_zone, self.denom);
        if !gsc.contains(&v) {
            let d = pick_delay(&gsc, &v, delays[n])?;
            if d == 0 {
                return None;
            }
            for (k, c) in v.iter_mut().enumerate() {
                if k != 0 {
                    *c += d;
                }
            }
            if !gsc.contains(&v) {
                return None;
            }
            let last = &self.steps[n].state;
            steps.push(ConcreteStep {
                delay: d,
                action: None,
                state: ConcreteState {
                    locs: last.locs.iter().map(|l| l.index()).collect(),
                    store: last.store.as_slice().to_vec(),
                    clocks: v.clone(),
                },
            });
        }
        let first = &self.steps[0].state;
        Some(ConcreteTrace {
            semantics: TraceSemantics::Symbolic,
            denom: self.denom,
            initial: ConcreteState {
                locs: first.locs.iter().map(|l| l.index()).collect(),
                store: first.store.as_slice().to_vec(),
                clocks: vec![0; self.net.dim()],
            },
            steps,
        })
    }
}

/// Maps a zone to its scaled-integer skeleton: every finite bound
/// `(≺, c)` becomes `(≤, c·denom - [≺ strict])`. For integer vectors,
/// membership in the result is equivalent to membership of `v/denom`
/// in the original zone.
fn scale_tighten(z: &Dbm, denom: i64) -> Dbm {
    let dim = z.dim();
    let mut out = Dbm::universe(dim);
    for i in 0..dim {
        for j in 0..dim {
            let b = z.bound(i, j);
            if !b.is_inf() {
                out.set_bound_raw(
                    i,
                    j,
                    Bound::le(b.constant() * denom - i64::from(b.is_strict())),
                );
            }
        }
    }
    out.close();
    out
}

/// The minimal non-negative integer delay taking `v` into the scaled
/// zone `w` (all bounds non-strict integers), or `None` if none exists.
/// When the state forbids delay, only `0` is tried.
fn pick_delay(w: &Dbm, v: &[i64], delay_allowed: bool) -> Option<i64> {
    if w.is_empty() {
        return None;
    }
    let mut lo = 0_i64;
    let mut hi = i64::MAX;
    for (j, &vj) in v.iter().enumerate().skip(1) {
        let lower = w.bound(0, j);
        if !lower.is_inf() {
            lo = lo.max(-lower.constant() - vj);
        }
        let upper = w.bound(j, 0);
        if !upper.is_inf() {
            hi = hi.min(upper.constant() - vj);
        }
    }
    if !delay_allowed && lo > 0 {
        return None;
    }
    (lo <= hi).then_some(lo)
}
