//! Typed errors for realization, validation and certificate parsing.
//!
//! Every rejection carries enough structure for a test (or a caller) to
//! distinguish *which* semantic rule a mutated certificate broke, rather
//! than a free-form message: a wrong delay, a wrong cost sum and an
//! incomplete strategy all fail with different variants.

use std::fmt;

/// A typed rejection from the witness subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum WitnessError {
    /// The certificate text could not be parsed (line number, detail).
    Format {
        /// 1-based line of the offending text.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The certificate is structurally inconsistent with the network
    /// (index out of range, wrong clock count, bad denominator, ...).
    Malformed(String),
    /// The recorded initial state is not the network's initial state.
    WrongInitialState,
    /// A step's delay is negative or fractional where integers are
    /// required.
    WrongDelay {
        /// Index of the offending step.
        step: usize,
    },
    /// A delay was taken in a state where time cannot elapse (urgent or
    /// committed location, or an enabled urgent synchronization).
    DelayForbidden {
        /// Index of the offending step.
        step: usize,
    },
    /// A location invariant is violated after the step's delay or after
    /// firing its action.
    InvariantViolated {
        /// Index of the offending step.
        step: usize,
        /// Index of the automaton whose invariant broke.
        automaton: usize,
    },
    /// A participating edge's clock or data guard does not hold.
    GuardUnsatisfied {
        /// Index of the offending step.
        step: usize,
        /// Index of the participating automaton.
        automaton: usize,
    },
    /// The recorded participants do not form a legal joint move
    /// (synchronization structure, committed priority, broadcast
    /// maximality, or no such edge).
    IllegalMove {
        /// Index of the offending step.
        step: usize,
        /// Which rule was broken.
        reason: String,
    },
    /// Re-executing the step does not reproduce the recorded successor
    /// state.
    StateMismatch {
        /// Index of the offending step.
        step: usize,
    },
    /// The final state of the trace does not satisfy the goal property.
    GoalNotSatisfied,
    /// A step's recorded cost differs from the recomputed cost (CORA).
    CostMismatch {
        /// Index of the offending step, or `usize::MAX` for the total.
        step: usize,
        /// Cost recorded in the certificate.
        recorded: i64,
        /// Cost recomputed by the validator.
        recomputed: i64,
    },
    /// A priced run's claimed accumulated cost differs from the cost the
    /// validator re-summed from rates, delays and edge prices.
    RunCostMismatch {
        /// Index of the offending run in its certificate.
        run: usize,
        /// Cost claimed by the certificate.
        recorded: f64,
        /// Cost re-summed by the validator.
        recomputed: f64,
    },
    /// The closed loop reaches a state the strategy does not cover
    /// (TIGA).
    StrategyIncomplete {
        /// Human-readable rendering of the uncovered state.
        state: String,
    },
    /// A prescribed move is not enabled (or not controllable) in its
    /// state (TIGA).
    PrescriptionUnsound {
        /// Human-readable rendering of the state.
        state: String,
        /// Which rule was broken.
        reason: String,
    },
    /// The closed loop can avoid the reachability goal forever (a cycle
    /// or dead end without the goal).
    GoalAvoidable {
        /// Human-readable rendering of the witness state.
        state: String,
    },
    /// The closed loop reaches a bad state in a safety game.
    BadStateReached {
        /// Human-readable rendering of the bad state.
        state: String,
    },
    /// The scheduler's induced Markov chain disagrees with the reported
    /// value by more than epsilon (MDP/mcpta).
    ValueMismatch {
        /// Probability reported by the engine.
        reported: f64,
        /// Probability recomputed from the induced chain.
        recomputed: f64,
        /// Tolerance that was exceeded.
        epsilon: f64,
    },
    /// The symbolic trace could not be realized as a concrete run.
    Unrealizable {
        /// Index of the step at which realization failed.
        step: usize,
        /// Why.
        reason: String,
    },
    /// The engine's out-of-core state store failed (I/O, torn or
    /// corrupt spill record): the query was aborted before producing a
    /// verdict.
    Spill(tempo_obs::SpillError),
}

impl From<tempo_obs::SpillError> for WitnessError {
    fn from(e: tempo_obs::SpillError) -> Self {
        WitnessError::Spill(e)
    }
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Format { line, detail } => {
                write!(f, "certificate parse error at line {line}: {detail}")
            }
            WitnessError::Malformed(d) => write!(f, "malformed certificate: {d}"),
            WitnessError::WrongInitialState => {
                write!(f, "recorded initial state is not the network's")
            }
            WitnessError::WrongDelay { step } => write!(f, "step {step}: invalid delay"),
            WitnessError::DelayForbidden { step } => {
                write!(f, "step {step}: delay taken where time cannot elapse")
            }
            WitnessError::InvariantViolated { step, automaton } => {
                write!(f, "step {step}: invariant of automaton {automaton} violated")
            }
            WitnessError::GuardUnsatisfied { step, automaton } => {
                write!(f, "step {step}: guard of automaton {automaton} unsatisfied")
            }
            WitnessError::IllegalMove { step, reason } => {
                write!(f, "step {step}: illegal joint move ({reason})")
            }
            WitnessError::StateMismatch { step } => {
                write!(f, "step {step}: replay diverges from the recorded state")
            }
            WitnessError::GoalNotSatisfied => {
                write!(f, "final state does not satisfy the goal property")
            }
            WitnessError::CostMismatch {
                step,
                recorded,
                recomputed,
            } => {
                if *step == usize::MAX {
                    write!(f, "total cost {recorded} != recomputed {recomputed}")
                } else {
                    write!(
                        f,
                        "step {step}: recorded cost {recorded} != recomputed {recomputed}"
                    )
                }
            }
            WitnessError::RunCostMismatch {
                run,
                recorded,
                recomputed,
            } => write!(
                f,
                "run {run}: claimed cost {recorded} != re-summed {recomputed}"
            ),
            WitnessError::StrategyIncomplete { state } => {
                write!(f, "strategy covers no prescription for {state}")
            }
            WitnessError::PrescriptionUnsound { state, reason } => {
                write!(f, "prescription unsound in {state}: {reason}")
            }
            WitnessError::GoalAvoidable { state } => {
                write!(f, "environment can avoid the goal from {state}")
            }
            WitnessError::BadStateReached { state } => {
                write!(f, "closed loop reaches bad state {state}")
            }
            WitnessError::ValueMismatch {
                reported,
                recomputed,
                epsilon,
            } => write!(
                f,
                "scheduler value {recomputed} differs from reported {reported} by more than {epsilon}"
            ),
            WitnessError::Unrealizable { step, reason } => {
                write!(f, "trace unrealizable at step {step}: {reason}")
            }
            WitnessError::Spill(e) => write!(f, "state store failure: {e}"),
        }
    }
}

impl std::error::Error for WitnessError {}
