//! Direct regression test for the historical proptest failure recorded in
//! `proptests.proptest-regressions` (seed
//! `4c534bc17fb36b3c8967e8b9bc769f17f7e4963102c367988e9ca4fa40cafb77`).
//!
//! The shrunk counterexample is the `dim = 4` zone
//!
//! ```text
//!     ≤0  ≤0  <0  <0
//!      ∞  ≤0   ∞   ∞
//!      ∞   ∞  ≤0   ∞
//!      ∞   ∞  <0  ≤0
//! ```
//!
//! i.e. `{ x1 ≥ 0, x2 > 0, x3 > 0, x3 < x2 }`: non-empty, but every point
//! needs `0 < x3 < x2`, so the all-integer grid misses the tightest
//! configurations and strict-bound handling in the samplers is exercised.
//! The vendored proptest shim does not replay regression files, so this
//! reconstructs the exact case and checks every single-zone property from
//! `proptests.rs` against it.

use tempo_dbm::{Bound, Clock, Dbm};

/// Rebuild the shrunk counterexample exactly as printed.
fn regression_zone() -> Dbm {
    let mut z = Dbm::universe(4);
    z.set_bound_raw(0, 1, Bound::le(0));
    z.set_bound_raw(0, 2, Bound::lt(0));
    z.set_bound_raw(0, 3, Bound::lt(0));
    z.set_bound_raw(3, 2, Bound::lt(0));
    z.close();
    z
}

#[test]
fn zone_is_nonempty_and_canonical() {
    let z = regression_zone();
    assert!(
        !z.is_empty(),
        "the regression zone has points, e.g. (0,0,1,0.5)"
    );
    // Closing again must be a no-op on a canonical DBM.
    let mut again = z.clone();
    again.close();
    assert_eq!(z, again);
}

#[test]
fn sample_rational_is_complete_on_strict_zone() {
    let z = regression_zone();
    let p = z
        .sample_rational()
        .expect("non-empty zone must yield a rational sample");
    assert!(
        z.contains_f64(&p),
        "sample_rational returned {p:?} outside the zone"
    );
    assert_eq!(p[0], 0.0, "reference clock must stay at zero");
}

#[test]
fn sample_point_is_sound_on_strict_zone() {
    let z = regression_zone();
    // The integer sampler may give up on strict zones, but it must never
    // return a point outside the zone.
    if let Some(p) = z.sample_point() {
        assert!(
            z.contains(&p),
            "sample_point returned {p:?} outside the zone"
        );
    }
}

#[test]
fn extrapolation_idempotent_on_strict_zone() {
    let z = regression_zone();
    let max_consts = [0, 8, 8, 8];
    let mut once = z.clone();
    once.extrapolate(&max_consts);
    let mut twice = once.clone();
    twice.extrapolate(&max_consts);
    assert_eq!(once, twice);
}

#[test]
fn empty_variant_is_handled_by_both_samplers() {
    // Tightening the same shape into inconsistency must flip `is_empty`
    // and make both samplers return None instead of fabricating points.
    let mut z = regression_zone();
    z.constrain(Clock(2), Clock(3), Bound::lt(0)); // x2 < x3 contradicts x3 < x2
    assert!(z.is_empty());
    assert_eq!(z.sample_point(), None);
    assert_eq!(z.sample_rational(), None);
    assert!(!z.contains(&[0, 0, 1, 1]));
    assert!(!z.contains_f64(&[0.0, 0.0, 1.0, 0.5]));
}
