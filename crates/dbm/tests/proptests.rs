//! Property-based tests for the zone algebra.
//!
//! Strategy: generate random zones by applying random sequences of
//! operations to the universe, plus random integer valuations, and check
//! the semantic laws of the operators against concrete membership.

use proptest::prelude::*;
use tempo_dbm::{Bound, Clock, Dbm, Federation};

const DIM: usize = 4;

/// A random constraint `x_i - x_j ≺ c` with small constants.
fn arb_constraint() -> impl Strategy<Value = (usize, usize, Bound)> {
    (0..DIM, 0..DIM, -8_i64..8, prop::bool::ANY).prop_map(|(i, j, c, weak)| {
        let b = if weak { Bound::le(c) } else { Bound::lt(c) };
        (i, j, b)
    })
}

/// A random zone built by constraining the universe.
fn arb_zone() -> impl Strategy<Value = Dbm> {
    prop::collection::vec(arb_constraint(), 0..6).prop_map(|cs| {
        let mut z = Dbm::universe(DIM);
        for (i, j, b) in cs {
            if i != j {
                z.constrain(Clock(i), Clock(j), b);
            }
        }
        z
    })
}

/// A random valuation with small non-negative entries (v[0] == 0).
fn arb_point() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0_i64..10, DIM).prop_map(|mut v| {
        v[0] = 0;
        v
    })
}

proptest! {
    #[test]
    fn intersection_is_conjunction(a in arb_zone(), b in arb_zone(), p in arb_point()) {
        let mut both = a.clone();
        both.intersect(&b);
        prop_assert_eq!(both.contains(&p), a.contains(&p) && b.contains(&p));
    }

    #[test]
    fn inclusion_sound(a in arb_zone(), b in arb_zone(), p in arb_point()) {
        if a.is_subset_of(&b) && a.contains(&p) {
            prop_assert!(b.contains(&p));
        }
    }

    #[test]
    fn up_is_upward_closed(a in arb_zone(), p in arb_point(), d in 0_i64..5) {
        let mut up = a.clone();
        up.up();
        if a.contains(&p) {
            let delayed: Vec<i64> =
                p.iter().enumerate().map(|(i, &v)| if i == 0 { 0 } else { v + d }).collect();
            prop_assert!(up.contains(&delayed));
        }
    }

    #[test]
    fn down_is_downward_closed(a in arb_zone(), p in arb_point(), d in 0_i64..5) {
        let mut down = a.clone();
        down.down();
        if a.contains(&p) && p.iter().skip(1).all(|&v| v >= d) {
            let earlier: Vec<i64> =
                p.iter().enumerate().map(|(i, &v)| if i == 0 { 0 } else { v - d }).collect();
            prop_assert!(down.contains(&earlier));
        }
    }

    #[test]
    fn reset_semantics(a in arb_zone(), p in arb_point(), v in 0_i64..5) {
        let mut r = a.clone();
        r.reset(Clock(1), v);
        if a.contains(&p) {
            let mut q = p.clone();
            q[1] = v;
            prop_assert!(r.contains(&q));
        }
        // Every point of the reset zone has x1 == v.
        if let Some(q) = r.sample_point() {
            prop_assert_eq!(q[1], v);
        }
    }

    #[test]
    fn free_semantics(a in arb_zone(), p in arb_point(), w in 0_i64..10) {
        let mut f = a.clone();
        f.free(Clock(2));
        if a.contains(&p) {
            let mut q = p.clone();
            q[2] = w;
            prop_assert!(f.contains(&q));
        }
    }

    #[test]
    fn sample_point_is_member(a in arb_zone()) {
        // The integer sampler is sound (may be incomplete for zones with
        // only fractional points).
        if let Some(p) = a.sample_point() {
            prop_assert!(a.contains(&p));
        }
    }

    #[test]
    fn sample_rational_is_complete(a in arb_zone()) {
        match a.sample_rational() {
            Some(p) => prop_assert!(a.contains_f64(&p)),
            None => prop_assert!(a.is_empty()),
        }
    }

    #[test]
    fn subtraction_semantics(a in arb_zone(), b in arb_zone(), p in arb_point()) {
        let fa = Federation::from_zones(DIM, vec![a.clone()]);
        let diff = fa.subtract_zone(&b);
        prop_assert_eq!(diff.contains(&p), a.contains(&p) && !b.contains(&p));
    }

    #[test]
    fn subtraction_union_covers(a in arb_zone(), b in arb_zone(), p in arb_point()) {
        // (a ∖ b) ∪ (a ∩ b) == a
        let fa = Federation::from_zones(DIM, vec![a.clone()]);
        let mut rebuilt = fa.subtract_zone(&b);
        let mut meet = a.clone();
        meet.intersect(&b);
        rebuilt.add_zone(meet);
        prop_assert_eq!(rebuilt.contains(&p), a.contains(&p));
    }

    #[test]
    fn federation_inclusion_matches_membership(
        zs in prop::collection::vec(arb_zone(), 1..3),
        ws in prop::collection::vec(arb_zone(), 1..3),
        p in arb_point(),
    ) {
        let f = Federation::from_zones(DIM, zs);
        let g = Federation::from_zones(DIM, ws);
        if f.is_subset_of(&g) && f.contains(&p) {
            prop_assert!(g.contains(&p));
        }
    }

    #[test]
    fn extrapolation_is_an_over_approximation(a in arb_zone(), p in arb_point()) {
        let mut e = a.clone();
        e.extrapolate(&[0, 8, 8, 8]);
        if a.contains(&p) {
            prop_assert!(e.contains(&p));
        }
    }

    #[test]
    fn extrapolation_idempotent(a in arb_zone()) {
        let mut once = a.clone();
        once.extrapolate(&[0, 8, 8, 8]);
        let mut twice = once.clone();
        twice.extrapolate(&[0, 8, 8, 8]);
        prop_assert_eq!(once, twice);
    }
}
