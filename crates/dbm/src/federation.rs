//! Federations: finite unions of [`Dbm`] zones.
//!
//! Zones are convex; many symbolic operations (complement, subtraction,
//! the "bad states" of symbolic deadlock checks, the winning-state sets of
//! timed games) produce non-convex sets, represented here as unions of
//! DBMs of a common dimension.

use crate::{Bound, Clock, Dbm};
use std::fmt;

/// A finite union of zones of a common dimension.
///
/// Invariant: no stored zone is empty, and no stored zone is included in
/// another stored zone (pairwise-inclusion reduced).
///
/// ```
/// use tempo_dbm::{Bound, Clock, Dbm, Federation};
/// let x = Clock(1);
/// let mut low = Dbm::universe(2);
/// low.constrain(x.into(), Clock::REF.into(), Bound::le(2)); // x <= 2
/// let mut high = Dbm::universe(2);
/// high.constrain(Clock::REF.into(), x.into(), Bound::le(-5)); // x >= 5
/// let fed = Federation::from_zones(2, vec![low, high]);
/// assert!(fed.contains(&[0, 1]));
/// assert!(!fed.contains(&[0, 3]));
/// assert!(fed.contains(&[0, 7]));
/// ```
#[derive(Clone, PartialEq)]
pub struct Federation {
    dim: usize,
    zones: Vec<Dbm>,
}

impl Federation {
    /// The empty federation.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn empty(dim: usize) -> Self {
        assert!(dim >= 1, "a federation needs at least the reference clock");
        Federation {
            dim,
            zones: Vec::new(),
        }
    }

    /// The federation containing all clock valuations.
    #[must_use]
    pub fn universe(dim: usize) -> Self {
        Federation {
            dim,
            zones: vec![Dbm::universe(dim)],
        }
    }

    /// Builds a federation from a collection of zones, dropping empty zones
    /// and reducing by pairwise inclusion.
    ///
    /// # Panics
    ///
    /// Panics if a zone's dimension differs from `dim`.
    #[must_use]
    pub fn from_zones(dim: usize, zones: impl IntoIterator<Item = Dbm>) -> Self {
        let mut fed = Federation::empty(dim);
        for z in zones {
            fed.add_zone(z);
        }
        fed
    }

    /// Dimension (number of clocks including the reference clock).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the federation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// The zones of the federation.
    #[must_use]
    pub fn zones(&self) -> &[Dbm] {
        &self.zones
    }

    /// Number of zones in the representation.
    #[must_use]
    pub fn size(&self) -> usize {
        self.zones.len()
    }

    /// Adds a zone, maintaining the reduction invariant.
    ///
    /// # Panics
    ///
    /// Panics if the zone's dimension differs.
    pub fn add_zone(&mut self, z: Dbm) {
        assert_eq!(z.dim(), self.dim, "dimension mismatch");
        if z.is_empty() {
            return;
        }
        if self.zones.iter().any(|existing| z.is_subset_of(existing)) {
            return;
        }
        self.zones.retain(|existing| !existing.is_subset_of(&z));
        self.zones.push(z);
    }

    /// Union with another federation.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn union_with(&mut self, other: &Federation) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        for z in &other.zones {
            self.add_zone(z.clone());
        }
    }

    /// Whether the valuation lies in some zone of the federation.
    #[must_use]
    pub fn contains(&self, v: &[i64]) -> bool {
        self.zones.iter().any(|z| z.contains(v))
    }

    /// Intersection with a single zone.
    #[must_use]
    pub fn intersection_zone(&self, z: &Dbm) -> Federation {
        let mut out = Federation::empty(self.dim);
        for mine in &self.zones {
            let mut piece = mine.clone();
            if piece.intersect(z) {
                out.add_zone(piece);
            }
        }
        out
    }

    /// Intersection with another federation.
    #[must_use]
    pub fn intersection(&self, other: &Federation) -> Federation {
        let mut out = Federation::empty(self.dim);
        for z in &other.zones {
            out.union_with(&self.intersection_zone(z));
        }
        out
    }

    /// Subtracts a single zone: `self ∖ z`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn subtract_zone(&self, z: &Dbm) -> Federation {
        assert_eq!(z.dim(), self.dim, "dimension mismatch");
        if z.is_empty() {
            return self.clone();
        }
        let mut out = Federation::empty(self.dim);
        for mine in &self.zones {
            out.union_with(&subtract_dbm(mine, z));
        }
        out
    }

    /// Subtracts another federation: `self ∖ other`.
    #[must_use]
    pub fn subtract(&self, other: &Federation) -> Federation {
        let mut out = self.clone();
        for z in &other.zones {
            out = out.subtract_zone(z);
        }
        out
    }

    /// Whether `self ⊆ other`, decided exactly via subtraction.
    #[must_use]
    pub fn is_subset_of(&self, other: &Federation) -> bool {
        self.subtract(other).is_empty()
    }

    /// Whether the two federations denote the same set of valuations.
    #[must_use]
    pub fn same_set(&self, other: &Federation) -> bool {
        self.is_subset_of(other) && other.is_subset_of(self)
    }

    /// Applies the delay (future) operator to every zone.
    pub fn up(&mut self) {
        for z in &mut self.zones {
            z.up();
        }
        self.reduce();
    }

    /// Applies the past operator to every zone.
    pub fn down(&mut self) {
        for z in &mut self.zones {
            z.down();
        }
        self.reduce();
    }

    /// Resets a clock in every zone.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Dbm::reset`].
    pub fn reset(&mut self, x: Clock, v: i64) {
        for z in &mut self.zones {
            z.reset(x, v);
        }
        self.reduce();
    }

    /// Frees a clock in every zone.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Dbm::free`].
    pub fn free(&mut self, x: Clock) {
        for z in &mut self.zones {
            z.free(x);
        }
        self.reduce();
    }

    /// Conjoins a constraint onto every zone.
    pub fn constrain(&mut self, i: Clock, j: Clock, bound: Bound) {
        for z in &mut self.zones {
            z.constrain(i, j, bound);
        }
        self.zones.retain(|z| !z.is_empty());
        self.reduce();
    }

    fn reduce(&mut self) {
        let zones = std::mem::take(&mut self.zones);
        for z in zones {
            self.add_zone(z);
        }
    }
}

/// Computes `a ∖ b` as a federation of disjoint zones.
///
/// For each constraint of `b` that actually tightens `a`, one piece
/// `remaining ∧ ¬bᵢⱼ` is emitted and the constraint is conjoined onto
/// `remaining`; the final remainder is included in `b` and dropped.
fn subtract_dbm(a: &Dbm, b: &Dbm) -> Federation {
    let dim = a.dim();
    let mut out = Federation::empty(dim);
    if a.is_empty() {
        return out;
    }
    if b.is_empty() {
        out.add_zone(a.clone());
        return out;
    }
    let mut remaining = a.clone();
    for i in 0..dim {
        for j in 0..dim {
            if i == j {
                continue;
            }
            let bb = b.bound(i, j);
            if bb.is_inf() {
                continue;
            }
            if remaining.is_empty() {
                return out;
            }
            if bb < remaining.bound(i, j) {
                // Piece violating b's (i, j) constraint: x_j - x_i ≺' -c.
                if let Some(neg) = bb.negated() {
                    let mut piece = remaining.clone();
                    if piece.constrain(Clock(j), Clock(i), neg) {
                        out.add_zone(piece);
                    }
                }
                remaining.constrain(Clock(i), Clock(j), bb);
            }
        }
    }
    out
}

impl fmt::Debug for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Federation(dim={}, |zones|={})",
            self.dim,
            self.zones.len()
        )
    }
}

impl fmt::Display for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.zones.is_empty() {
            return write!(f, "false");
        }
        for (k, z) in self.zones.iter().enumerate() {
            if k > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "({z})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: i64, hi: i64) -> Dbm {
        let mut z = Dbm::universe(2);
        z.constrain(Clock(1), Clock::REF, Bound::le(hi));
        z.constrain(Clock::REF, Clock(1), Bound::le(-lo));
        z
    }

    #[test]
    fn subtraction_splits_interval() {
        let all = Federation::from_zones(2, vec![interval(0, 10)]);
        let mid = interval(3, 6);
        let diff = all.subtract_zone(&mid);
        assert!(diff.contains(&[0, 2]));
        assert!(diff.contains(&[0, 7]));
        assert!(!diff.contains(&[0, 3]));
        assert!(!diff.contains(&[0, 6]));
        assert!(!diff.contains(&[0, 4]));
    }

    #[test]
    fn subtraction_of_superset_is_empty() {
        let small = Federation::from_zones(2, vec![interval(2, 4)]);
        let big = interval(0, 10);
        assert!(small.subtract_zone(&big).is_empty());
    }

    #[test]
    fn inclusion_and_equality() {
        let a = Federation::from_zones(2, vec![interval(0, 4), interval(4, 10)]);
        let b = Federation::from_zones(2, vec![interval(0, 10)]);
        assert!(a.is_subset_of(&b));
        assert!(b.is_subset_of(&a)); // the two pieces cover [0,10]
        assert!(a.same_set(&b));
    }

    #[test]
    fn union_reduces_subsumed_zones() {
        let mut fed = Federation::from_zones(2, vec![interval(2, 4)]);
        fed.add_zone(interval(0, 10));
        assert_eq!(fed.size(), 1);
        fed.add_zone(interval(3, 5));
        assert_eq!(fed.size(), 1);
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = Federation::from_zones(2, vec![interval(0, 2)]);
        let b = Federation::from_zones(2, vec![interval(5, 9)]);
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn complement_roundtrip() {
        // (universe ∖ z) ∪ z == universe
        let z = interval(3, 6);
        let uni = Federation::universe(2);
        let mut diff = uni.subtract_zone(&z);
        diff.add_zone(z);
        assert!(diff.same_set(&uni));
    }

    #[test]
    fn strict_bounds_in_subtraction() {
        // [0,10] minus (3,6) keeps the endpoints 3 and 6.
        let mut open = Dbm::universe(2);
        open.constrain(Clock(1), Clock::REF, Bound::lt(6));
        open.constrain(Clock::REF, Clock(1), Bound::lt(-3));
        let all = Federation::from_zones(2, vec![interval(0, 10)]);
        let diff = all.subtract_zone(&open);
        assert!(diff.contains(&[0, 3]));
        assert!(diff.contains(&[0, 6]));
        assert!(!diff.contains(&[0, 4]));
    }
}
