//! # tempo-dbm — zone algebra for timed-systems analysis
//!
//! Difference-bound matrices ([`Dbm`]) and finite unions of them
//! ([`Federation`]) are the symbolic workhorses of timed-automata model
//! checking as implemented in UPPAAL and its flavours (surveyed in Bozga
//! et al., *State-of-the-Art Tools and Techniques for Quantitative Modeling
//! and Analysis of Embedded Systems*, DATE 2012).
//!
//! A DBM of dimension `n` represents a convex *zone*: a conjunction of
//! constraints `xᵢ - xⱼ ≺ c` over clocks `x₁ … x₍ₙ₋₁₎` and the reference
//! clock `x₀ = 0`. The crate provides the full operator suite needed by
//! the symbolic engines in this workspace: delay (`up`), past (`down`),
//! reset, free, intersection, inclusion, maximal-constant extrapolation,
//! and exact set subtraction via federations.
//!
//! ## Example
//!
//! ```
//! use tempo_dbm::{Bound, Clock, Dbm};
//!
//! let x = Clock(1);
//! let mut zone = Dbm::zero(2); // x = 0
//! zone.up();                   // let time pass
//! zone.constrain(x, Clock::REF, Bound::le(10)); // invariant x ≤ 10
//! assert!(zone.contains(&[0, 10]));
//! assert!(!zone.contains(&[0, 11]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
#[allow(clippy::module_inception)]
mod dbm;
mod federation;

pub use bound::{Bound, Strictness};
pub use dbm::Dbm;
pub use federation::Federation;

use std::fmt;

/// Index of a clock in a [`Dbm`]. Index `0` is the constant reference
/// clock `x₀ = 0`.
///
/// ```
/// use tempo_dbm::Clock;
/// assert!(Clock::REF.is_ref());
/// assert_eq!(Clock(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clock(pub usize);

impl Clock {
    /// The reference clock `x₀`, which is always exactly `0`.
    pub const REF: Clock = Clock(0);

    /// The index of this clock within a DBM.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the reference clock.
    #[must_use]
    pub fn is_ref(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<usize> for Clock {
    fn from(i: usize) -> Self {
        Clock(i)
    }
}
