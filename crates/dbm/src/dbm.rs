//! Difference-bound matrices: the canonical symbolic representation of
//! clock zones in timed-automata model checking.
//!
//! A DBM of dimension `n` represents a convex set of clock valuations over
//! clocks `x₁ … x₍ₙ₋₁₎` plus the reference clock `x₀ = 0`. Entry `(i, j)`
//! bounds the difference `xᵢ - xⱼ`.

use crate::{Bound, Clock};
use std::fmt;

/// A difference-bound matrix over `dim` clocks (including the reference
/// clock `0`).
///
/// Invariant: after construction and after every mutating operation exposed
/// by this type, the matrix is *canonical* (shortest-path closed) unless it
/// is empty, and `is_empty` is tracked exactly.
///
/// ```
/// use tempo_dbm::{Dbm, Bound, Clock};
/// let x = Clock(1);
/// let mut z = Dbm::zero(2); // x = 0
/// z.up();                   // delay: x >= 0
/// z.constrain(x.into(), Clock::REF.into(), Bound::le(5)); // x <= 5
/// assert!(z.contains(&[0, 3]));
/// assert!(!z.contains(&[0, 6]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dbm {
    dim: usize,
    data: Vec<Bound>,
    empty: bool,
}

impl Dbm {
    /// The DBM containing every clock valuation (all clocks `≥ 0`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`; a DBM always contains the reference clock.
    #[must_use]
    pub fn universe(dim: usize) -> Self {
        assert!(dim >= 1, "a DBM needs at least the reference clock");
        let mut data = vec![Bound::INF; dim * dim];
        for i in 0..dim {
            data[i * dim + i] = Bound::LE_ZERO;
            // x0 - xi <= 0: clocks are non-negative.
            data[i] = Bound::LE_ZERO;
        }
        Dbm {
            dim,
            data,
            empty: false,
        }
    }

    /// The DBM containing exactly the valuation where all clocks are `0`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zero(dim: usize) -> Self {
        assert!(dim >= 1, "a DBM needs at least the reference clock");
        Dbm {
            dim,
            data: vec![Bound::LE_ZERO; dim * dim],
            empty: false,
        }
    }

    /// Number of clocks including the reference clock.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the zone is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.dim && j < self.dim);
        i * self.dim + j
    }

    /// The bound on `xᵢ - xⱼ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn bound(&self, i: usize, j: usize) -> Bound {
        self.data[self.idx(i, j)]
    }

    /// Sets entry `(i, j)` directly **without** restoring canonical form.
    /// Callers must re-canonicalize with [`Dbm::close`]. Intended for bulk
    /// construction.
    pub fn set_bound_raw(&mut self, i: usize, j: usize, b: Bound) {
        let k = self.idx(i, j);
        self.data[k] = b;
    }

    /// The zone with clocks renamed: entry `(perm[i], perm[j])` of the
    /// result equals entry `(i, j)` of `self`. `perm` must be a
    /// permutation of `0..dim` fixing the reference clock (`perm[0] ==
    /// 0`); canonical form and emptiness are preserved, since renaming
    /// clocks permutes rows and columns without changing any bound.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a reference-fixing permutation of the
    /// right length.
    #[must_use]
    pub fn permute(&self, perm: &[usize]) -> Dbm {
        assert_eq!(perm.len(), self.dim, "permutation length must match dim");
        assert_eq!(perm[0], 0, "the reference clock cannot be renamed");
        let mut data = vec![Bound::INF; self.dim * self.dim];
        for i in 0..self.dim {
            for j in 0..self.dim {
                data[perm[i] * self.dim + perm[j]] = self.data[i * self.dim + j];
            }
        }
        Dbm {
            dim: self.dim,
            data,
            empty: self.empty,
        }
    }

    /// Reconstructs a zone from a flat row-major bound matrix, as
    /// produced by serializing [`Dbm::as_slice`]. The matrix is closed
    /// defensively (identity on canonical input) so emptiness and
    /// canonical form are recomputed rather than trusted — deserialized
    /// bytes never carry semantic authority.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `bounds.len() != dim * dim`.
    #[must_use]
    pub fn from_bounds(dim: usize, bounds: Vec<Bound>) -> Self {
        assert!(dim >= 1, "a DBM needs at least the reference clock");
        assert_eq!(bounds.len(), dim * dim, "bound matrix size mismatch");
        let mut z = Dbm {
            dim,
            data: bounds,
            empty: false,
        };
        z.close();
        z
    }

    /// Restores canonical (shortest-path-closed) form with Floyd–Warshall
    /// and recomputes emptiness. `O(dim³)`.
    pub fn close(&mut self) {
        let n = self.dim;
        for k in 0..n {
            for i in 0..n {
                let dik = self.data[i * n + k];
                if dik.is_inf() {
                    continue;
                }
                for j in 0..n {
                    let via = dik + self.data[k * n + j];
                    if via < self.data[i * n + j] {
                        self.data[i * n + j] = via;
                    }
                }
            }
        }
        self.empty = (0..n).any(|i| self.data[i * n + i] < Bound::LE_ZERO);
        if self.empty {
            // Normalize empty zones so that Eq/Hash identify them.
            self.data.fill(Bound::lt(0));
        }
    }

    /// Incremental closure after tightening entry `(a, b)`: restores
    /// canonical form in `O(dim²)`.
    fn close_pair(&mut self, a: usize, b: usize) {
        let n = self.dim;
        if self.data[a * n + b] + self.data[b * n + a] < Bound::LE_ZERO {
            self.empty = true;
            self.data.fill(Bound::lt(0));
            return;
        }
        for i in 0..n {
            let dia = self.data[i * n + a];
            if dia.is_inf() {
                continue;
            }
            for j in 0..n {
                let via = dia + self.data[a * n + b] + self.data[b * n + j];
                if via < self.data[i * n + j] {
                    self.data[i * n + j] = via;
                }
            }
        }
    }

    /// Conjoins the constraint `xᵢ - xⱼ ≺ c` and restores canonical form.
    ///
    /// Returns `false` if the zone became empty.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn constrain(&mut self, i: Clock, j: Clock, bound: Bound) -> bool {
        if self.empty {
            return false;
        }
        let (i, j) = (i.index(), j.index());
        let k = self.idx(i, j);
        if bound < self.data[k] {
            self.data[k] = bound;
            self.close_pair(i, j);
        }
        !self.empty
    }

    /// Delay (future) operator `Z↑`: removes all upper bounds on clocks.
    /// Preserves canonical form.
    pub fn up(&mut self) {
        if self.empty {
            return;
        }
        let n = self.dim;
        for i in 1..n {
            self.data[i * n] = Bound::INF;
        }
    }

    /// Past operator `Z↓`: removes all lower bounds on clocks (down to 0).
    /// Preserves canonical form.
    pub fn down(&mut self) {
        if self.empty {
            return;
        }
        let n = self.dim;
        for j in 1..n {
            let mut b = Bound::LE_ZERO;
            // Canonicality: new lower bound of x_j is the tightest of
            // (≤0) and the diagonal-difference bounds x_i - x_j.
            for i in 1..n {
                if self.data[i * n + j] < b {
                    b = self.data[i * n + j];
                }
            }
            self.data[j] = b;
        }
    }

    /// Resets clock `x` to the non-negative constant `v`. Preserves
    /// canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `x` is the reference clock or out of range, or if `v < 0`.
    pub fn reset(&mut self, x: Clock, v: i64) {
        assert!(!x.is_ref(), "cannot reset the reference clock");
        assert!(v >= 0, "clocks cannot be reset to negative values");
        if self.empty {
            return;
        }
        let n = self.dim;
        let x = x.index();
        assert!(x < n, "clock out of range");
        for j in 0..n {
            if j != x {
                self.data[x * n + j] = Bound::le(v) + self.data[j];
                self.data[j * n + x] = self.data[j * n] + Bound::le(-v);
            }
        }
    }

    /// Frees clock `x`: removes all constraints on it (it may take any
    /// non-negative value). Preserves canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `x` is the reference clock or out of range.
    pub fn free(&mut self, x: Clock) {
        assert!(!x.is_ref(), "cannot free the reference clock");
        if self.empty {
            return;
        }
        let n = self.dim;
        let x = x.index();
        assert!(x < n, "clock out of range");
        for j in 0..n {
            if j != x {
                self.data[x * n + j] = Bound::INF;
                self.data[j * n + x] = self.data[j * n];
            }
        }
        self.data[x] = Bound::LE_ZERO;
    }

    /// Copies the value of clock `src` into clock `dst` (`dst := src`).
    /// Preserves canonical form.
    ///
    /// # Panics
    ///
    /// Panics if either clock is the reference clock or out of range.
    pub fn copy_clock(&mut self, dst: Clock, src: Clock) {
        assert!(!dst.is_ref() && !src.is_ref(), "reference clock in copy");
        if self.empty || dst == src {
            return;
        }
        let n = self.dim;
        let (d, s) = (dst.index(), src.index());
        for j in 0..n {
            if j != d {
                self.data[d * n + j] = self.data[s * n + j];
                self.data[j * n + d] = self.data[j * n + s];
            }
        }
        self.data[d * n + s] = Bound::LE_ZERO;
        self.data[s * n + d] = Bound::LE_ZERO;
    }

    /// Intersects with another zone of the same dimension.
    ///
    /// Returns `false` if the result is empty.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersect(&mut self, other: &Dbm) -> bool {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.empty {
            return false;
        }
        if other.empty {
            self.empty = true;
            self.data.fill(Bound::lt(0));
            return false;
        }
        let mut changed = false;
        for k in 0..self.dim * self.dim {
            if other.data[k] < self.data[k] {
                self.data[k] = other.data[k];
                changed = true;
            }
        }
        if changed {
            self.close();
        }
        !self.empty
    }

    /// Whether `self ⊆ other` (zone inclusion). Both zones must be
    /// canonical, which this type guarantees.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn is_subset_of(&self, other: &Dbm) -> bool {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        if self.empty {
            return true;
        }
        if other.empty {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| a <= b)
    }

    /// Whether the zones intersect.
    #[must_use]
    pub fn intersects(&self, other: &Dbm) -> bool {
        let mut tmp = self.clone();
        tmp.intersect(other)
    }

    /// Whether the integer valuation `v` (with `v[0] == 0`) lies in the
    /// zone.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    #[must_use]
    pub fn contains(&self, v: &[i64]) -> bool {
        assert_eq!(v.len(), self.dim, "valuation length mismatch");
        if self.empty {
            return false;
        }
        for i in 0..self.dim {
            for j in 0..self.dim {
                if !self.data[i * self.dim + j].satisfied_by(v[i] - v[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Classic maximal-constant extrapolation (`Extra_M`), guaranteeing a
    /// finite zone graph. `max_consts[i]` is the largest constant clock `i`
    /// is ever compared against (use `0` if never compared;
    /// `max_consts[0]` is ignored).
    ///
    /// # Panics
    ///
    /// Panics if `max_consts.len() != dim`.
    pub fn extrapolate(&mut self, max_consts: &[i64]) {
        assert_eq!(max_consts.len(), self.dim, "max constants length mismatch");
        if self.empty {
            return;
        }
        let n = self.dim;
        let mut changed = false;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let k = i * n + j;
                let b = self.data[k];
                if b.is_inf() {
                    continue;
                }
                if i != 0 && b > Bound::le(max_consts[i]) {
                    self.data[k] = Bound::INF;
                    changed = true;
                } else if b < Bound::lt(-max_consts[j]) {
                    self.data[k] = Bound::lt(-max_consts[j]);
                    changed = true;
                }
            }
        }
        if changed {
            self.close();
        }
    }

    /// LU extrapolation (`Extra_LU`, Behrmann–Bouyer–Larsen–Pelánek):
    /// like [`Dbm::extrapolate`], but the two rules use *separate*
    /// constants — `lower[i]` is the largest constant clock `i` is
    /// compared against in a lower-bound position (`x ≥ c`, `x > c`)
    /// and `upper[j]` the largest upper-bound constant (`x ≤ c`,
    /// `x < c`, invariants). Since `Extra_M` is the special case
    /// `L = U = M`, splitting the polarities only ever abstracts *more*
    /// while preserving reachability of every location/guard whose
    /// constants are covered. Use `-1` for a clock never compared in
    /// that polarity; the upper-bound relaxation is clamped at `(≤, 0)`
    /// in that case so extrapolated zones never admit negative clock
    /// valuations.
    ///
    /// # Panics
    ///
    /// Panics if `lower.len() != dim` or `upper.len() != dim`.
    // The nested loop reads `lower[i]`/`upper[j]` while writing the
    // flattened matrix cell `i * n + j`; an iterator chain would obscure
    // the row/column symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn extrapolate_lu(&mut self, lower: &[i64], upper: &[i64]) {
        assert_eq!(lower.len(), self.dim, "lower constants length mismatch");
        assert_eq!(upper.len(), self.dim, "upper constants length mismatch");
        if self.empty {
            return;
        }
        let n = self.dim;
        let mut changed = false;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let k = i * n + j;
                let b = self.data[k];
                if b.is_inf() {
                    continue;
                }
                if i != 0 && b > Bound::le(lower[i]) {
                    self.data[k] = Bound::INF;
                    changed = true;
                } else {
                    // `upper[j] == -1` (never upper-bounded) would make
                    // the relaxation target `(<, 1)`, which on row 0
                    // reads `x_j > -1` and admits negative clock
                    // valuations; clamp to `(≤, 0)` so `dbm[0][j] ≤
                    // (≤, 0)` stays invariant (as in UPPAAL's
                    // `extrapolateLUBounds`). Still a relaxation: any
                    // bound below `(<, -upper[j])` is also below
                    // `(≤, 0)` when `-upper[j] > 0`.
                    let target = if upper[j] < 0 {
                        Bound::le(0)
                    } else {
                        Bound::lt(-upper[j])
                    };
                    if b < target {
                        self.data[k] = target;
                        changed = true;
                    }
                }
            }
        }
        if changed {
            self.close();
        }
    }

    /// Returns a rational valuation (as `f64`s with denominator `dim`)
    /// contained in the zone, or `None` iff the zone is empty.
    ///
    /// Every non-empty zone with integer bounds contains a point on the
    /// `1/dim` grid, obtained by scaling all bounds by `dim` (turning
    /// strict bounds `(<, c)` into `(≤, dim·c - 1)`), re-closing, and
    /// reading off the scaled lower bounds.
    #[must_use]
    pub fn sample_rational(&self) -> Option<Vec<f64>> {
        if self.empty {
            return None;
        }
        let n = self.dim as i64;
        let mut scaled = self.clone();
        for k in 0..self.dim * self.dim {
            let b = scaled.data[k];
            if !b.is_inf() {
                scaled.data[k] = if b.is_strict() {
                    Bound::le(n * b.constant() - 1)
                } else {
                    Bound::le(n * b.constant())
                };
            }
        }
        scaled.close();
        debug_assert!(!scaled.is_empty(), "scaling must preserve non-emptiness");
        Some(
            (0..self.dim)
                .map(|i| -scaled.bound(0, i).constant() as f64 / n as f64)
                .collect(),
        )
    }

    /// Whether the real-valued valuation `v` (with `v[0] == 0`) lies in the
    /// zone.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    #[must_use]
    pub fn contains_f64(&self, v: &[f64]) -> bool {
        assert_eq!(v.len(), self.dim, "valuation length mismatch");
        if self.empty {
            return false;
        }
        for i in 0..self.dim {
            for j in 0..self.dim {
                let b = self.data[i * self.dim + j];
                if b.is_inf() {
                    continue;
                }
                let d = v[i] - v[j];
                let c = b.constant() as f64;
                let ok = if b.is_strict() { d < c } else { d <= c };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Returns an arbitrary *integer* valuation contained in the zone, if
    /// the greedy search finds one. Zones with only fractional points
    /// (possible with strict bounds) yield `None` even when non-empty; use
    /// [`Dbm::sample_rational`] for a complete sampler.
    #[must_use]
    pub fn sample_point(&self) -> Option<Vec<i64>> {
        if self.empty {
            return None;
        }
        let n = self.dim;
        let mut v = vec![0_i64; n];
        // Greedily fix clocks to their smallest admissible integer value
        // relative to the already-fixed ones.
        for i in 1..n {
            // Lower bound of x_i given fixed x_j (j < i): x_j - x_i <= d_ji
            // => x_i >= x_j - d_ji.
            let mut lo = i64::MIN;
            for (j, &vj) in v.iter().enumerate().take(i) {
                let d = self.data[j * n + i];
                if d.is_inf() {
                    continue;
                }
                let mut candidate = vj - d.constant();
                if d.is_strict() {
                    candidate += 1;
                }
                lo = lo.max(candidate);
            }
            let mut hi = i64::MAX;
            for (j, &vj) in v.iter().enumerate().take(i) {
                let d = self.data[i * n + j];
                if d.is_inf() {
                    continue;
                }
                let mut candidate = vj + d.constant();
                if d.is_strict() {
                    candidate -= 1;
                }
                hi = hi.min(candidate);
            }
            if lo > hi {
                return None;
            }
            v[i] = lo.max(0);
        }
        if self.contains(&v) {
            Some(v)
        } else {
            None
        }
    }

    /// Raw entries in row-major order (for hashing or serialization).
    #[must_use]
    pub fn as_slice(&self) -> &[Bound] {
        &self.data
    }
}

impl fmt::Debug for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "Dbm(∅, dim={})", self.dim);
        }
        writeln!(f, "Dbm(dim={})", self.dim)?;
        for i in 0..self.dim {
            write!(f, "  ")?;
            for j in 0..self.dim {
                write!(f, "{:>8}", self.data[i * self.dim + j].to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for Dbm {
    /// Displays the zone as a conjunction of non-trivial constraints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "false");
        }
        let mut first = true;
        let n = self.dim;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let b = self.data[i * n + j];
                if b.is_inf() || (j == 0 && i != 0 && b == Bound::INF) {
                    continue;
                }
                // Skip the implicit x0 - xi <= 0 constraints.
                if i == 0 && b == Bound::LE_ZERO {
                    continue;
                }
                if !first {
                    write!(f, " ∧ ")?;
                }
                first = false;
                let op = if b.is_strict() { "<" } else { "≤" };
                match (i, j) {
                    (0, j) => {
                        let rev = if b.is_strict() { ">" } else { "≥" };
                        write!(f, "x{} {} {}", j, rev, -b.constant())?;
                    }
                    (i, 0) => write!(f, "x{} {} {}", i, op, b.constant())?,
                    (i, j) => write!(f, "x{} - x{} {} {}", i, j, op, b.constant())?,
                }
            }
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> Clock {
        Clock(i)
    }

    #[test]
    fn extrapolate_lu_with_equal_bounds_matches_extra_m() {
        // L = U = M must reproduce Extra_M exactly on a sampled zone.
        let mut a = Dbm::universe(3);
        a.constrain(c(1), Clock::REF, Bound::le(12));
        a.constrain(Clock::REF, c(1), Bound::le(-7));
        a.constrain(c(2), c(1), Bound::le(3));
        let mut b = a.clone();
        a.extrapolate(&[0, 5, 5]);
        b.extrapolate_lu(&[0, 5, 5], &[0, 5, 5]);
        assert_eq!(a, b);
    }

    #[test]
    fn extrapolate_lu_widens_strictly_more_than_extra_m() {
        // Clock 1 has only a lower-bound guard (L = 10, U = -1): once
        // past every upper-bound constant (there are none), the zone's
        // lower bound x1 >= 7 is unobservable and must be dropped —
        // Extra_M (M = 10) would keep it.
        let mut lu = Dbm::universe(2);
        lu.constrain(Clock::REF, c(1), Bound::le(-7));
        let mut m = lu.clone();
        lu.extrapolate_lu(&[0, 10], &[0, -1]);
        m.extrapolate(&[0, 10]);
        assert!(!m.contains(&[0, 3]), "Extra_M keeps the lower bound");
        assert!(lu.contains(&[0, 3]), "Extra_LU drops it (no U guard)");
        assert!(lu.contains(&[0, 100]));
    }

    #[test]
    fn extrapolate_lu_never_admits_negative_clocks() {
        // Clock 1 is never upper-bounded (U = -1): the naive relaxation
        // target for dbm[0][1] would be (<, -(-1)) = (<, 1), i.e.
        // x1 > -1, letting the extrapolated zone dip below zero. The
        // clamp must stop at (≤, 0).
        let mut z = Dbm::universe(2);
        z.constrain(Clock::REF, c(1), Bound::le(-7)); // x1 >= 7
        z.extrapolate_lu(&[0, 10], &[0, -1]);
        assert!(z.contains(&[0, 0]), "lower bound must still be dropped");
        assert!(
            z.bound(0, 1) <= Bound::le(0),
            "row 0 must keep x1 >= 0, got {:?}",
            z.bound(0, 1)
        );
    }

    #[test]
    fn universe_contains_everything_nonnegative() {
        let z = Dbm::universe(3);
        assert!(z.contains(&[0, 0, 0]));
        assert!(z.contains(&[0, 100, 3]));
        assert!(!z.is_empty());
    }

    #[test]
    fn zero_contains_only_origin() {
        let z = Dbm::zero(3);
        assert!(z.contains(&[0, 0, 0]));
        assert!(!z.contains(&[0, 1, 0]));
    }

    #[test]
    fn constrain_and_empty() {
        let mut z = Dbm::universe(2);
        assert!(z.constrain(c(1), Clock::REF, Bound::le(5)));
        assert!(z.constrain(Clock::REF, c(1), Bound::le(-3))); // x1 >= 3
        assert!(z.contains(&[0, 4]));
        assert!(!z.contains(&[0, 2]));
        assert!(!z.constrain(c(1), Clock::REF, Bound::lt(3))); // x1 < 3: empty
        assert!(z.is_empty());
    }

    #[test]
    fn up_and_down() {
        let mut z = Dbm::zero(2);
        z.up();
        assert!(z.contains(&[0, 7]));
        let mut z2 = Dbm::universe(2);
        z2.constrain(Clock::REF, c(1), Bound::le(-5)); // x1 >= 5
        z2.down();
        assert!(z2.contains(&[0, 0]));
        assert!(z2.contains(&[0, 5]));
        assert!(z2.contains(&[0, 9]));
    }

    #[test]
    fn down_keeps_differences() {
        // x1 = x2 + 3, both delayed; past must keep the difference.
        let mut z = Dbm::zero(3);
        z.reset(c(1), 3);
        z.up();
        z.down();
        assert!(z.contains(&[0, 3, 0]));
        assert!(z.contains(&[0, 4, 1]));
        assert!(!z.contains(&[0, 3, 3]));
    }

    #[test]
    fn reset_and_free() {
        let mut z = Dbm::universe(3);
        z.constrain(c(1), Clock::REF, Bound::le(10));
        z.reset(c(2), 4);
        assert!(z.contains(&[0, 10, 4]));
        assert!(!z.contains(&[0, 10, 5]));
        z.free(c(2));
        assert!(z.contains(&[0, 10, 123]));
        assert!(!z.contains(&[0, 11, 0]));
    }

    #[test]
    fn copy_clock_aligns_values() {
        let mut z = Dbm::universe(3);
        z.constrain(c(1), Clock::REF, Bound::le(2));
        z.constrain(Clock::REF, c(1), Bound::le(-2)); // x1 == 2
        z.copy_clock(c(2), c(1));
        assert!(z.contains(&[0, 2, 2]));
        assert!(!z.contains(&[0, 2, 3]));
    }

    #[test]
    fn inclusion() {
        let mut small = Dbm::universe(2);
        small.constrain(c(1), Clock::REF, Bound::le(3));
        let big = Dbm::universe(2);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn intersection() {
        let mut a = Dbm::universe(2);
        a.constrain(c(1), Clock::REF, Bound::le(5));
        let mut b = Dbm::universe(2);
        b.constrain(Clock::REF, c(1), Bound::le(-3));
        assert!(a.intersect(&b));
        assert!(a.contains(&[0, 4]));
        assert!(!a.contains(&[0, 2]));
        assert!(!a.contains(&[0, 6]));
    }

    #[test]
    fn extrapolation_widens_large_bounds() {
        let mut z = Dbm::universe(2);
        z.constrain(c(1), Clock::REF, Bound::le(100));
        z.constrain(Clock::REF, c(1), Bound::le(-100)); // x1 == 100
        z.extrapolate(&[0, 10]);
        // Above the max constant 10, the zone must lose precision upward.
        assert!(z.contains(&[0, 100]));
        assert!(z.contains(&[0, 1000]));
        assert!(!z.contains(&[0, 10])); // lower bound capped at (<, -10)... 10 itself excluded
        assert!(z.contains(&[0, 11]));
    }

    #[test]
    fn sample_point_in_zone() {
        let mut z = Dbm::universe(3);
        z.constrain(Clock::REF, c(1), Bound::le(-2)); // x1 >= 2
        z.constrain(c(1), Clock::REF, Bound::le(9));
        z.constrain(c(2), c(1), Bound::le(-1)); // x2 <= x1 - 1
        let p = z.sample_point().expect("zone is non-empty");
        assert!(z.contains(&p));
    }

    #[test]
    fn sample_point_empty() {
        let mut z = Dbm::universe(2);
        z.constrain(c(1), Clock::REF, Bound::lt(0));
        assert!(z.is_empty());
        assert_eq!(z.sample_point(), None);
    }

    #[test]
    fn empty_zones_are_equal() {
        let mut a = Dbm::universe(2);
        a.constrain(c(1), Clock::REF, Bound::lt(0));
        let mut b = Dbm::universe(2);
        b.constrain(Clock::REF, c(1), Bound::lt(-5));
        b.constrain(c(1), Clock::REF, Bound::le(5));
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a, b);
    }
}
