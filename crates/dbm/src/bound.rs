//! Clock-difference bounds: the entries of a [difference-bound
//! matrix](crate::Dbm).
//!
//! A bound is either `∞` (no constraint) or a pair `(≺, c)` with
//! `≺ ∈ {<, ≤}` and `c` an integer, constraining a clock difference
//! `x - y ≺ c`.
//!
//! Bounds are stored in the classic packed encoding used by UPPAAL's DBM
//! library: `raw = 2 * c + weak_bit`, where `weak_bit = 1` for `≤` and `0`
//! for `<`. With this encoding the natural integer order on `raw` coincides
//! with "is a tighter constraint than": `(<, c)` is tighter than `(≤, c)`
//! which is tighter than `(<, c + 1)`.

use std::fmt;
use std::ops::Add;

/// Strictness of a clock-difference bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strictness {
    /// Strict comparison `<`.
    Strict,
    /// Non-strict comparison `≤`.
    Weak,
}

impl Strictness {
    /// Returns the opposite strictness (`<` ↔ `≤`).
    ///
    /// ```
    /// use tempo_dbm::Strictness;
    /// assert_eq!(Strictness::Strict.flipped(), Strictness::Weak);
    /// ```
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Strictness::Strict => Strictness::Weak,
            Strictness::Weak => Strictness::Strict,
        }
    }
}

/// A bound on a clock difference: `∞` or `(≺, c)`.
///
/// The total order on `Bound` is the *tightness* order: smaller means
/// tighter. `Bound::INF` is the greatest element.
///
/// ```
/// use tempo_dbm::Bound;
/// assert!(Bound::lt(3) < Bound::le(3));
/// assert!(Bound::le(3) < Bound::lt(4));
/// assert!(Bound::le(1_000_000) < Bound::INF);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bound {
    raw: i64,
}

impl Bound {
    /// The absence of a constraint, `∞`.
    pub const INF: Bound = Bound { raw: i64::MAX };

    /// The bound `(≤, 0)`, the diagonal entry of every consistent DBM.
    pub const LE_ZERO: Bound = Bound { raw: 1 };

    /// Creates the non-strict bound `(≤, c)`.
    #[must_use]
    pub fn le(c: i64) -> Self {
        Bound { raw: 2 * c + 1 }
    }

    /// Creates the strict bound `(<, c)`.
    #[must_use]
    pub fn lt(c: i64) -> Self {
        Bound { raw: 2 * c }
    }

    /// Creates a bound from its parts.
    #[must_use]
    pub fn new(strictness: Strictness, c: i64) -> Self {
        match strictness {
            Strictness::Strict => Bound::lt(c),
            Strictness::Weak => Bound::le(c),
        }
    }

    /// Returns `true` if this bound is `∞`.
    #[must_use]
    pub fn is_inf(self) -> bool {
        self.raw == i64::MAX
    }

    /// The constant `c` of a finite bound `(≺, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the bound is `∞`.
    #[must_use]
    pub fn constant(self) -> i64 {
        assert!(!self.is_inf(), "Bound::constant called on ∞");
        self.raw >> 1
    }

    /// Whether a finite bound is strict (`<`).
    ///
    /// # Panics
    ///
    /// Panics if the bound is `∞`.
    #[must_use]
    pub fn is_strict(self) -> bool {
        assert!(!self.is_inf(), "Bound::is_strict called on ∞");
        self.raw & 1 == 0
    }

    /// Strictness of a finite bound.
    ///
    /// # Panics
    ///
    /// Panics if the bound is `∞`.
    #[must_use]
    pub fn strictness(self) -> Strictness {
        if self.is_strict() {
            Strictness::Strict
        } else {
            Strictness::Weak
        }
    }

    /// The negation of a finite bound, as used when complementing a
    /// constraint: `¬(x - y ≤ c)` is `y - x < -c` and `¬(x - y < c)` is
    /// `y - x ≤ -c`.
    ///
    /// Returns `None` for `∞` (the complement of "no constraint" is empty).
    #[must_use]
    pub fn negated(self) -> Option<Bound> {
        if self.is_inf() {
            None
        } else if self.is_strict() {
            Some(Bound::le(-self.constant()))
        } else {
            Some(Bound::lt(-self.constant()))
        }
    }

    /// Tests whether the concrete difference `d` satisfies this bound.
    #[must_use]
    pub fn satisfied_by(self, d: i64) -> bool {
        if self.is_inf() {
            true
        } else if self.is_strict() {
            d < self.constant()
        } else {
            d <= self.constant()
        }
    }

    /// The raw packed representation (for hashing/serialization).
    #[must_use]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Reconstructs a bound from its raw packed representation, the
    /// inverse of [`Bound::raw`]. Every `i64` is a structurally valid
    /// bound (`i64::MAX` is `∞`), so deserialization cannot fail here;
    /// semantic validation happens when the containing DBM is closed.
    #[must_use]
    pub fn from_raw(raw: i64) -> Self {
        Bound { raw }
    }
}

impl Add for Bound {
    type Output = Bound;

    /// Bound addition as used in the triangle inequality of shortest-path
    /// closure: `(≺₁, c₁) + (≺₂, c₂) = (≺₁ ∧ ≺₂, c₁ + c₂)` where the result
    /// is strict iff either operand is; `∞` is absorbing.
    fn add(self, rhs: Bound) -> Bound {
        if self.is_inf() || rhs.is_inf() {
            return Bound::INF;
        }
        // raw = 2c + weak; sum of constants with AND of weak bits.
        Bound {
            raw: ((self.raw >> 1) + (rhs.raw >> 1)) * 2 + (self.raw & rhs.raw & 1),
        }
    }
}

impl Default for Bound {
    fn default() -> Self {
        Bound::INF
    }
}

impl fmt::Debug for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inf() {
            write!(f, "∞")
        } else if self.is_strict() {
            write!(f, "<{}", self.constant())
        } else {
            write!(f, "≤{}", self.constant())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightness_order() {
        assert!(Bound::lt(0) < Bound::le(0));
        assert!(Bound::le(0) < Bound::lt(1));
        assert!(Bound::lt(-3) < Bound::lt(3));
        assert!(Bound::le(100) < Bound::INF);
        assert_eq!(Bound::le(0), Bound::LE_ZERO);
    }

    #[test]
    fn addition() {
        assert_eq!(Bound::le(2) + Bound::le(3), Bound::le(5));
        assert_eq!(Bound::lt(2) + Bound::le(3), Bound::lt(5));
        assert_eq!(Bound::le(2) + Bound::lt(3), Bound::lt(5));
        assert_eq!(Bound::lt(2) + Bound::lt(3), Bound::lt(5));
        assert_eq!(Bound::le(2) + Bound::INF, Bound::INF);
        assert_eq!(Bound::INF + Bound::lt(-7), Bound::INF);
    }

    #[test]
    fn negation() {
        assert_eq!(Bound::le(5).negated(), Some(Bound::lt(-5)));
        assert_eq!(Bound::lt(5).negated(), Some(Bound::le(-5)));
        assert_eq!(Bound::INF.negated(), None);
        // Double negation is identity on finite bounds.
        let b = Bound::le(-3);
        assert_eq!(b.negated().unwrap().negated().unwrap(), b);
    }

    #[test]
    fn satisfaction() {
        assert!(Bound::le(3).satisfied_by(3));
        assert!(!Bound::lt(3).satisfied_by(3));
        assert!(Bound::lt(3).satisfied_by(2));
        assert!(Bound::INF.satisfied_by(i64::MAX / 4));
    }

    #[test]
    fn parts() {
        assert_eq!(Bound::le(7).constant(), 7);
        assert_eq!(Bound::lt(-7).constant(), -7);
        assert!(Bound::lt(0).is_strict());
        assert!(!Bound::le(0).is_strict());
        assert_eq!(Bound::lt(1).strictness(), Strictness::Strict);
    }

    #[test]
    fn display() {
        assert_eq!(Bound::le(4).to_string(), "≤4");
        assert_eq!(Bound::lt(-2).to_string(), "<-2");
        assert_eq!(Bound::INF.to_string(), "∞");
    }
}
