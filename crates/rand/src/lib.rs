//! Vendored, dependency-free stand-in for the parts of the `rand` crate that
//! the tempo workspace uses.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace pins `rand` to this in-tree implementation via a path dependency.
//! It provides a seedable, high-quality PRNG (`StdRng`, xoshiro256++ seeded
//! through SplitMix64) and the `Rng`/`SeedableRng` trait surface used by the
//! simulators: `gen_range` over integer and float ranges (half-open and
//! inclusive) and `gen_bool`.
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across runs, platforms, and thread counts — the SMC engine's
//! reproducibility guarantees build on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: used for seed expansion and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array for `StdRng`).
    type Seed;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it to a full seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard generator: xoshiro256++ (public domain algorithm by
/// Blackman & Vigna), seeded via SplitMix64 so that nearby `u64` seeds
/// produce uncorrelated streams.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn ensure_nonzero(&mut self) {
        if self.s.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point of xoshiro; remap it.
            self.s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
            ];
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        let mut rng = StdRng { s };
        rng.ensure_nonzero();
        rng
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        let mut rng = StdRng { s };
        rng.ensure_nonzero();
        rng
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform f64 in `[0, 1]` (both endpoints reachable).
fn unit_f64_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Range types `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64_inclusive(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Namespaced re-exports matching `rand`'s module layout.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
            let z = rng.gen_range(-10..10i64);
            assert!((-10..10).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        // Crude uniformity check: mean of [0,1) samples near 0.5.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| unit_f64(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq} far from 0.3");
    }
}
