//! Certified entry points: priced estimates whose exported runs are
//! replayed — and their costs re-summed — by the independent
//! [`tempo_witness`] validator before the verdict is returned.
//!
//! The exported runs are regenerated from the same seeds the estimator
//! consumed, so a certificate is evidence about the *reported* estimate,
//! not about a fresh batch. Cost re-summation is exact: the validator
//! accumulates in the same `f64` operation order as the simulator, and
//! [`PricedRunCertificate::validate`] compares bit patterns.

use std::time::Instant;

use crate::priced::{run_cost, trial_seed, PricedChecker};
use crate::split::{RareChecker, SplitConfig, SplitEstimate};
use tempo_cora::PricedNetwork;
use tempo_obs::{Budget, Outcome};
use tempo_smc::{Estimate, RatePolicy, Run, Simulator, DEFAULT_MAX_STEPS};
use tempo_ta::StateFormula;
use tempo_witness::certify::{Certificate, Certified, PricedRunCertificate};
use tempo_witness::WitnessError;

/// Mirrors `tempo_witness`'s certificate accounting: records the
/// serialized certificate size and the time spent producing and
/// validating it on the outcome's report.
fn stamp<T>(out: &mut Outcome<T>, cert: &Certificate, started: Instant) {
    let bytes = tempo_witness::format::render(cert).len() as u64;
    let (Outcome::Complete { report, .. } | Outcome::Exhausted { report, .. }) = out;
    report.certificate_bytes = bytes;
    report.certify_time = started.elapsed();
}

/// Cost-bounded probability estimation with exported, independently
/// replayed priced runs: estimates
/// `Pr[cost <= cost_bound, time <= time_bound](<> goal)` as
/// [`PricedChecker::cost_probability_governed`] does, then regenerates
/// the first `witness_runs` trial runs from the same seeds and certifies
/// each as a legal timed run whose re-summed cost matches bit for bit.
///
/// # Errors
///
/// [`WitnessError::Malformed`] on invalid statistical parameters, or a
/// replay error if the simulator produced an illegal run or a cost that
/// the independent accumulator cannot reproduce.
#[allow(clippy::too_many_arguments)]
pub fn certified_cost_probability(
    pnet: &PricedNetwork,
    rates: &RatePolicy,
    seed: u64,
    goal: &StateFormula,
    cost_bound: f64,
    time_bound: f64,
    runs: usize,
    confidence: f64,
    witness_runs: usize,
    budget: &Budget,
) -> Certified<Option<Estimate>, PricedRunCertificate> {
    let mut checker = PricedChecker::new(pnet, rates.clone(), seed);
    let mut out = checker
        .cost_probability_governed(goal, cost_bound, time_bound, runs, confidence, budget)
        .map_err(|e| WitnessError::Malformed(e.to_string()))?;
    let started = Instant::now();
    let net = pnet.network();
    // The estimator's one and only batch ran at epoch 1; trial `i` of
    // that batch is reproduced verbatim by reseeding from the same
    // `(seed, epoch, trial)` triple.
    let exported: Vec<Run> = (0..witness_runs.min(runs))
        .map(|i| {
            let mut sim = Simulator::new(net, rates.clone(), trial_seed(seed, 1, i));
            sim.simulate(time_bound, DEFAULT_MAX_STEPS)
        })
        .collect();
    let costs: Vec<f64> = exported.iter().map(|r| run_cost(pnet, r)).collect();
    let cert = PricedRunCertificate {
        runs: exported,
        costs,
    };
    cert.validate(pnet)?;
    stamp(&mut out, &Certificate::PricedRuns(cert.clone()), started);
    Ok((out, cert))
}

/// Importance-splitting estimation with exported, independently replayed
/// goal trajectories: estimates `Pr[<=time_bound](<> goal)` by fixed
/// effort, then certifies up to `witness_runs` of the final-level
/// entries' full trajectories — each a contiguous legal run from the
/// network's initial state, concatenated across splitting segments —
/// with their accumulated costs under `pnet`.
///
/// For an unpriced query pass a [`PricedNetwork`] with no rates or edge
/// costs; every certified cost is then exactly `0`.
///
/// # Errors
///
/// [`WitnessError::Malformed`] on invalid statistical parameters, or a
/// replay error if a concatenated trajectory is not a legal run.
#[allow(clippy::too_many_arguments)]
pub fn certified_splitting_probability(
    pnet: &PricedNetwork,
    rates: &RatePolicy,
    seed: u64,
    goal: &StateFormula,
    time_bound: f64,
    config: &SplitConfig,
    witness_runs: usize,
    budget: &Budget,
) -> Certified<Option<SplitEstimate>, PricedRunCertificate> {
    let mut checker = RareChecker::new(pnet.network(), rates.clone(), seed);
    let out = checker
        .probability_with_witnesses(goal, time_bound, config, budget, witness_runs)
        .map_err(|e| WitnessError::Malformed(e.to_string()))?;
    let started = Instant::now();
    let mut exported: Vec<Run> = Vec::new();
    let mut out = out.map(|v| {
        v.map(|(est, runs)| {
            exported = runs;
            est
        })
    });
    let costs: Vec<f64> = exported.iter().map(|r| run_cost(pnet, r)).collect();
    let cert = PricedRunCertificate {
        runs: exported,
        costs,
    };
    cert.validate(pnet)?;
    stamp(&mut out, &Certificate::PricedRuns(cert.clone()), started);
    Ok((out, cert))
}
