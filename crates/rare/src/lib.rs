//! `tempo-rare` — priced statistical model checking and
//! importance-splitting rare-event simulation.
//!
//! The paper's SMC story (UPPAAL-SMC, `modes`) estimates
//! `Pr[<=T](<> goal)` from independent simulations; its cost story
//! (UPPAAL-CORA) optimizes priced reachability symbolically. This crate
//! composes the two and fixes naive Monte Carlo's blind spot — events
//! too rare to observe in any affordable number of runs:
//!
//! * [`PricedChecker`] runs the stochastic simulator over a
//!   [`tempo_cora::PricedNetwork`], accumulating each run's cost
//!   (`Σ delay·rate + Σ edge costs`) to estimate cost-bounded
//!   reachability probabilities `Pr[cost <= C, time <= T](<> goal)`,
//!   expected costs, and cost distributions.
//! * [`RareChecker`] estimates rare reachability probabilities by
//!   importance splitting — fixed-effort and RESTART-style — over level
//!   sets of a compile-time distance-to-goal score ([`GoalScore`])
//!   derived from the model structure and the query, in the spirit of
//!   `modes`' rare-event support (Budde et al., *A Statistical Model
//!   Checker for Nondeterminism and Rare Events*, TACAS 2018).
//! * [`certified_cost_probability`] / [`certified_splitting_probability`]
//!   wrap both so the returned verdict carries a
//!   [`tempo_witness::certify::PricedRunCertificate`]: exported runs are
//!   replayed by the independent validator and their costs re-summed
//!   exactly before the caller sees the estimate.
//!
//! Everything is governed by [`tempo_obs::Budget`] and deterministic:
//! simulated segments are seeded from their index in the experiment, not
//! from the worker that executes them, so every estimate is
//! byte-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certify;
mod priced;
mod score;
mod split;

pub use certify::{certified_cost_probability, certified_splitting_probability};
pub use priced::{first_hit_cost, run_cost, PricedChecker};
pub use score::GoalScore;
pub use split::{LevelStats, RareChecker, SplitConfig, SplitEstimate, SplitMethod, WitnessedSplit};
