//! Priced stochastic simulation: UPPAAL-CORA cost structure composed
//! with the UPPAAL-SMC run generator.
//!
//! A [`tempo_cora::PricedNetwork`] assigns an integer cost *rate* to
//! each location and an integer cost to each edge. Under the stochastic
//! semantics of [`tempo_smc::Simulator`] every run then accumulates a
//! real-valued cost: `Σ delay·(Σ rates of the pre-state locations)` over
//! delays plus `Σ edge costs of the participants` over actions. This
//! module estimates cost-bounded reachability probabilities
//! (`Pr[cost <= C, time <= T](<> goal)`), expected accumulated cost, and
//! cost distributions from batches of simulated runs.
//!
//! Cost accumulation follows one canonical operation order — per step,
//! the delay term is added before the edge term, in step order — shared
//! with the independent validator
//! ([`tempo_witness::replay_priced_run`]), so a certified run's
//! re-summed cost matches the simulator's bit for bit.

use tempo_conc::{derive_stream_seed, run_workers, split_budget, ParallelConfig};
use tempo_cora::PricedNetwork;
use tempo_obs::{Budget, Governor, Outcome, RunReport};
use tempo_smc::{
    estimate, estimate_mean, EmpiricalCdf, Estimate, MeanEstimate, RatePolicy, Run, Simulator,
    StatsError, DEFAULT_MAX_STEPS,
};
use tempo_ta::{AutomatonId, StateFormula};

/// The seed of trial `trial` in batch `epoch` of a checker created with
/// `seed` — the reseeding contract shared with the certified wrappers,
/// which regenerate estimator trials verbatim.
pub(crate) fn trial_seed(seed: u64, epoch: u64, trial: usize) -> u64 {
    let epoch_seed = seed.wrapping_add(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    derive_stream_seed(epoch_seed, trial)
}

/// Cost-rate sum of a concrete state: `Σ_a rate(a, loc_a)`.
fn rate_sum(pnet: &PricedNetwork, state: &tempo_smc::ConcreteState) -> i64 {
    state
        .locs
        .iter()
        .enumerate()
        .map(|(ai, &l)| pnet.rate(AutomatonId(ai), l))
        .sum()
}

/// Edge-cost sum of one joint move.
fn edge_sum(pnet: &PricedNetwork, participants: &[(usize, usize, Vec<i64>)]) -> i64 {
    participants
        .iter()
        .map(|&(ai, ei, _)| pnet.edge_cost(AutomatonId(ai), ei))
        .sum()
}

/// Total accumulated cost of a simulated run under the priced network's
/// rate and edge-cost assignment.
///
/// The summation order (per step: delay × pre-state rate sum, then the
/// participants' edge costs) is the canonical one shared with
/// [`tempo_witness::replay_priced_run`]; both sides produce bitwise
/// identical `f64` totals for the same run.
#[must_use]
pub fn run_cost(pnet: &PricedNetwork, run: &Run) -> f64 {
    let mut cost = 0.0_f64;
    let mut pre = &run.initial;
    for step in &run.steps {
        cost += step.delay * rate_sum(pnet, pre) as f64;
        if !step.participants.is_empty() {
            cost += edge_sum(pnet, &step.participants) as f64;
        }
        pre = &step.state;
    }
    cost
}

/// The accumulated cost and absolute time at the first state of `run`
/// satisfying `goal`, or `None` when the run never reaches it.
///
/// States are inspected after every action, and the initial state counts
/// at time and cost `0`.
#[must_use]
pub fn first_hit_cost(pnet: &PricedNetwork, run: &Run, goal: &StateFormula) -> Option<(f64, f64)> {
    let net = pnet.network();
    if run.initial.satisfies(net, goal) {
        return Some((0.0, 0.0));
    }
    let mut cost = 0.0_f64;
    let mut pre = &run.initial;
    for step in &run.steps {
        cost += step.delay * rate_sum(pnet, pre) as f64;
        if !step.participants.is_empty() {
            cost += edge_sum(pnet, &step.participants) as f64;
        }
        if step.state.satisfies(net, goal) {
            return Some((step.state.time, cost));
        }
        pre = &step.state;
    }
    None
}

/// [`RunReport`] for a priced simulation batch.
fn priced_report(gov: &Governor, completed: usize, dim: usize) -> RunReport {
    RunReport {
        runs_simulated: completed as u64,
        runs_total: completed as u64,
        dbm_dim: dim as u64,
        dbm_dim_model: dim as u64,
        wall_time: gov.elapsed(),
        ..RunReport::default()
    }
}

/// A statistical checker over a priced network: estimates cost-bounded
/// probabilities, expected costs, and cost distributions.
///
/// Trials are seeded individually from `(seed, epoch, trial index)` —
/// never from the worker that happens to run them — so every estimate is
/// bitwise identical at any thread count.
///
/// ```
/// use tempo_cora::PricedNetwork;
/// use tempo_rare::PricedChecker;
/// use tempo_smc::RatePolicy;
/// use tempo_ta::{NetworkBuilder, StateFormula};
///
/// let mut b = NetworkBuilder::new();
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// let l1 = a.location("L1");
/// a.edge(l0, l1).done();
/// let aid = a.done();
/// let net = b.build();
/// let mut pnet = PricedNetwork::new(net);
/// pnet.set_rate(aid, l0, 2); // cost accrues at rate 2 until the move
///
/// let mut chk = PricedChecker::new(&pnet, RatePolicy::new(), 1);
/// let est = chk.cost_probability(&StateFormula::at(aid, l1), 1_000.0, 100.0, 200, 0.95);
/// assert!(est.mean > 0.9);
/// ```
#[derive(Debug)]
pub struct PricedChecker<'n> {
    pnet: &'n PricedNetwork,
    rates: RatePolicy,
    seed: u64,
    threads: usize,
    /// Batch counter: each query derives a fresh trial-seed stream so
    /// successive queries stay independent yet reproducible.
    epoch: u64,
    max_steps: usize,
}

impl<'n> PricedChecker<'n> {
    /// Creates a checker with the given delay-rate policy and RNG seed.
    #[must_use]
    pub fn new(pnet: &'n PricedNetwork, rates: RatePolicy, seed: u64) -> Self {
        PricedChecker {
            pnet,
            rates,
            seed,
            threads: 1,
            epoch: 0,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Splits each batch across `threads` workers. Estimates do not
    /// depend on the thread count (trials are seeded by index).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use the worker count resolved from a [`ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// Caps the number of actions per simulated run.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps.max(1);
        self
    }

    /// Pre-flight lint gate: structural diagnostics for the underlying
    /// network plus the priced-specific rules (negative cost rates,
    /// CORA001).
    ///
    /// # Errors
    ///
    /// A [`tempo_lint::LintError`] carrying every diagnostic at or above
    /// the configured severity.
    pub fn check_first(
        &self,
        config: &tempo_lint::LintConfig,
    ) -> Result<tempo_lint::LintReport, tempo_lint::LintError> {
        self.pnet.check_first(config)
    }

    /// Runs one batch of `effective` trials, mapping each simulated run
    /// through `eval`; results arrive in trial order regardless of the
    /// worker count.
    fn batch<T, F>(&mut self, effective: usize, bound: f64, gov: &Governor, eval: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Run) -> T + Sync,
    {
        self.epoch += 1;
        let (seed, epoch) = (self.seed, self.epoch);
        let chunks = split_budget(effective, self.threads);
        let mut starts = Vec::with_capacity(chunks.len());
        let mut acc = 0_usize;
        for &c in &chunks {
            starts.push(acc);
            acc += c;
        }
        let net = self.pnet.network();
        let (rates, max_steps) = (&self.rates, self.max_steps);
        let per_worker = run_workers(self.threads, |worker| {
            let mut out = Vec::with_capacity(chunks[worker]);
            for j in 0..chunks[worker] {
                if !gov.check_time() {
                    break;
                }
                let trial = starts[worker] + j;
                let mut sim = Simulator::new(net, rates.clone(), trial_seed(seed, epoch, trial));
                out.push(eval(&sim.simulate(bound, max_steps)));
                let _ = gov.charge_run();
            }
            out
        });
        per_worker.into_iter().flatten().collect()
    }

    fn effective_runs(runs: usize, gov: &Governor) -> usize {
        runs.min(usize::try_from(gov.runs_remaining()).unwrap_or(usize::MAX))
    }

    fn settle_runs(gov: &Governor, completed: usize, requested: usize) {
        if completed < requested && !gov.is_exhausted() {
            let _ = gov.charge_run();
        }
    }

    fn check_cancelled(gov: &Governor) -> Result<(), StatsError> {
        if gov.exhausted() == Some(tempo_obs::ExhaustionReason::Cancelled) {
            return Err(StatsError::Cancelled);
        }
        Ok(())
    }

    /// Estimates `Pr[cost <= cost_bound, time <= time_bound](<> goal)`
    /// with a Wilson interval at level `confidence`.
    ///
    /// A run counts as a success when its *first* goal state arrives
    /// with accumulated cost at most `cost_bound` and time at most
    /// `time_bound`.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0` or `confidence` is outside `(0, 1)`; use
    /// [`Self::cost_probability_governed`] for the non-panicking API.
    pub fn cost_probability(
        &mut self,
        goal: &StateFormula,
        cost_bound: f64,
        time_bound: f64,
        runs: usize,
        confidence: f64,
    ) -> Estimate {
        self.cost_probability_governed(
            goal,
            cost_bound,
            time_bound,
            runs,
            confidence,
            &Budget::unlimited(),
        )
        .unwrap_or_else(|e| panic!("{e}"))
        .into_value()
        .expect("an unlimited budget without a cancel token cannot stop short")
    }

    /// Estimates `Pr[cost <= cost_bound, time <= time_bound](<> goal)`
    /// under a resource [`Budget`].
    ///
    /// # Errors
    ///
    /// [`StatsError`] on invalid statistical parameters, and
    /// [`StatsError::Cancelled`] when the budget's cancellation token
    /// trips before the first run completes.
    pub fn cost_probability_governed(
        &mut self,
        goal: &StateFormula,
        cost_bound: f64,
        time_bound: f64,
        runs: usize,
        confidence: f64,
        budget: &Budget,
    ) -> Result<Outcome<Option<Estimate>>, StatsError> {
        if runs == 0 {
            return Err(StatsError::NoRuns);
        }
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(StatsError::InvalidConfidence(confidence));
        }
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        let pnet = self.pnet;
        let hits = self.batch(effective, time_bound, &gov, |run| {
            first_hit_cost(pnet, run, goal).is_some_and(|(t, c)| t <= time_bound && c <= cost_bound)
        });
        let completed = hits.len();
        let successes = hits.iter().filter(|&&h| h).count();
        Self::settle_runs(&gov, completed, runs);
        let est = if completed > 0 {
            Some(estimate(successes, completed, confidence)?)
        } else {
            Self::check_cancelled(&gov)?;
            None
        };
        let report = priced_report(&gov, completed, self.pnet.network().dim());
        Ok(gov.finish(est, report))
    }

    /// Estimates the expected total cost accumulated up to the time
    /// horizon `bound` (UPPAAL-SMC's `E[<=bound](max: cost)` shape).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`; use [`Self::expected_cost_governed`] for
    /// the non-panicking API.
    pub fn expected_cost(&mut self, bound: f64, runs: usize) -> MeanEstimate {
        self.expected_cost_governed(bound, runs, &Budget::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
            .expect("an unlimited budget without a cancel token cannot stop short")
    }

    /// Estimates the expected total cost at horizon `bound` under a
    /// resource [`Budget`].
    ///
    /// # Errors
    ///
    /// [`StatsError`] when `runs == 0` or no run completes within the
    /// budget; [`StatsError::Cancelled`] on pre-data cancellation.
    pub fn expected_cost_governed(
        &mut self,
        bound: f64,
        runs: usize,
        budget: &Budget,
    ) -> Result<Outcome<Option<MeanEstimate>>, StatsError> {
        if runs == 0 {
            return Err(StatsError::NoRuns);
        }
        let gov = budget.governor();
        let effective = Self::effective_runs(runs, &gov);
        let pnet = self.pnet;
        let costs = self.batch(effective, bound, &gov, |run| run_cost(pnet, run));
        let completed = costs.len();
        Self::settle_runs(&gov, completed, runs);
        let est = if completed > 0 {
            Some(estimate_mean(&costs)?)
        } else {
            Self::check_cancelled(&gov)?;
            None
        };
        let report = priced_report(&gov, completed, self.pnet.network().dim());
        Ok(gov.finish(est, report))
    }

    /// The empirical distribution of the cost at the first goal hit over
    /// `runs` simulations of horizon `bound` (runs that never reach the
    /// goal contribute no sample; the population is still `runs`, so
    /// [`EmpiricalCdf::at`] reads as a fraction of *all* runs).
    pub fn cost_cdf(&mut self, goal: &StateFormula, bound: f64, runs: usize) -> EmpiricalCdf {
        let gov = Budget::unlimited().governor();
        let pnet = self.pnet;
        let hits = self.batch(runs, bound, &gov, |run| {
            first_hit_cost(pnet, run, goal).map(|(_, c)| c)
        });
        let mut cdf = EmpiricalCdf::new(runs);
        for c in hits.into_iter().flatten() {
            cdf.add(c);
        }
        cdf
    }
}
