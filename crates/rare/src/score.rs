//! Compile-time distance-to-goal scoring: the importance function that
//! drives level placement for the splitting engines.
//!
//! The score of a concrete state is a sum of integer progress terms
//! derived statically from the network and the goal formula:
//!
//! * **Location distance** — for every automaton named by an `At` atom
//!   of the goal, a reverse breadth-first search from the goal
//!   locations over the (sliced) edge relation assigns each location
//!   its edge distance to the goal; the term is how much closer the
//!   automaton's current location is than its initial one.
//! * **Milestone atoms** — variable-versus-constant comparisons
//!   harvested from the goal formula's data atoms and from the data
//!   guards of edges that enter a goal location (`rc >= MAX` on BRP's
//!   abort edge, for instance). Each contributes the number of integer
//!   steps the variable has moved from its initial value toward the
//!   threshold, so progress inside a location loop is visible.
//!
//! The search runs on the query-independent slice of the network
//! ([`tempo_ta::slice`]): provably disabled edges are inert self-loops
//! there, so they add no spurious shortcuts to the distance field.
//!
//! The score is a *heuristic*: the splitting estimators never rely on
//! it for correctness (the final level is the goal predicate itself),
//! only for variance reduction. A score of constant `0` degrades
//! splitting to naive Monte Carlo, nothing worse.

use tempo_expr::{BinOp, Expr, VarId};
use tempo_smc::ConcreteState;
use tempo_ta::{Network, StateFormula};

/// An integer progress term over one variable: distance-to-threshold
/// that shrinks as the variable moves toward `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Milestone {
    var: VarId,
    /// The value at which the comparison becomes satisfied.
    target: i64,
    /// `true` when progress means increasing the variable.
    ascending: bool,
    /// Distance of the initial store from the target (always `> 0`).
    initial_distance: i64,
}

impl Milestone {
    fn distance(&self, v: i64) -> i64 {
        if self.ascending {
            (self.target - v).max(0)
        } else {
            (v - self.target).max(0)
        }
    }

    /// Progress covered so far: initial distance minus current distance
    /// (negative when the variable moved away from the threshold).
    fn progress(&self, v: i64) -> i64 {
        self.initial_distance - self.distance(v)
    }
}

/// The static importance function for a `(network, goal)` pair; see the
/// module documentation for its construction.
#[derive(Debug, Clone)]
pub struct GoalScore {
    /// Per automaton, per location: progress contribution
    /// (`dist(initial) - dist(loc)`); all zero for automata the goal
    /// does not mention.
    loc_score: Vec<Vec<i64>>,
    milestones: Vec<Milestone>,
    /// The maximum attainable sum (`score` of a state that is at every
    /// goal location with every milestone satisfied).
    max_score: i64,
}

impl GoalScore {
    /// Builds the importance function for `goal` over `net`.
    #[must_use]
    pub fn new(net: &Network, goal: &StateFormula) -> GoalScore {
        let sliced = tempo_ta::slice(net);
        let base = &sliced.net;
        let mut goal_locs: Vec<Vec<bool>> = base
            .automata()
            .iter()
            .map(|a| vec![false; a.locations.len()])
            .collect();
        collect_goal_locs(goal, &mut goal_locs);

        let init = net.decls().initial_store();
        let mut milestones: Vec<Milestone> = Vec::new();
        let mut push = |e: &Expr| {
            for m in harvest_comparisons(e) {
                let initial_distance = m_distance(&m, init.get(m.0));
                let ms = Milestone {
                    var: m.0,
                    target: m.1,
                    ascending: m.2,
                    initial_distance,
                };
                if initial_distance > 0 && !milestones.contains(&ms) {
                    milestones.push(ms);
                }
            }
        };
        collect_goal_exprs(goal, &mut push);
        for (ai, a) in base.automata().iter().enumerate() {
            for e in &a.edges {
                if goal_locs[ai][e.to.index()] && e.from != e.to {
                    push(&e.guard_data);
                }
            }
        }

        let mut loc_score = Vec::with_capacity(base.automata().len());
        let mut max_score = 0_i64;
        for (ai, a) in base.automata().iter().enumerate() {
            if !goal_locs[ai].iter().any(|&g| g) {
                loc_score.push(vec![0; a.locations.len()]);
                continue;
            }
            let dist = reverse_bfs(a, &goal_locs[ai]);
            let d0 = dist[a.initial.index()];
            let unreachable = a.locations.len();
            let scores: Vec<i64> = dist
                .iter()
                .map(|&d| {
                    if d == usize::MAX {
                        // Cannot reach the goal from here at all: worse
                        // than any reachable location.
                        -(unreachable as i64)
                    } else {
                        d0_sat(d0) - d as i64
                    }
                })
                .collect();
            max_score += d0_sat(d0);
            loc_score.push(scores);
        }
        max_score += milestones.iter().map(|m| m.initial_distance).sum::<i64>();
        GoalScore {
            loc_score,
            milestones,
            max_score,
        }
    }

    /// The importance of a concrete state; the initial state scores `0`.
    #[must_use]
    pub fn score(&self, state: &ConcreteState) -> i64 {
        let locs: i64 = state
            .locs
            .iter()
            .zip(&self.loc_score)
            .map(|(l, s)| s[l.index()])
            .sum();
        let vars: i64 = self
            .milestones
            .iter()
            .map(|m| m.progress(state.store.get(m.var)))
            .sum();
        locs + vars
    }

    /// The maximum attainable score.
    #[must_use]
    pub fn max_score(&self) -> i64 {
        self.max_score
    }

    /// Evenly spaced level thresholds over `(0, max_score]`, at most
    /// `max_levels` of them and always ending at `max_score`. Empty when
    /// the model offers no static gradient (`max_score == 0`), in which
    /// case splitting degrades to naive Monte Carlo.
    #[must_use]
    pub fn thresholds(&self, max_levels: usize) -> Vec<i64> {
        if self.max_score <= 0 || max_levels == 0 {
            return Vec::new();
        }
        let stride = (self.max_score as usize).div_ceil(max_levels) as i64;
        let mut out: Vec<i64> = (1..)
            .map(|k| k * stride)
            .take_while(|&t| t < self.max_score)
            .collect();
        out.push(self.max_score);
        out
    }
}

/// Initial distance clamped at `>= 0` (the initial location can itself
/// be a goal location, giving distance 0 and no gradient).
fn d0_sat(d0: usize) -> i64 {
    if d0 == usize::MAX {
        0
    } else {
        d0 as i64
    }
}

fn collect_goal_locs(f: &StateFormula, out: &mut [Vec<bool>]) {
    match f {
        StateFormula::At(a, l) => out[a.index()][l.index()] = true,
        StateFormula::And(gs) | StateFormula::Or(gs) => {
            for g in gs {
                collect_goal_locs(g, out);
            }
        }
        // Negated locations are avoidance targets, not progress.
        StateFormula::Not(_)
        | StateFormula::True
        | StateFormula::False
        | StateFormula::Data(_)
        | StateFormula::Clock(_) => {}
    }
}

fn collect_goal_exprs(f: &StateFormula, push: &mut impl FnMut(&Expr)) {
    match f {
        StateFormula::Data(e) => push(e),
        StateFormula::And(gs) | StateFormula::Or(gs) => {
            for g in gs {
                collect_goal_exprs(g, push);
            }
        }
        StateFormula::Not(_)
        | StateFormula::True
        | StateFormula::False
        | StateFormula::At(..)
        | StateFormula::Clock(_) => {}
    }
}

/// Distance of `v` from the milestone target `(var, target, ascending)`.
fn m_distance(m: &(VarId, i64, bool), v: i64) -> i64 {
    if m.2 {
        (m.1 - v).max(0)
    } else {
        (v - m.1).max(0)
    }
}

/// Extracts `(var, target, ascending)` triples from variable-versus-
/// constant comparisons, recursing through conjunctions and
/// disjunctions. Equality picks the direction from nowhere — both
/// directions are emitted and the zero-initial-distance one is dropped
/// by the caller.
fn harvest_comparisons(e: &Expr) -> Vec<(VarId, i64, bool)> {
    let mut out = Vec::new();
    walk(e, &mut out);
    out
}

fn walk(e: &Expr, out: &mut Vec<(VarId, i64, bool)>) {
    let Expr::Binary(op, lhs, rhs) = e else {
        return;
    };
    match op {
        BinOp::And | BinOp::Or => {
            walk(lhs, out);
            walk(rhs, out);
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq => {
            // Normalize to `var <op> const`.
            let (var, c, op) = match (&**lhs, &**rhs) {
                (Expr::Var(v), Expr::Const(c)) => (*v, *c, *op),
                (Expr::Const(c), Expr::Var(v)) => (*v, *c, flip(*op)),
                _ => return,
            };
            match op {
                BinOp::Ge => out.push((var, c, true)),
                BinOp::Gt => out.push((var, c + 1, true)),
                BinOp::Le => out.push((var, c, false)),
                BinOp::Lt => out.push((var, c - 1, false)),
                BinOp::Eq => {
                    out.push((var, c, true));
                    out.push((var, c, false));
                }
                _ => unreachable!("filtered above"),
            }
        }
        _ => {}
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Multi-source reverse BFS over an automaton's edge relation (guards
/// ignored): `dist[l]` is the minimum number of edges from `l` to any
/// goal location, `usize::MAX` when unreachable.
fn reverse_bfs(a: &tempo_ta::Automaton, goals: &[bool]) -> Vec<usize> {
    let n = a.locations.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &a.edges {
        if e.from != e.to {
            preds[e.to.index()].push(e.from.index());
        }
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue: Vec<usize> = (0..n).filter(|&l| goals[l]).collect();
    for &g in &queue {
        dist[g] = 0;
    }
    let mut head = 0;
    while head < queue.len() {
        let l = queue[head];
        head += 1;
        for &p in &preds[l] {
            if dist[p] == usize::MAX {
                dist[p] = dist[l] + 1;
                queue.push(p);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_smc::{RatePolicy, Simulator};

    #[test]
    fn chain_score_counts_stages() {
        let c = tempo_models::chain(8);
        let gs = GoalScore::new(&c.net, &c.goal());
        assert_eq!(gs.max_score(), 8);
        assert_eq!(gs.thresholds(32), (1..=8).collect::<Vec<i64>>());
        let sim = Simulator::new(&c.net, RatePolicy::new(), 1);
        assert_eq!(gs.score(&sim.initial_state()), 0);
    }

    #[test]
    fn chain_thresholds_merge_to_cap() {
        let c = tempo_models::chain(40);
        let gs = GoalScore::new(&c.net, &c.goal());
        let ts = gs.thresholds(10);
        assert!(ts.len() <= 10, "{ts:?}");
        assert_eq!(*ts.last().unwrap(), 40);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn brp_score_has_location_and_milestone_gradient() {
        let b = tempo_models::brp_network(2, 4, 1);
        let gs = GoalScore::new(&b.net, &b.p1_goal());
        // Sender location distance (Next -> Wait -> Timeout -> Failed)
        // plus the `rc >= MAX` retransmission milestone.
        assert!(
            gs.max_score() >= 5,
            "expected location + rc gradient, got {}",
            gs.max_score()
        );
        let sim = Simulator::new(&b.net, RatePolicy::new(), 1);
        assert_eq!(gs.score(&sim.initial_state()), 0);
    }
}
