//! Importance-splitting estimators for rare reachability probabilities.
//!
//! Naive Monte Carlo needs on the order of `1/p` simulations to observe
//! one success of a rare event of probability `p`. Importance splitting
//! decomposes the event into a chain of level crossings
//! `0 = L₀ ⊂ L₁ ⊂ … ⊂ L_m = goal` (here: sub-level sets of the static
//! [`GoalScore`] importance function) and estimates the product of the
//! conditional crossing probabilities, each of which is large enough to
//! measure with a small batch. Two classical estimators are provided:
//!
//! * **Fixed effort** ([`SplitMethod::FixedEffort`]): at each level a
//!   fixed number of trials is launched from the states that entered the
//!   level; `p̂ = Π cᵢ/Nᵢ` with a log-normal confidence interval from
//!   `σ² ≈ Σ (1−p̂ᵢ)/(Nᵢ·p̂ᵢ)`.
//! * **RESTART / fixed splitting** ([`SplitMethod::Restart`]): each of
//!   `R` independent replications simulates a particle tree, spawning
//!   `k−1` clones at every first up-crossing of a threshold on a
//!   lineage; a goal hit at lineage level `ℓ` contributes `k^−ℓ`, and
//!   the estimate is the replication mean with a normal interval.
//!
//! Both estimators are *goal-absorbing upward*: reaching the goal at any
//! level counts as crossing every remaining level, and the final level
//! is the goal predicate itself — so a weak importance function costs
//! variance, never correctness.
//!
//! Determinism: every simulated segment is seeded from
//! `(seed, epoch, stage, trial)` (fixed effort) or a per-replication
//! seed counter (RESTART) — never from the worker that happens to run
//! it — and partial results are merged in index order. Estimates are
//! therefore byte-identical at any thread count.

use crate::score::GoalScore;
use tempo_conc::{derive_stream_seed, run_workers, split_budget, ParallelConfig};
use tempo_obs::{Budget, Governor, Outcome, RunReport};
use tempo_smc::{
    estimate, estimate_mean, ConcreteState, RatePolicy, Run, RunStep, Simulator, StatsError,
    DEFAULT_MAX_STEPS,
};
use tempo_ta::{Network, StateFormula};

/// The splitting estimator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMethod {
    /// Fixed number of trials per level; product-of-fractions estimator.
    #[default]
    FixedEffort,
    /// Independent replications of a RESTART-style particle tree with a
    /// fixed branch factor.
    Restart,
}

/// Tuning parameters for the splitting engines.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// Which estimator to run.
    pub method: SplitMethod,
    /// Fixed effort: trials launched per level.
    pub effort: usize,
    /// RESTART: clones per up-crossing is `branch - 1`; choose roughly
    /// `1 / p_level` (an overly large branch factor multiplies the
    /// particle population by `branch · p_level` per level and can
    /// explode).
    pub branch: usize,
    /// RESTART: independent replications (the sample size of the final
    /// normal interval).
    pub replications: usize,
    /// Cap on the number of score thresholds (levels are merged evenly
    /// when the static score range is larger).
    pub max_levels: usize,
    /// Confidence level of the reported interval.
    pub confidence: f64,
    /// RESTART: hard cap on the particles of one replication; when
    /// reached, further up-crossings stop cloning (the estimate then
    /// leans conservative). Guards against a branch factor chosen too
    /// large for the model.
    pub max_particles: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            method: SplitMethod::FixedEffort,
            effort: 128,
            branch: 2,
            replications: 128,
            max_levels: 32,
            confidence: 0.95,
            max_particles: 65_536,
        }
    }
}

/// Per-level observation counts of a splitting estimate.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// The score threshold of this level; `None` for the final
    /// goal-predicate level.
    pub threshold: Option<i64>,
    /// Trials launched into this level (fixed effort; `0` for RESTART,
    /// whose per-level effort is random).
    pub trials: usize,
    /// Trials (fixed effort) or lineages (RESTART) that crossed it.
    pub crossers: usize,
}

/// A rare-event probability estimate with its confidence interval and
/// the work accounting needed to compare against naive Monte Carlo.
#[derive(Debug, Clone)]
pub struct SplitEstimate {
    /// The point estimate of the rare-event probability.
    pub p_hat: f64,
    /// Lower confidence bound (`0` when no trial reached the goal).
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// The confidence level of `[lower, upper]`.
    pub confidence: f64,
    /// Per-level crossing statistics.
    pub levels: Vec<LevelStats>,
    /// Simulated trajectory segments, the unit comparable to one naive
    /// Monte Carlo run.
    pub runs_total: u64,
    /// Cloned continuations spawned beyond the root level.
    pub splits_spawned: u64,
}

/// The value of a witnessed splitting query: the estimate together with
/// up to the requested number of exported goal-reaching trajectories,
/// or `None` when the budget ran out mid-experiment (a partial level
/// product is not an estimate).
pub type WitnessedSplit = Option<(SplitEstimate, Vec<Run>)>;

/// A level-entry state together with the run prefix that produced it
/// (steps from the network's initial state), so a goal-reaching
/// trajectory can be exported as one contiguous legal run.
#[derive(Debug, Clone)]
struct Entry {
    state: ConcreteState,
    prefix: Vec<RunStep>,
}

/// What the fixed-effort engine hands back before governance packaging.
struct EngineOutput {
    estimate: Option<SplitEstimate>,
    /// Final-level (goal-reaching) entries, in trial order.
    witnesses: Vec<Entry>,
    runs_total: u64,
    splits_spawned: u64,
    stages_run: usize,
}

/// An importance-splitting rare-event checker bound to a network and
/// delay-rate policy.
///
/// ```
/// use tempo_rare::{RareChecker, SplitConfig};
/// use tempo_smc::RatePolicy;
///
/// let c = tempo_models::chain(8); // p = 2^-8
/// let mut rc = RareChecker::new(&c.net, RatePolicy::new(), 42);
/// let est = rc.probability(&c.goal(), c.time_bound(), &SplitConfig::default());
/// assert!(est.lower > 0.0 && est.lower <= c.exact_probability());
/// assert!(est.upper >= c.exact_probability());
/// ```
#[derive(Debug)]
pub struct RareChecker<'n> {
    net: &'n Network,
    rates: RatePolicy,
    seed: u64,
    threads: usize,
    epoch: u64,
    max_steps: usize,
}

impl<'n> RareChecker<'n> {
    /// Creates a checker with the given delay-rate policy and RNG seed.
    #[must_use]
    pub fn new(net: &'n Network, rates: RatePolicy, seed: u64) -> Self {
        RareChecker {
            net,
            rates,
            seed,
            threads: 1,
            epoch: 0,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Splits trials across `threads` workers. The estimate does not
    /// depend on the thread count (segments are seeded by index).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use the worker count resolved from a [`ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// Caps the number of actions per simulated segment.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps.max(1);
        self
    }

    /// Pre-flight lint gate, identical to the plain SMC engine's.
    ///
    /// # Errors
    ///
    /// A [`tempo_lint::LintError`] carrying every diagnostic at or above
    /// the configured severity.
    pub fn check_first(
        net: &Network,
        config: &tempo_lint::LintConfig,
    ) -> Result<tempo_lint::LintReport, tempo_lint::LintError> {
        tempo_smc::StatisticalChecker::check_first(net, config)
    }

    /// Estimates `Pr[<=bound](<> goal)` by importance splitting.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration; use
    /// [`Self::probability_governed`] for the non-panicking API.
    pub fn probability(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        config: &SplitConfig,
    ) -> SplitEstimate {
        self.probability_governed(goal, bound, config, &Budget::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
            .into_value()
            .expect("an unlimited budget without a cancel token cannot stop short")
    }

    /// Estimates `Pr[<=bound](<> goal)` by importance splitting under a
    /// resource [`Budget`].
    ///
    /// On exhaustion before every level completes the value is `None`: a
    /// partial product of crossing fractions is *not* an estimate of the
    /// goal probability, so no misleading partial answer is reported.
    ///
    /// # Errors
    ///
    /// [`StatsError`] on invalid statistical parameters, and
    /// [`StatsError::Cancelled`] when the budget's cancellation token
    /// trips before the first segment completes.
    pub fn probability_governed(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        config: &SplitConfig,
        budget: &Budget,
    ) -> Result<Outcome<Option<SplitEstimate>>, StatsError> {
        self.governed(goal, bound, config, budget, 0)
            .map(|o| o.map(|v| v.map(|(est, _)| est)))
    }

    /// Like [`Self::probability_governed`], additionally returning up to
    /// `witness_runs` goal-reaching trajectories as contiguous legal
    /// runs from the network's initial state (fixed effort only; RESTART
    /// returns no witnesses).
    ///
    /// # Errors
    ///
    /// As for [`Self::probability_governed`].
    pub fn probability_with_witnesses(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        config: &SplitConfig,
        budget: &Budget,
        witness_runs: usize,
    ) -> Result<Outcome<WitnessedSplit>, StatsError> {
        self.governed(goal, bound, config, budget, witness_runs)
    }

    fn governed(
        &mut self,
        goal: &StateFormula,
        bound: f64,
        config: &SplitConfig,
        budget: &Budget,
        witness_runs: usize,
    ) -> Result<Outcome<WitnessedSplit>, StatsError> {
        if !(config.confidence > 0.0 && config.confidence < 1.0) {
            return Err(StatsError::InvalidConfidence(config.confidence));
        }
        match config.method {
            SplitMethod::FixedEffort if config.effort == 0 => return Err(StatsError::NoRuns),
            SplitMethod::Restart if config.replications == 0 || config.branch < 2 => {
                return Err(StatsError::NoRuns)
            }
            _ => {}
        }
        self.epoch += 1;
        let epoch_seed = self
            .seed
            .wrapping_add(self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let score = GoalScore::new(self.net, goal);
        let thresholds = score.thresholds(config.max_levels);
        let gov = budget.governor();
        let out = match config.method {
            SplitMethod::FixedEffort => {
                self.fixed_effort(goal, bound, config, &score, &thresholds, epoch_seed, &gov)
            }
            SplitMethod::Restart => {
                self.restart(goal, bound, config, &score, &thresholds, epoch_seed, &gov)
            }
        };
        let report = RunReport {
            runs_simulated: out.runs_total,
            runs_total: out.runs_total,
            splitting_levels: out.stages_run as u64,
            splits_spawned: out.splits_spawned,
            dbm_dim: self.net.dim() as u64,
            dbm_dim_model: self.net.dim() as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        };
        let Some(est) = out.estimate else {
            if gov.exhausted() == Some(tempo_obs::ExhaustionReason::Cancelled)
                && out.runs_total == 0
            {
                return Err(StatsError::Cancelled);
            }
            return Ok(gov.finish(None, report));
        };
        let initial = Simulator::new(self.net, self.rates.clone(), 0).initial_state();
        let witnesses: Vec<Run> = out
            .witnesses
            .into_iter()
            .take(witness_runs)
            .map(|e| Run {
                initial: initial.clone(),
                steps: e.prefix,
                deadlocked: false,
            })
            .collect();
        Ok(gov.finish(Some((est, witnesses)), report))
    }

    /// The fixed-effort engine; see the module docs for the estimator.
    #[allow(clippy::too_many_arguments)]
    fn fixed_effort(
        &self,
        goal: &StateFormula,
        bound: f64,
        config: &SplitConfig,
        score: &GoalScore,
        thresholds: &[i64],
        epoch_seed: u64,
        gov: &Governor,
    ) -> EngineOutput {
        let net = self.net;
        // Crossing predicate of stage `s`: past the next score threshold,
        // or already at the goal (goal absorbs upward). The final stage
        // is the goal predicate alone.
        let crosses = |s: usize, state: &ConcreteState| -> bool {
            if s < thresholds.len() {
                score.score(state) >= thresholds[s] || state.satisfies(net, goal)
            } else {
                state.satisfies(net, goal)
            }
        };
        let stages = thresholds.len() + 1;
        let n = config.effort;
        let mut entries = vec![Entry {
            state: Simulator::new(net, self.rates.clone(), 0).initial_state(),
            prefix: Vec::new(),
        }];
        let mut levels: Vec<LevelStats> = Vec::with_capacity(stages);
        let mut product = 1.0_f64;
        let mut sigma2 = 0.0_f64;
        let mut runs_total = 0_u64;
        let mut splits_spawned = 0_u64;
        let z = z_quantile(config.confidence);
        for s in 0..stages {
            let stage_seed = derive_stream_seed(epoch_seed, s);
            let chunks = split_budget(n, self.threads);
            let mut starts = Vec::with_capacity(chunks.len());
            let mut acc = 0_usize;
            for &c in &chunks {
                starts.push(acc);
                acc += c;
            }
            let pool = &entries;
            let (rates, max_steps) = (&self.rates, self.max_steps);
            // Each worker owns a contiguous trial range; concatenating
            // per-worker outputs therefore restores trial order.
            let per_worker: Vec<Vec<(bool, Option<Entry>, bool)>> =
                run_workers(self.threads, |w| {
                    let mut out = Vec::with_capacity(chunks[w]);
                    for j in 0..chunks[w] {
                        let trial = starts[w] + j;
                        let e = &pool[trial % pool.len()];
                        if crosses(s, &e.state) {
                            // Entered this stage already past its level
                            // (or at the goal): a certain crosser, no
                            // simulation needed.
                            out.push((false, Some(e.clone()), false));
                            continue;
                        }
                        if !gov.check_time() || !gov.charge_run() {
                            break;
                        }
                        let mut sim = Simulator::new(
                            net,
                            rates.clone(),
                            derive_stream_seed(stage_seed, trial),
                        );
                        let run = sim.simulate_from(e.state.clone(), bound, max_steps);
                        let mut crossed: Option<Entry> = None;
                        let mut ext = e.prefix.clone();
                        for step in run.steps {
                            let state = step.state.clone();
                            ext.push(step);
                            if crosses(s, &state) {
                                crossed = Some(Entry { state, prefix: ext });
                                break;
                            }
                        }
                        out.push((true, crossed, run.deadlocked));
                    }
                    out
                });
            let merged: Vec<(bool, Option<Entry>, bool)> =
                per_worker.into_iter().flatten().collect();
            let completed = merged.len();
            for &(simulated, _, _) in &merged {
                if simulated {
                    runs_total += 1;
                    if s > 0 {
                        splits_spawned += 1;
                    }
                }
            }
            if completed < n {
                // Budget tripped mid-stage: a partial product is not an
                // estimate of p, so report no value.
                return EngineOutput {
                    estimate: None,
                    witnesses: Vec::new(),
                    runs_total,
                    splits_spawned,
                    stages_run: s + 1,
                };
            }
            let crossers: Vec<Entry> = merged.into_iter().filter_map(|(_, e, _)| e).collect();
            let c = crossers.len();
            levels.push(LevelStats {
                threshold: thresholds.get(s).copied(),
                trials: n,
                crossers: c,
            });
            if c == 0 {
                // No trial crossed: the point estimate is 0 with an upper
                // bound from the remaining levels' certain failure —
                // conservatively, the product so far times the one-sided
                // upper bound of 0 successes in n trials.
                let upper0 = estimate(0, n, config.confidence)
                    .map(|e| e.upper)
                    .unwrap_or(1.0);
                return EngineOutput {
                    estimate: Some(SplitEstimate {
                        p_hat: 0.0,
                        lower: 0.0,
                        upper: (product * upper0).min(1.0),
                        confidence: config.confidence,
                        levels,
                        runs_total,
                        splits_spawned,
                    }),
                    witnesses: Vec::new(),
                    runs_total,
                    splits_spawned,
                    stages_run: s + 1,
                };
            }
            let p_l = c as f64 / n as f64;
            product *= p_l;
            sigma2 += (1.0 - p_l) / (n as f64 * p_l);
            entries = crossers;
        }
        let sigma = sigma2.sqrt();
        let estimate = SplitEstimate {
            p_hat: product,
            lower: (product * (-z * sigma).exp()).max(0.0),
            upper: (product * (z * sigma).exp()).min(1.0),
            confidence: config.confidence,
            levels,
            runs_total,
            splits_spawned,
        };
        EngineOutput {
            estimate: Some(estimate),
            witnesses: entries,
            runs_total,
            splits_spawned,
            stages_run: stages,
        }
    }

    /// The RESTART / fixed-splitting engine; see the module docs.
    #[allow(clippy::too_many_arguments)]
    fn restart(
        &self,
        goal: &StateFormula,
        bound: f64,
        config: &SplitConfig,
        score: &GoalScore,
        thresholds: &[i64],
        epoch_seed: u64,
        gov: &Governor,
    ) -> EngineOutput {
        let net = self.net;
        let k = config.branch;
        let r = config.replications;
        let chunks = split_budget(r, self.threads);
        let mut starts = Vec::with_capacity(chunks.len());
        let mut acc = 0_usize;
        for &c in &chunks {
            starts.push(acc);
            acc += c;
        }
        let initial = Simulator::new(net, self.rates.clone(), 0).initial_state();
        let (rates, max_steps) = (&self.rates, self.max_steps);
        /// One replication's contribution, with its work accounting.
        struct Rep {
            sum: f64,
            segments: u64,
            spawned: u64,
            crossings: Vec<usize>,
            complete: bool,
        }
        let per_worker: Vec<Vec<Rep>> = run_workers(self.threads, |w| {
            let mut out = Vec::with_capacity(chunks[w]);
            for j in 0..chunks[w] {
                let rep_seed = derive_stream_seed(epoch_seed, starts[w] + j);
                let mut counter = 0_usize;
                let mut rep = Rep {
                    sum: 0.0,
                    segments: 0,
                    spawned: 0,
                    crossings: vec![0; thresholds.len()],
                    complete: true,
                };
                let mut particles = 1_usize;
                let mut stack: Vec<(ConcreteState, usize)> = vec![(initial.clone(), 0)];
                'particles: while let Some((state, mut lvl)) = stack.pop() {
                    // Spawn-point processing: the particle may start at a
                    // goal state (absorb) or past further thresholds (its
                    // own lineage crosses them immediately).
                    if state.satisfies(net, goal) {
                        rep.sum += weight(k, lvl);
                        continue;
                    }
                    let sc = score.score(&state);
                    while lvl < thresholds.len() && sc >= thresholds[lvl] {
                        rep.crossings[lvl] += 1;
                        lvl += 1;
                        if particles + (k - 1) <= config.max_particles {
                            for _ in 0..k - 1 {
                                stack.push((state.clone(), lvl));
                            }
                            particles += k - 1;
                            rep.spawned += (k - 1) as u64;
                        }
                    }
                    if !gov.check_time() || !gov.charge_run() {
                        rep.complete = false;
                        break;
                    }
                    let mut sim =
                        Simulator::new(net, rates.clone(), derive_stream_seed(rep_seed, counter));
                    counter += 1;
                    let run = sim.simulate_from(state, bound, max_steps);
                    rep.segments += 1;
                    for step in run.steps {
                        if step.state.satisfies(net, goal) {
                            rep.sum += weight(k, lvl);
                            continue 'particles;
                        }
                        let sc = score.score(&step.state);
                        while lvl < thresholds.len() && sc >= thresholds[lvl] {
                            rep.crossings[lvl] += 1;
                            lvl += 1;
                            if particles + (k - 1) <= config.max_particles {
                                for _ in 0..k - 1 {
                                    stack.push((step.state.clone(), lvl));
                                }
                                particles += k - 1;
                                rep.spawned += (k - 1) as u64;
                            }
                        }
                    }
                }
                let complete = rep.complete;
                out.push(rep);
                if !complete {
                    break;
                }
            }
            out
        });
        let reps: Vec<Rep> = per_worker.into_iter().flatten().collect();
        let runs_total: u64 = reps.iter().map(|r| r.segments).sum();
        let splits_spawned: u64 = reps.iter().map(|r| r.spawned).sum();
        let mut crossings = vec![0_usize; thresholds.len()];
        for rep in &reps {
            for (total, &c) in crossings.iter_mut().zip(&rep.crossings) {
                *total += c;
            }
        }
        let levels: Vec<LevelStats> = thresholds
            .iter()
            .zip(&crossings)
            .map(|(&t, &c)| LevelStats {
                threshold: Some(t),
                trials: 0,
                crossers: c,
            })
            .collect();
        let stages_run = thresholds.len() + 1;
        if reps.len() < r || reps.iter().any(|rep| !rep.complete) {
            return EngineOutput {
                estimate: None,
                witnesses: Vec::new(),
                runs_total,
                splits_spawned,
                stages_run,
            };
        }
        let sums: Vec<f64> = reps.iter().map(|rep| rep.sum).collect();
        let Ok(mean) = estimate_mean(&sums) else {
            return EngineOutput {
                estimate: None,
                witnesses: Vec::new(),
                runs_total,
                splits_spawned,
                stages_run,
            };
        };
        let z = z_quantile(config.confidence);
        let half = z * mean.std_dev / (r as f64).sqrt();
        let estimate = SplitEstimate {
            p_hat: mean.mean,
            lower: (mean.mean - half).max(0.0),
            upper: (mean.mean + half).min(1.0),
            confidence: config.confidence,
            levels,
            runs_total,
            splits_spawned,
        };
        EngineOutput {
            estimate: Some(estimate),
            witnesses: Vec::new(),
            runs_total,
            splits_spawned,
            stages_run,
        }
    }
}

/// Contribution of a goal hit at lineage level `lvl` under branch
/// factor `k`: `k^-lvl`.
fn weight(k: usize, lvl: usize) -> f64 {
    (1.0 / k as f64).powi(i32::try_from(lvl).unwrap_or(i32::MAX))
}

/// Two-sided standard-normal quantile for a confidence level in `(0, 1)`
/// via Acklam's rational approximation of the inverse normal CDF
/// (absolute error below `1.2e-9` — far inside Monte Carlo noise).
fn z_quantile(confidence: f64) -> f64 {
    inv_norm_cdf(0.5 + confidence / 2.0)
}

fn inv_norm_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_quantile_matches_tables() {
        assert!((z_quantile(0.95) - 1.959_964).abs() < 1e-5);
        assert!((z_quantile(0.99) - 2.575_829).abs() < 1e-5);
        assert!((z_quantile(0.6827) - 1.0).abs() < 1e-3);
    }
}
