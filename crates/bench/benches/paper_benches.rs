//! Criterion benchmarks reproducing the cost of every experiment in the
//! paper's evaluation (see EXPERIMENTS.md for the experiment index):
//!
//! * `e1_train_gate_verification` — §II.A(a): safety/deadlock checks;
//! * `e2_tiga_synthesis`          — §II.A(b)/Figs. 2–3: game solving;
//! * `e3_smc_cdf`                 — §II.A(c)/Fig. 4: CDF estimation;
//! * `e4_brp_table1`              — §III.A/Table I: mctau vs mcpta vs modes;
//! * `e5_bip_engine`              — §IV: DALA exploration/D-Finder/synthesis;
//! * `e6_ioco_generation`         — §V: test generation and campaigns;
//! * `a1_ablation_extrapolation`  — zone extrapolation on/off;
//! * `a2_ablation_mdp`            — value iteration vs step-bounded unrolling;
//! * `a3_ablation_smc`            — estimation cost vs run budget.

// `criterion_group!` expands to undocumented plumbing functions.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tempo_core::bip::{check_deadlock_freedom, synthesize_safety_controller};
use tempo_core::ioco::{LtsIut, TestGenerator};
use tempo_core::mdp::{bounded_reachability, reachability, Opt};
use tempo_core::modest::{Mctau, Modes, Scheduler};
use tempo_core::smc::StatisticalChecker;
use tempo_core::ta::{Explorer, ModelChecker};
use tempo_core::tiga::GameSolver;
use tempo_models::brp::brp;
use tempo_models::dala::dala;
use tempo_models::vending::{dispenser_good, dispenser_spec};
use tempo_models::{train_gate, train_gate_game};

fn e1_train_gate_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_train_gate_verification");
    group.sample_size(10);
    for n in [2_usize, 3] {
        group.bench_with_input(BenchmarkId::new("safety", n), &n, |b, &n| {
            b.iter(|| {
                let tg = train_gate(n);
                let mut mc = ModelChecker::new(&tg.net);
                let (v, _) = mc.always(&tg.safety());
                assert!(v.holds());
            });
        });
        group.bench_with_input(BenchmarkId::new("deadlock_free", n), &n, |b, &n| {
            b.iter(|| {
                let tg = train_gate(n);
                let mut mc = ModelChecker::new(&tg.net);
                let (v, _) = mc.deadlock_free();
                assert!(v.holds());
            });
        });
    }
    group.finish();
}

fn e2_tiga_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_tiga_synthesis");
    group.sample_size(10);
    group.bench_function("safety_game_n2", |b| {
        b.iter(|| {
            let g = train_gate_game(2);
            let solver = GameSolver::new(&g.net);
            let res = solver.solve_safety(&g.collision());
            assert!(res.winning);
        });
    });
    group.finish();
}

fn e3_smc_cdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_smc_cdf");
    group.sample_size(10);
    for runs in [100_usize, 400] {
        group.bench_with_input(BenchmarkId::new("cdf_train0", runs), &runs, |b, &runs| {
            let tg = train_gate(3);
            b.iter(|| {
                let mut smc = StatisticalChecker::new(&tg.net, tg.rates(), 1);
                let cdf = smc.cdf(&tg.cross(0), 100.0, runs);
                assert!(cdf.hits() > 0);
            });
        });
    }
    group.finish();
}

fn e4_brp_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_brp_table1");
    group.sample_size(10);
    group.bench_function("mctau_invariants_n4", |b| {
        let model = brp(4, 2, 1);
        b.iter(|| {
            let mctau = Mctau::new(&model.pta);
            assert!(mctau.check_invariant(&model.ta1()));
        });
    });
    group.bench_function("mcpta_p1_n4", |b| {
        let model = brp(4, 2, 1);
        b.iter(|| {
            let mc = model.mcpta(0, 5_000_000);
            let p1 = mc.pmax(&model.p1_goal());
            assert!(p1 > 0.0);
        });
    });
    group.bench_function("modes_1k_runs_n4", |b| {
        let model = brp(4, 2, 1);
        b.iter(|| {
            let mut modes = Modes::new(&model.pta, &[], Scheduler::Alap, 5);
            let done = model.done();
            let obs = modes.observe(1000, 400, 100_000, |exp, run| {
                run.first_hit(exp, &done).is_some()
            });
            assert_eq!(obs.observations, 1000);
        });
    });
    group.finish();
}

fn e5_bip_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_bip_engine");
    group.bench_function("dala_reachability", |b| {
        let d = dala();
        b.iter(|| {
            let states = d.sys.reachable_states(1_000_000);
            assert!(!states.is_empty());
        });
    });
    group.bench_function("dala_dfinder", |b| {
        let d = dala();
        b.iter(|| check_deadlock_freedom(&d.sys, 1_000_000));
    });
    group.bench_function("dala_controller_synthesis", |b| {
        let d = dala();
        b.iter(|| {
            let res = synthesize_safety_controller(&d.sys, d.bad(), 1_000_000);
            assert!(res.initial_safe);
        });
    });
    group.finish();
}

fn e6_ioco_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_ioco_generation");
    group.bench_function("campaign_100_tests", |b| {
        let spec = dispenser_spec();
        b.iter(|| {
            let mut gen = TestGenerator::new(&spec, 1);
            let mut iut = LtsIut::new(dispenser_good(), 2);
            let (failures, _) = gen.campaign(&mut iut, 100, 20);
            assert_eq!(failures, 0);
        });
    });
    group.bench_function("offline_generation_depth8", |b| {
        let spec = dispenser_spec();
        b.iter(|| {
            let mut gen = TestGenerator::new(&spec, 1);
            for _ in 0..100 {
                let t = gen.generate(8);
                assert!(t.size() > 0);
            }
        });
    });
    group.finish();
}

fn e7_ecdar_and_parser(c: &mut Criterion) {
    use tempo_core::ecdar::{refines, TioaAtom, TioaBuilder};
    use tempo_core::modest::parse_modest;
    let mut group = c.benchmark_group("e7_ecdar_and_parser");
    group.bench_function("refinement_deadline_ladder", |b| {
        let contract = |deadline: i64| {
            let mut t = TioaBuilder::new("C");
            let x = t.clock("x");
            let idle = t.location("Idle");
            let busy = t.location_with_invariant("Busy", vec![TioaAtom::le(x, deadline)]);
            t.input(idle, busy, "req").reset(x).done();
            t.output(busy, idle, "resp").done();
            t.build()
        };
        let tight = contract(4);
        let loose = contract(16);
        b.iter(|| {
            assert!(refines(&tight, &loose).is_ok());
            assert!(refines(&loose, &tight).is_err());
        });
    });
    group.bench_function("parse_fig5_channel", |b| {
        let source = r"
            const TD = 1;
            clock c;
            action put, get;
            process Channel() {
              put palt {
                :98: {= c = 0 =}; invariant(c <= TD) get
                : 2: {==}
              }; Channel()
            }
            system Channel();
        ";
        b.iter(|| {
            let model = parse_modest(source).expect("parses");
            assert_eq!(model.actions().len(), 2);
        });
    });
    group.finish();
}

fn a1_ablation_extrapolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_ablation_extrapolation");
    group.sample_size(10);
    // Full state-space construction with and without maximal-constant
    // extrapolation (DESIGN.md ablation A1).
    group.bench_function("with_extrapolation", |b| {
        let tg = train_gate(2);
        b.iter(|| {
            let exp = Explorer::new(&tg.net);
            assert!(count_states(&exp) > 0);
        });
    });
    group.bench_function("without_extrapolation", |b| {
        let tg = train_gate(2);
        b.iter(|| {
            let exp = Explorer::new(&tg.net).without_extrapolation();
            assert!(count_states(&exp) > 0);
        });
    });
    group.finish();
}

/// Breadth-first state count with inclusion checking (shared by A1).
fn count_states(exp: &Explorer<'_>) -> usize {
    use std::collections::{HashMap, VecDeque};
    let mut passed: HashMap<_, Vec<tempo_core::ta::SymState>> = HashMap::new();
    let mut waiting = VecDeque::new();
    let init = exp.initial_state();
    passed
        .entry(init.discrete())
        .or_default()
        .push(init.clone());
    waiting.push_back(init);
    let mut count = 0;
    while let Some(state) = waiting.pop_front() {
        count += 1;
        if count > 200_000 {
            break;
        }
        for (_, succ) in exp.successors(&state) {
            let entry = passed.entry(succ.discrete()).or_default();
            if entry.iter().any(|s| succ.zone.is_subset_of(&s.zone)) {
                continue;
            }
            entry.retain(|s| !s.zone.is_subset_of(&succ.zone));
            entry.push(succ.clone());
            waiting.push_back(succ);
        }
    }
    count
}

fn p1_parallel_reach(c: &mut Criterion) {
    let mut group = c.benchmark_group("p1_parallel_reach");
    group.sample_size(10);
    // The tentpole speedup experiment: exhaustive safety search on the
    // 4-train gate at increasing worker counts. Verdict and fixpoint size
    // are thread-count independent (asserted in integration_parallel.rs);
    // here only the wall clock varies.
    let tg = train_gate(4);
    for threads in [1_usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("safety_n4_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut mc = ModelChecker::new(&tg.net).with_threads(threads);
                    let (v, _) = mc.always(&tg.safety());
                    assert!(v.holds());
                });
            },
        );
    }
    group.finish();
}

fn p2_parallel_smc(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_parallel_smc");
    group.sample_size(10);
    // Batch simulation on the 3-train gate with the run budget partitioned
    // across workers (per-worker RNG streams derived from the seed).
    let tg = train_gate(3);
    for threads in [1_usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("cdf_2000_runs_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut smc =
                        StatisticalChecker::new(&tg.net, tg.rates(), 1).with_threads(threads);
                    let cdf = smc.cdf(&tg.cross(0), 100.0, 2000);
                    assert!(cdf.hits() > 0);
                });
            },
        );
    }
    group.finish();
}

fn a2_ablation_mdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_ablation_mdp");
    group.sample_size(10);
    let model = brp(4, 2, 1);
    let mc = model.mcpta(0, 5_000_000);
    let goal = mc.goal_mask(&model.p1_goal());
    group.bench_function("unbounded_vi", |b| {
        b.iter(|| {
            let res = reachability(mc.mdp(), Opt::Max, &goal);
            assert!(res.initial_value > 0.0);
        });
    });
    group.bench_function("interval_iteration", |b| {
        b.iter(|| {
            let res = tempo_core::mdp::interval_reachability(mc.mdp(), Opt::Max, &goal, 1e-8);
            assert!(res.initial_upper >= res.initial_lower);
        });
    });
    group.bench_function("bounded_vi_200", |b| {
        b.iter(|| {
            let res = bounded_reachability(mc.mdp(), Opt::Max, &goal, 200);
            assert!(res.initial_value >= 0.0);
        });
    });
    group.finish();
}

fn a3_ablation_smc(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_ablation_smc");
    group.sample_size(10);
    let tg = train_gate(2);
    for runs in [100_usize, 1000] {
        group.bench_with_input(BenchmarkId::new("estimate", runs), &runs, |b, &runs| {
            b.iter(|| {
                let mut smc = StatisticalChecker::new(&tg.net, tg.rates(), 4);
                let est = smc.probability(&tg.cross(0), 100.0, runs, 0.95);
                assert!(est.mean > 0.0);
            });
        });
    }
    group.finish();
}

fn p3_svc(c: &mut Criterion) {
    use std::sync::Arc;
    use tempo_core::obs::Budget;
    use tempo_core::svc::{AnalysisService, JobKind, JobRequest, ServiceConfig, VerdictSource};

    let mut group = c.benchmark_group("p3_svc");
    group.sample_size(10);
    // The verdict-cache experiment on the acceptance workload (BRP via
    // mcpta, whose digital-clocks MDP construction dominates a miss):
    // a cold miss pays the full engine run, a warm hit is a sharded-map
    // clone, and a coalesced follower piggybacks on one in-flight run.
    let model = brp(4, 2, 1);
    let kind = JobKind::McptaReach {
        pta: Arc::new(model.pta.clone()),
        opt: Opt::Max,
        goal: model.p1_goal(),
        epsilon: 1e-9,
    };
    let request = |kind: &JobKind| JobRequest {
        tenant: "bench".into(),
        priority: 0,
        budget: Budget::unlimited(),
        kind: kind.clone(),
    };
    group.bench_function("mcpta_brp4_cold_miss", |b| {
        b.iter(|| {
            // A fresh service per iteration: nothing cached yet.
            let svc = AnalysisService::new(ServiceConfig::default());
            let r = svc.run(request(&kind)).expect("computed");
            assert_eq!(r.source, VerdictSource::Computed);
            svc.shutdown();
        });
    });
    group.bench_function("mcpta_brp4_warm_hit", |b| {
        let svc = AnalysisService::new(ServiceConfig::default());
        let cold = svc.run(request(&kind)).expect("primed");
        b.iter(|| {
            let r = svc.run(request(&kind)).expect("hit");
            assert_eq!(r.source, VerdictSource::MemoryHit);
            assert_eq!(r.verdict, cold.verdict);
        });
        svc.shutdown();
    });
    group.bench_function("mcpta_brp4_coalesced", |b| {
        // Distinct seeds make each iteration a fresh key, so followers
        // coalesce onto a genuinely in-flight run, never a cache hit.
        let tg = train_gate(3);
        let net = Arc::new(tg.net.clone());
        let mut seed = 0_u64;
        let svc = AnalysisService::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        b.iter(|| {
            seed += 1;
            let job = JobKind::Probability {
                net: Arc::clone(&net),
                rates: tg.rates(),
                seed,
                goal: tg.cross(0),
                bound: 100.0,
                runs: 2000,
                confidence: 0.95,
            };
            let leader = svc.submit(request(&job)).expect("admitted");
            let follower = svc.submit(request(&job)).expect("admitted");
            let a = leader.wait().expect("leader");
            let b2 = follower.wait().expect("follower");
            assert_eq!(a.verdict, b2.verdict);
        });
        svc.shutdown();
    });
    group.finish();
}

fn p4_flow(c: &mut Criterion) {
    use tempo_core::obs::{Budget, ExploreConfig};

    let mut group = c.benchmark_group("p4_flow");
    group.sample_size(10);
    // The dataflow-pass experiment: exhaustive search for the (unreachable)
    // collision on the 4-train gate, so the run covers the whole reachable
    // space. LU extrapolation + slicing is isolated from POR/symmetry to
    // make the shrink attributable to the flow passes alone.
    let tg = train_gate(4);
    let collision = tempo_core::ta::StateFormula::not(tg.safety());
    group.bench_function("collision_n4_unreduced", |b| {
        b.iter(|| {
            let out = ModelChecker::new(&tg.net)
                .with_config(ExploreConfig::unreduced())
                .try_reachable_governed(&collision, &Budget::unlimited())
                .expect("in-memory store");
            assert!(!out.value().reachable);
        });
    });
    group.bench_function("collision_n4_lu_slice", |b| {
        b.iter(|| {
            let out = ModelChecker::new(&tg.net)
                .with_config(ExploreConfig::unreduced().with_lu(true).with_slice(true))
                .try_reachable_governed(&collision, &Budget::unlimited())
                .expect("in-memory store");
            assert!(!out.value().reachable);
            assert!(out.report().lu_tightened > 0);
        });
    });
    // The digital-clocks side: BRP's MDP build with the variable-range
    // and LU passes on vs off.
    let model = brp(4, 2, 1);
    group.bench_function("mcpta_brp4_flow_off", |b| {
        b.iter(|| {
            let mc = model.mcpta_with(
                0,
                tempo_core::modest::McptaConfig {
                    flow: false,
                    ..tempo_core::modest::McptaConfig::default()
                },
                5_000_000,
            );
            assert!(mc.stats().states > 0);
        });
    });
    group.bench_function("mcpta_brp4_flow_on", |b| {
        b.iter(|| {
            let mc = model.mcpta(0, 5_000_000);
            assert!(mc.stats().states > 0);
        });
    });
    group.finish();
}

fn p5_rare(c: &mut Criterion) {
    use tempo_core::cora::PricedNetwork;
    use tempo_core::rare::{PricedChecker, RareChecker, SplitConfig, SplitMethod};
    use tempo_core::smc::RatePolicy;
    use tempo_core::ta::LocationId;
    use tempo_models::chain;

    let mut group = c.benchmark_group("p5_rare");
    group.sample_size(10);
    // The rare-event experiment: fixed-effort vs RESTART on the analytic
    // 2^-16 chain, and the priced estimator's per-run cost accounting
    // overhead against the plain SMC estimator on the same batch.
    let ch = chain(16);
    let goal = ch.goal();
    let bound = ch.time_bound();
    group.bench_function("fixed_effort_chain16", |b| {
        b.iter(|| {
            let mut rc = RareChecker::new(&ch.net, RatePolicy::new(), 1);
            let est = rc.probability(&goal, bound, &SplitConfig::default());
            assert!(est.lower > 0.0);
        });
    });
    group.bench_function("restart_chain16", |b| {
        b.iter(|| {
            let mut rc = RareChecker::new(&ch.net, RatePolicy::new(), 1);
            let config = SplitConfig {
                method: SplitMethod::Restart,
                replications: 64,
                ..SplitConfig::default()
            };
            let est = rc.probability(&goal, bound, &config);
            assert!(est.p_hat >= 0.0);
        });
    });
    for threads in [1_usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("fixed_effort_chain16_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut rc =
                        RareChecker::new(&ch.net, RatePolicy::new(), 1).with_threads(threads);
                    let est = rc.probability(&goal, bound, &SplitConfig::default());
                    assert!(est.lower > 0.0);
                });
            },
        );
    }
    let small = chain(6);
    let mut pnet = PricedNetwork::new(small.net.clone());
    for li in 0..small.net.automata()[small.aut.index()].locations.len() {
        pnet.set_rate(small.aut, LocationId(li), 1);
    }
    group.bench_function("priced_cost_probability_2000", |b| {
        b.iter(|| {
            let mut chk = PricedChecker::new(&pnet, RatePolicy::new(), 1);
            let est =
                chk.cost_probability(&small.goal(), f64::INFINITY, small.time_bound(), 2000, 0.95);
            assert!(est.runs == 2000);
        });
    });
    group.bench_function("plain_probability_2000", |b| {
        b.iter(|| {
            let mut smc = StatisticalChecker::new(&small.net, RatePolicy::new(), 1);
            let est = smc.probability(&small.goal(), small.time_bound(), 2000, 0.95);
            assert!(est.runs == 2000);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    e1_train_gate_verification,
    e2_tiga_synthesis,
    e3_smc_cdf,
    e4_brp_table1,
    e5_bip_engine,
    e6_ioco_generation,
    e7_ecdar_and_parser,
    a1_ablation_extrapolation,
    a2_ablation_mdp,
    a3_ablation_smc,
    p1_parallel_reach,
    p2_parallel_smc,
    p3_svc,
    p4_flow,
    p5_rare,
);
criterion_main!(benches);
