//! # tempo-bench — benchmark and experiment harness
//!
//! Hosts the repository-level `examples/` (one per paper experiment),
//! `tests/` (cross-crate integration tests) and Criterion benchmarks
//! (`benches/paper_benches.rs`, one group per table/figure plus
//! ablations). See EXPERIMENTS.md for the experiment index.
