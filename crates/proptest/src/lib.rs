//! Vendored, dependency-free stand-in for the parts of the `proptest` crate
//! that the tempo workspace uses.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace pins `proptest` to this in-tree implementation via a path
//! dependency. It keeps the same authoring surface — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, range / tuple /
//! collection strategies, `prop_map` and `prop_recursive` — but runs cases
//! from a fixed seed and reports the first failing case without shrinking.
//! Failures therefore reproduce deterministically across runs; regression
//! seeds recorded by upstream proptest are instead captured as direct
//! `#[test]` cases in the affected crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving test-case generation. Seeded per property by the
/// `proptest!` macro so runs are reproducible.
pub type TestRng = StdRng;

/// A generator of random values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// produces a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// previous depth level and returns the next level. `depth` bounds the
    /// recursion; the `_desired_size` / `_expected_branch_size` hints are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level is a coin flip between bottoming out at a leaf and
            // recursing one step, which keeps generated sizes bounded.
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Erase the concrete strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies for the same value type.
/// Backs the `prop_oneof!` macro.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Namespaced strategies matching upstream proptest's `prop` module.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for a fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolStrategy;

        /// Generates `true` or `false` with equal probability.
        pub const ANY: BoolStrategy = BoolStrategy;

        impl Strategy for BoolStrategy {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Anything `vec` accepts as a length specification.
        pub trait SizeRange {
            /// Pick a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for vectors of values from `element`.
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        /// A vector whose length is drawn from `size` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Option<T>` values.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some` of a value from `inner` half the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.5) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Construct the test RNG from a seed. Used by macro expansions so consumer
/// crates do not need their own `rand` dependency in scope.
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a per-property RNG seed from the property name, so each property
/// sees a distinct but run-to-run stable case sequence.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Define properties: each `#[test] fn name(pat in strategy, ...) { body }`
/// becomes a test that runs the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng: $crate::TestRng = $crate::new_rng(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name),
                        __case,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property; failure reports the condition (or a
/// custom message) and aborts the run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format_args!($($fmt)+));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format_args!($($fmt)+),
            );
        }
    }};
}

/// Assert two values are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: {} == {}\n value: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            );
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small_vec() -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(-5_i64..5, 0..4)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0..10_usize, y in -3_i64..=3, f in 0.25..0.75_f64) {
            prop_assert!(x < 10);
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in arb_small_vec()) {
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|x| (-5..5).contains(x)));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1_i64), Just(2), 10_i64..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        #[test]
        fn option_of_mixes(o in prop::option::of(0..5_u32)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (-4_i64..4).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        })
    }

    proptest! {
        #[test]
        fn recursive_depth_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::new_rng(crate::seed_for("x"));
        let mut b = crate::new_rng(crate::seed_for("x"));
        let s = arb_small_vec();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
