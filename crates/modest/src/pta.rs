//! Probabilistic timed automata: the semantic object MODEST models
//! compile to, with a digital-clocks explorer used by `mcpta` and
//! `modes`.

use crate::ast::ActionId;
use std::collections::BTreeSet;
use tempo_dbm::Clock;
use tempo_expr::{Decls, Expr, Stmt, Store, VarId};
use tempo_flow::{
    eval, expr_can_trap, expr_vars, relevant_vars, stmt_assignments, truth, Command, Env,
    LuAutomaton, LuBounds, LuEdge, RangeAnalysis, Truth, NO_BOUND,
};
use tempo_ta::{ClockAtom, StateFormula};

/// One probabilistic branch of a PTA edge.
#[derive(Debug, Clone, PartialEq)]
pub struct PtaBranch {
    /// Relative weight.
    pub weight: u64,
    /// Variable assignments (in order).
    pub assignments: Vec<(AssignTarget, Expr)>,
    /// Clock resets.
    pub resets: Vec<(Clock, i64)>,
    /// Target location.
    pub to: usize,
}

/// Assignment target: scalar or array element.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    /// A scalar variable.
    Var(VarId),
    /// `array[index]`.
    ArrayElem(VarId, Expr),
}

/// An edge of a PTA: guard, action, and a distribution over branches.
#[derive(Debug, Clone, PartialEq)]
pub struct PtaEdge {
    /// Source location.
    pub from: usize,
    /// Clock guard atoms.
    pub guard_clocks: Vec<ClockAtom>,
    /// Data guard.
    pub guard_data: Expr,
    /// Action (`None` for internal).
    pub action: Option<ActionId>,
    /// Weighted branches (weights need not be normalized).
    pub branches: Vec<PtaBranch>,
}

/// A location of a PTA.
#[derive(Debug, Clone, PartialEq)]
pub struct PtaLocation {
    /// Name for diagnostics.
    pub name: String,
    /// Invariant atoms.
    pub invariant: Vec<ClockAtom>,
}

/// One component automaton of a PTA network.
#[derive(Debug, Clone, PartialEq)]
pub struct PtaAutomaton {
    /// Component name (the MODEST process name).
    pub name: String,
    /// Locations.
    pub locations: Vec<PtaLocation>,
    /// Edges.
    pub edges: Vec<PtaEdge>,
    /// Initial location.
    pub initial: usize,
}

/// How an action synchronizes in the composed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// Used by at most one component: fires alone.
    Local,
    /// Used by exactly two components: CSP handshake between them.
    Pair(usize, usize),
}

/// A network of probabilistic timed automata with CSP-style action
/// synchronization, produced by compiling a
/// [`ModestModel`](crate::ModestModel).
#[derive(Debug, Clone)]
pub struct Pta {
    /// Variable declarations.
    pub decls: Decls,
    /// DBM dimension (clocks + reference).
    pub dim: usize,
    /// Action names.
    pub actions: Vec<String>,
    /// Component automata.
    pub automata: Vec<PtaAutomaton>,
    /// Synchronization structure per action.
    pub sync: Vec<SyncKind>,
}

impl Pta {
    /// Per-clock maximal constants over guards and invariants.
    #[must_use]
    pub fn max_constants(&self) -> Vec<i64> {
        let mut m = vec![0_i64; self.dim];
        let mut feed = |atom: &ClockAtom| {
            if atom.bound.is_inf() {
                return;
            }
            let c = atom.bound.constant().abs();
            if !atom.i.is_ref() {
                m[atom.i.index()] = m[atom.i.index()].max(c);
            }
            if !atom.j.is_ref() {
                m[atom.j.index()] = m[atom.j.index()].max(c);
            }
        };
        for a in &self.automata {
            for l in &a.locations {
                l.invariant.iter().for_each(&mut feed);
            }
            for e in &a.edges {
                e.guard_clocks.iter().for_each(&mut feed);
            }
        }
        m
    }
}

/// The result of active-clock reduction over a PTA: the reduced PTA plus
/// the clock map, mirroring [`tempo_ta::ClockReduction`] for the MODEST
/// pipeline. A clock read by no guard, invariant or protected atom can
/// never influence enabledness or branching, so removing it (and its
/// resets) preserves every probability and expected value; only the
/// per-state clock vector shrinks.
#[derive(Debug, Clone)]
pub struct PtaReduction {
    pta: Pta,
    /// `map[i]` is the reduced index of original clock `i` (`None` when
    /// removed); `map[0]` is the reference clock.
    map: Vec<Option<Clock>>,
    original_dim: usize,
}

impl PtaReduction {
    /// The reduced PTA.
    #[must_use]
    pub fn pta(&self) -> &Pta {
        &self.pta
    }

    /// Clock-space dimension after reduction.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.pta.dim
    }

    /// Clock-space dimension of the original PTA.
    #[must_use]
    pub fn original_dim(&self) -> usize {
        self.original_dim
    }

    /// Whether any clock was removed.
    #[must_use]
    pub fn is_reduced(&self) -> bool {
        self.pta.dim < self.original_dim
    }

    /// Maps a constraint atom into the reduced clock space (`None` if it
    /// reads a removed clock).
    #[must_use]
    pub fn map_atom(&self, atom: &ClockAtom) -> Option<ClockAtom> {
        Some(ClockAtom {
            i: self.map.get(atom.i.index()).copied().flatten()?,
            j: self.map.get(atom.j.index()).copied().flatten()?,
            bound: atom.bound,
        })
    }

    /// Maps a state formula into the reduced clock space (`None` if it
    /// reads a removed clock).
    #[must_use]
    pub fn map_formula(&self, f: &StateFormula) -> Option<StateFormula> {
        Some(match f {
            StateFormula::True => StateFormula::True,
            StateFormula::False => StateFormula::False,
            StateFormula::At(a, l) => StateFormula::At(*a, *l),
            StateFormula::Data(e) => StateFormula::Data(e.clone()),
            StateFormula::Clock(atom) => StateFormula::Clock(self.map_atom(atom)?),
            StateFormula::Not(g) => StateFormula::not(self.map_formula(g)?),
            StateFormula::And(gs) => StateFormula::and(
                gs.iter()
                    .map(|g| self.map_formula(g))
                    .collect::<Option<Vec<_>>>()?,
            ),
            StateFormula::Or(gs) => StateFormula::or(
                gs.iter()
                    .map(|g| self.map_formula(g))
                    .collect::<Option<Vec<_>>>()?,
            ),
        })
    }
}

impl Pta {
    /// Active-clock reduction keeping the clocks of `extra` atoms alive
    /// (pass every property atom used by later queries). See
    /// [`PtaReduction`].
    #[must_use]
    pub fn reduced_with(&self, extra: &[ClockAtom]) -> PtaReduction {
        let mut read = vec![false; self.dim];
        read[0] = true;
        let feed = |read: &mut Vec<bool>, atom: &ClockAtom| {
            read[atom.i.index()] = true;
            read[atom.j.index()] = true;
        };
        for a in &self.automata {
            for l in &a.locations {
                for atom in &l.invariant {
                    feed(&mut read, atom);
                }
            }
            for e in &a.edges {
                for atom in &e.guard_clocks {
                    feed(&mut read, atom);
                }
            }
        }
        for atom in extra {
            feed(&mut read, atom);
        }

        let mut map: Vec<Option<Clock>> = vec![None; self.dim];
        map[0] = Some(Clock::REF);
        let mut kept = 0_usize;
        for i in 1..self.dim {
            if read[i] {
                kept += 1;
                map[i] = Some(Clock(kept));
            }
        }
        let remap = |atom: &ClockAtom| ClockAtom {
            i: map[atom.i.index()].expect("read clocks are kept"),
            j: map[atom.j.index()].expect("read clocks are kept"),
            bound: atom.bound,
        };
        let automata = self
            .automata
            .iter()
            .map(|a| PtaAutomaton {
                name: a.name.clone(),
                locations: a
                    .locations
                    .iter()
                    .map(|l| PtaLocation {
                        name: l.name.clone(),
                        invariant: l.invariant.iter().map(&remap).collect(),
                    })
                    .collect(),
                edges: a
                    .edges
                    .iter()
                    .map(|e| PtaEdge {
                        from: e.from,
                        guard_clocks: e.guard_clocks.iter().map(&remap).collect(),
                        guard_data: e.guard_data.clone(),
                        action: e.action,
                        branches: e
                            .branches
                            .iter()
                            .map(|b| PtaBranch {
                                weight: b.weight,
                                assignments: b.assignments.clone(),
                                resets: b
                                    .resets
                                    .iter()
                                    .filter_map(|&(c, v)| map[c.index()].map(|nc| (nc, v)))
                                    .collect(),
                                to: b.to,
                            })
                            .collect(),
                    })
                    .collect(),
                initial: a.initial,
            })
            .collect();
        PtaReduction {
            pta: Pta {
                decls: self.decls.clone(),
                dim: kept + 1,
                actions: self.actions.clone(),
                automata,
                sync: self.sync.clone(),
            },
            map,
            original_dim: self.dim,
        }
    }
}

/// Splits one clock constraint into LU solver atoms, mirroring the
/// network adapter in `tempo_ta::flow`: diagonal constraints fold `|c|`
/// into both polarities of both clocks, matching the conservative
/// treatment of [`Pta::max_constants`].
fn atom_lu(atom: &ClockAtom, lower: &mut Vec<(usize, i64)>, upper: &mut Vec<(usize, i64)>) {
    if atom.bound.is_inf() {
        return;
    }
    let c = atom.bound.constant();
    match (atom.i.is_ref(), atom.j.is_ref()) {
        (false, true) => upper.push((atom.i.index(), c)),
        (true, false) => lower.push((atom.j.index(), -c)),
        (false, false) => {
            let m = c.saturating_abs();
            for x in [atom.i.index(), atom.j.index()] {
                lower.push((x, m));
                upper.push((x, m));
            }
        }
        (true, true) => {}
    }
}

/// Per-location LU clock-bound tables of a PTA: one solved table per
/// component automaton, combined per state by pointwise maximum (see
/// `tempo_ta::flow::NetworkLu` for the soundness argument — component
/// solutions are non-increasing along reset-free edges and unchanged
/// for non-participants of a synchronization).
#[derive(Debug, Clone)]
pub struct PtaLu {
    per_automaton: Vec<LuBounds>,
    dim: usize,
}

impl PtaLu {
    /// Solves the LU fixpoint of every component automaton; the
    /// `protect` atoms (property bounds, observable in every location)
    /// are folded into the tables. Each probabilistic branch becomes
    /// its own solver edge (same guard, its own resets and target).
    #[must_use]
    pub fn analyze(pta: &Pta, protect: &[ClockAtom]) -> PtaLu {
        let dim = pta.dim;
        let mut per_automaton: Vec<LuBounds> = pta
            .automata
            .iter()
            .map(|a| {
                let lu = LuAutomaton {
                    locations: a.locations.len(),
                    edges: a
                        .edges
                        .iter()
                        .flat_map(|e| {
                            let mut lower = Vec::new();
                            let mut upper = Vec::new();
                            for atom in &e.guard_clocks {
                                atom_lu(atom, &mut lower, &mut upper);
                            }
                            e.branches
                                .iter()
                                .map(|b| LuEdge {
                                    from: e.from,
                                    to: b.to,
                                    resets: b.resets.iter().map(|(c, _)| c.index()).collect(),
                                    lower: lower.clone(),
                                    upper: upper.clone(),
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect(),
                    invariants: a
                        .locations
                        .iter()
                        .map(|l| {
                            let mut lower = Vec::new();
                            let mut upper = Vec::new();
                            for atom in &l.invariant {
                                atom_lu(atom, &mut lower, &mut upper);
                            }
                            (lower, upper)
                        })
                        .collect(),
                };
                LuBounds::solve(&lu, dim)
            })
            .collect();
        if let Some(first) = per_automaton.first_mut() {
            let mut lower = Vec::new();
            let mut upper = Vec::new();
            for atom in protect {
                atom_lu(atom, &mut lower, &mut upper);
            }
            for (x, c) in lower.into_iter().chain(upper) {
                first.protect(x, c);
            }
        }
        PtaLu { per_automaton, dim }
    }

    /// Writes the per-clock tick clamp for the discrete configuration
    /// `locs` into `out`: `max(L, U) + 1` of the pointwise component
    /// maxima, so a clock past every constant still observable from
    /// here stops counting one unit above the largest such constant.
    pub fn clamp(&self, locs: &[usize], out: &mut Vec<i64>) {
        out.clear();
        out.resize(self.dim, NO_BOUND);
        for (b, &l) in self.per_automaton.iter().zip(locs) {
            for (x, slot) in out.iter_mut().enumerate().skip(1) {
                let m = b.lower[l][x].max(b.upper[l][x]);
                if m > *slot {
                    *slot = m;
                }
            }
        }
        for v in out.iter_mut() {
            *v = (*v).max(0) + 1;
        }
    }

    /// How many `(location, clock)` pairs have an LU bound strictly
    /// tighter than the clock's global maximal constant — the
    /// `lu_tightened` run-report metric.
    #[must_use]
    pub fn tightened(&self, max_consts: &[i64]) -> u64 {
        let mut n = 0;
        for b in &self.per_automaton {
            for l in 0..b.lower.len() {
                for (x, &m) in max_consts.iter().enumerate().take(self.dim).skip(1) {
                    if b.lower[l][x] < m || b.upper[l][x] < m {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// One branch's assignments as a [`Stmt`] for the dataflow solvers.
fn branch_stmt(b: &PtaBranch) -> Stmt {
    Stmt::Seq(
        b.assignments
            .iter()
            .map(|(target, e)| match target {
                AssignTarget::Var(id) => Stmt::Assign(*id, e.clone()),
                AssignTarget::ArrayElem(id, idx) => Stmt::AssignIndex(*id, idx.clone(), e.clone()),
            })
            .collect(),
    )
}

/// The global interval range fixpoint of a PTA: every branch of every
/// edge is one guarded command.
#[must_use]
pub fn pta_ranges(pta: &Pta) -> RangeAnalysis {
    let mut commands = Vec::new();
    for a in &pta.automata {
        for e in &a.edges {
            for b in &e.branches {
                commands.push(Command {
                    guard: e.guard_data.clone(),
                    update: branch_stmt(b),
                    selects: Vec::new(),
                });
            }
        }
    }
    RangeAnalysis::run(&pta.decls, &commands)
}

/// The result of slicing a PTA (see [`slice`]).
#[derive(Debug, Clone)]
pub struct PtaSlice {
    /// The sliced PTA: disabled edges keep their index but can never
    /// fire (guard rewritten to `false`, branches dropped).
    pub pta: Pta,
    /// Edges disabled: guard provably false under the range fixpoint,
    /// or a pair-synchronizing action whose partner component has no
    /// live edge for that action.
    pub disabled_edges: u64,
    /// Variables whose range fixpoint is strictly inside the declared
    /// range.
    pub vars_narrowed: u64,
    /// Write-only variables outside the cone of influence of every
    /// observable expression (guards and array indices of live edges).
    pub dead_vars: Vec<VarId>,
    /// Assignments to dead variables removed by freezing.
    pub frozen_assignments: u64,
}

/// Query-directed slicing of a PTA.
///
/// Two reductions, both exact for every probability and expected value:
///
/// * **Dead edges** — an edge whose data guard is provably false under
///   the global range fixpoint can never fire, and disabling it may
///   strand pair-synchronizing partners, which die in the same fixpoint
///   loop. Edge indices are preserved.
/// * **Variable freezing** — when `freeze` is given, assignments to
///   variables outside the cone of influence of every observable
///   expression (and not in `freeze`) are removed, merging digital
///   states that differ only in values nothing can ever read. Only
///   assignments that provably cannot trap (no division/remainder/array
///   read on the right-hand side, value inside the target's declared
///   range) are removed, preserving the branch-failure semantics of the
///   explorer. Pass the variables later queries read in `freeze`; with
///   `None` no assignment is touched and dead variables are only
///   reported.
#[must_use]
pub fn slice(pta: &Pta, freeze: Option<&BTreeSet<VarId>>) -> PtaSlice {
    let ranges = pta_ranges(pta);
    let env = ranges.env(&pta.decls);
    let vars_narrowed = ranges.narrowed(&pta.decls) as u64;
    let mut out = pta.clone();

    // Pass 1: guard-false edges, then strand pair partners to fixpoint.
    let mut disabled: Vec<Vec<bool>> = pta
        .automata
        .iter()
        .map(|a| {
            a.edges
                .iter()
                .map(|e| truth(&e.guard_data, &pta.decls, &env, &[]) == Truth::False)
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        let live_action = |ai: usize, act: ActionId, disabled: &[Vec<bool>]| {
            pta.automata[ai]
                .edges
                .iter()
                .enumerate()
                .any(|(ei, e)| e.action == Some(act) && !disabled[ai][ei])
        };
        for (ai, a) in pta.automata.iter().enumerate() {
            for (ei, e) in a.edges.iter().enumerate() {
                if disabled[ai][ei] {
                    continue;
                }
                let Some(act) = e.action else { continue };
                let SyncKind::Pair(first, second) = pta.sync[act.0] else {
                    continue;
                };
                let partner = if ai == first { second } else { first };
                if !live_action(partner, act, &disabled) {
                    disabled[ai][ei] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut disabled_edges = 0_u64;
    for (ai, a) in out.automata.iter_mut().enumerate() {
        for (ei, e) in a.edges.iter_mut().enumerate() {
            if disabled[ai][ei] {
                disabled_edges += 1;
                e.guard_clocks.clear();
                e.guard_data = Expr::konst(0);
                e.branches.clear();
            }
        }
    }

    // Pass 2: cone of influence over the live edges.
    let mut seeds = BTreeSet::new();
    let mut assigns = Vec::new();
    for a in &out.automata {
        for e in &a.edges {
            expr_vars(&e.guard_data, &mut seeds);
            for b in &e.branches {
                for (target, _) in &b.assignments {
                    if let AssignTarget::ArrayElem(_, idx) = target {
                        expr_vars(idx, &mut seeds);
                    }
                }
                stmt_assignments(&branch_stmt(b), &mut assigns);
            }
        }
    }
    if let Some(protect) = freeze {
        seeds.extend(protect.iter().copied());
    }
    let relevant = relevant_vars(seeds, &assigns);
    let written: BTreeSet<VarId> = assigns.iter().map(|a| a.target).collect();
    let dead_vars: Vec<VarId> = written
        .into_iter()
        .filter(|v| !relevant.contains(v))
        .collect();

    // Pass 3: freeze dead variables, preserving trap semantics.
    let mut frozen_assignments = 0_u64;
    if freeze.is_some() {
        let empty = Env::new();
        for a in &mut out.automata {
            for e in &mut a.edges {
                for b in &mut e.branches {
                    b.assignments.retain(|(target, rhs)| {
                        let AssignTarget::Var(id) = target else {
                            return true;
                        };
                        if !dead_vars.contains(id) || expr_can_trap(rhs) {
                            return true;
                        }
                        let declared = tempo_flow::var_interval(&pta.decls, &empty, *id);
                        let value = eval(rhs, &pta.decls, &env, &[]);
                        let fits =
                            !value.is_empty() && value.lo >= declared.lo && value.hi <= declared.hi;
                        if fits {
                            frozen_assignments += 1;
                        }
                        !fits
                    });
                }
            }
        }
    }

    PtaSlice {
        pta: out,
        disabled_edges,
        vars_narrowed,
        dead_vars,
        frozen_assignments,
    }
}

/// A concrete digital state of a PTA network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PtaState {
    /// Location of each component.
    pub locs: Vec<usize>,
    /// Variable values.
    pub store: Store,
    /// Integer clock values (clamped; `clocks[0] == 0`).
    pub clocks: Vec<i64>,
}

/// A resolved transition: a label and a distribution over successors.
#[derive(Debug, Clone)]
pub struct PtaTransition {
    /// Human-readable label (action name, `tau`, or `tick`).
    pub label: String,
    /// Whether this is the unit-delay transition.
    pub is_tick: bool,
    /// Successor distribution (probabilities sum to 1).
    pub successors: Vec<(f64, PtaState)>,
}

/// Digital-clocks explorer for PTA networks.
///
/// # Panics
///
/// [`PtaExplorer::new`] panics if the PTA contains strict clock bounds
/// (the digital semantics requires closed models) or an action is used by
/// more than two components.
#[derive(Debug)]
pub struct PtaExplorer<'p> {
    pta: &'p Pta,
    clamp: Vec<i64>,
    /// Per-location LU tables; when present, ticks clamp each clock at
    /// the current location vector's bound instead of the global
    /// maximal constant, merging digital states that are
    /// guard-equivalent for everything still observable.
    lu: Option<PtaLu>,
}

impl<'p> PtaExplorer<'p> {
    /// Creates an explorer; `extra_atoms` widens the clock clamp so that
    /// property constants (e.g. a time bound) remain observable.
    #[must_use]
    pub fn new(pta: &'p Pta, extra_atoms: &[ClockAtom]) -> Self {
        for a in &pta.automata {
            for l in &a.locations {
                for atom in &l.invariant {
                    assert!(
                        atom.bound.is_inf() || !atom.bound.is_strict(),
                        "digital clocks require closed invariants ({})",
                        l.name
                    );
                }
            }
            for e in &a.edges {
                for atom in &e.guard_clocks {
                    assert!(
                        atom.bound.is_inf() || !atom.bound.is_strict(),
                        "digital clocks require closed guards (in {})",
                        a.name
                    );
                }
            }
        }
        let mut consts = pta.max_constants();
        for atom in extra_atoms {
            if atom.bound.is_inf() {
                continue;
            }
            let c = atom.bound.constant().abs();
            if !atom.i.is_ref() {
                consts[atom.i.index()] = consts[atom.i.index()].max(c);
            }
            if !atom.j.is_ref() {
                consts[atom.j.index()] = consts[atom.j.index()].max(c);
            }
        }
        PtaExplorer {
            pta,
            clamp: consts.into_iter().map(|c| c + 1).collect(),
            lu: None,
        }
    }

    /// Switches tick clamping to the per-location LU tables. The caller
    /// must solve the tables with the same protected atoms passed as
    /// `extra_atoms` to [`PtaExplorer::new`], so property constants stay
    /// observable everywhere.
    #[must_use]
    pub fn with_lu(mut self, lu: PtaLu) -> Self {
        self.lu = Some(lu);
        self
    }

    /// The PTA under exploration.
    #[must_use]
    pub fn pta(&self) -> &Pta {
        self.pta
    }

    /// The initial state.
    #[must_use]
    pub fn initial_state(&self) -> PtaState {
        PtaState {
            locs: self.pta.automata.iter().map(|a| a.initial).collect(),
            store: self.pta.decls.initial_store(),
            clocks: vec![0; self.pta.dim],
        }
    }

    fn invariants_hold(&self, locs: &[usize], clocks: &[i64]) -> bool {
        self.pta.automata.iter().zip(locs).all(|(a, &l)| {
            a.locations[l].invariant.iter().all(|atom| {
                atom.bound
                    .satisfied_by(clocks[atom.i.index()] - clocks[atom.j.index()])
            })
        })
    }

    /// The unit-delay successor, if the invariants permit it.
    #[must_use]
    pub fn tick(&self, state: &PtaState) -> Option<PtaState> {
        let local = self.lu.as_ref().map(|lu| {
            let mut out = Vec::new();
            lu.clamp(&state.locs, &mut out);
            out
        });
        let clamp = local.as_deref().unwrap_or(&self.clamp);
        let ticked: Vec<i64> = state
            .clocks
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == 0 { 0 } else { (c + 1).min(clamp[i]) })
            .collect();
        self.invariants_hold(&state.locs, &ticked)
            .then(|| PtaState {
                locs: state.locs.clone(),
                store: state.store.clone(),
                clocks: ticked,
            })
    }

    fn edge_enabled(&self, state: &PtaState, e: &PtaEdge) -> bool {
        e.guard_data
            .eval_bool(&self.pta.decls, &state.store, &[])
            .unwrap_or(false)
            && e.guard_clocks.iter().all(|atom| {
                atom.bound
                    .satisfied_by(state.clocks[atom.i.index()] - state.clocks[atom.j.index()])
            })
    }

    /// Applies one branch of a component's edge.
    fn apply_branch(
        &self,
        state: &PtaState,
        component: usize,
        branch: &PtaBranch,
    ) -> Option<PtaState> {
        let mut next = state.clone();
        for (target, e) in &branch.assignments {
            let v = e.eval(&self.pta.decls, &next.store, &[]).ok()?;
            match target {
                AssignTarget::Var(id) => next.store.set_index(&self.pta.decls, *id, 0, v).ok()?,
                AssignTarget::ArrayElem(id, idx) => {
                    let i = idx.eval(&self.pta.decls, &next.store, &[]).ok()?;
                    next.store.set_index(&self.pta.decls, *id, i, v).ok()?;
                }
            }
        }
        for (clock, v) in &branch.resets {
            next.clocks[clock.index()] = (*v).min(self.clamp[clock.index()]);
        }
        next.locs[component] = branch.to;
        Some(next)
    }

    /// All action transitions enabled in the state (tick not included;
    /// see [`PtaExplorer::tick`]). Distributions violating a target
    /// invariant or failing an assignment lose that branch's mass and are
    /// dropped entirely if no branch survives.
    #[must_use]
    pub fn transitions(&self, state: &PtaState) -> Vec<PtaTransition> {
        let mut out = Vec::new();
        for (ai, a) in self.pta.automata.iter().enumerate() {
            for e in a.edges.iter().filter(|e| e.from == state.locs[ai]) {
                if !self.edge_enabled(state, e) {
                    continue;
                }
                match e.action {
                    None => {
                        if let Some(t) = self.single_transition(state, ai, e, "tau") {
                            out.push(t);
                        }
                    }
                    Some(act) => {
                        match self.pta.sync[act.0] {
                            SyncKind::Local => {
                                let label = self.pta.actions[act.0].clone();
                                if let Some(t) = self.single_transition(state, ai, e, &label) {
                                    out.push(t);
                                }
                            }
                            SyncKind::Pair(first, second) => {
                                // Fire from the first component's side only, to
                                // avoid duplicates.
                                if ai != first {
                                    continue;
                                }
                                let b = &self.pta.automata[second];
                                for f in b.edges.iter().filter(|f| {
                                    f.from == state.locs[second] && f.action == Some(act)
                                }) {
                                    if !self.edge_enabled(state, f) {
                                        continue;
                                    }
                                    if let Some(t) =
                                        self.paired_transition(state, (ai, e), (second, f), act)
                                    {
                                        out.push(t);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn single_transition(
        &self,
        state: &PtaState,
        component: usize,
        e: &PtaEdge,
        label: &str,
    ) -> Option<PtaTransition> {
        let total: u64 = e.branches.iter().map(|b| b.weight).sum();
        if total == 0 {
            return None;
        }
        let mut successors = Vec::new();
        for b in &e.branches {
            if b.weight == 0 {
                continue;
            }
            let next = self.apply_branch(state, component, b)?;
            if !self.invariants_hold(&next.locs, &next.clocks) {
                return None;
            }
            successors.push((b.weight as f64 / total as f64, next));
        }
        Some(PtaTransition {
            label: label.to_owned(),
            is_tick: false,
            successors,
        })
    }

    fn paired_transition(
        &self,
        state: &PtaState,
        (ai, e): (usize, &PtaEdge),
        (bi, f): (usize, &PtaEdge),
        act: ActionId,
    ) -> Option<PtaTransition> {
        let total_e: u64 = e.branches.iter().map(|b| b.weight).sum();
        let total_f: u64 = f.branches.iter().map(|b| b.weight).sum();
        if total_e == 0 || total_f == 0 {
            return None;
        }
        let mut successors = Vec::new();
        for be in &e.branches {
            if be.weight == 0 {
                continue;
            }
            for bf in &f.branches {
                if bf.weight == 0 {
                    continue;
                }
                let mid = self.apply_branch(state, ai, be)?;
                let next = self.apply_branch(&mid, bi, bf)?;
                if !self.invariants_hold(&next.locs, &next.clocks) {
                    return None;
                }
                let p = (be.weight as f64 / total_e as f64) * (bf.weight as f64 / total_f as f64);
                successors.push((p, next));
            }
        }
        Some(PtaTransition {
            label: self.pta.actions[act.0].clone(),
            is_tick: false,
            successors,
        })
    }

    /// Evaluates a [`StateFormula`] over a digital PTA state (the
    /// `At(automaton, location)` atom refers to component and location
    /// indices of the compiled PTA).
    #[must_use]
    pub fn satisfies(&self, state: &PtaState, f: &StateFormula) -> bool {
        match f {
            StateFormula::True => true,
            StateFormula::False => false,
            StateFormula::At(a, l) => state.locs[a.index()] == l.index(),
            StateFormula::Data(e) => e
                .eval_bool(&self.pta.decls, &state.store, &[])
                .unwrap_or(false),
            StateFormula::Clock(atom) => atom
                .bound
                .satisfied_by(state.clocks[atom.i.index()] - state.clocks[atom.j.index()]),
            StateFormula::Not(g) => !self.satisfies(state, g),
            StateFormula::And(gs) => gs.iter().all(|g| self.satisfies(state, g)),
            StateFormula::Or(gs) => gs.iter().any(|g| self.satisfies(state, g)),
        }
    }
}

/// Validates the synchronization structure: every action is used by at
/// most two components.
///
/// # Panics
///
/// Panics if an action appears in more than two components.
#[must_use]
pub fn compute_sync(actions: &[String], automata: &[PtaAutomaton]) -> Vec<SyncKind> {
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); actions.len()];
    for (ai, a) in automata.iter().enumerate() {
        for e in &a.edges {
            if let Some(act) = e.action {
                if !users[act.0].contains(&ai) {
                    users[act.0].push(ai);
                }
            }
        }
    }
    users
        .iter()
        .enumerate()
        .map(|(k, u)| match u.as_slice() {
            [] | [_] => SyncKind::Local,
            [a, b] => SyncKind::Pair(*a.min(b), *a.max(b)),
            _ => panic!(
                "action {} used by {} components; only 2-party synchronization is supported",
                actions[k],
                u.len()
            ),
        })
        .collect()
}
