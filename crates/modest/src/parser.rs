//! A parser for a MODEST concrete-syntax subset, sufficient for the
//! models of Bozga et al. (DATE 2012, §III) — in particular the Fig. 5
//! channel process parses verbatim:
//!
//! ```text
//! const TD = 1;
//! clock c;
//! action put, get;
//! process Channel() {
//!   put palt {
//!     :98: {= c = 0 =}; invariant(c <= TD) get
//!     : 2: {==}                 // message lost
//!   }; Channel()
//! }
//! system Channel();
//! ```
//!
//! Supported declarations: `const NAME = INT;`, `clock c;`,
//! `action a, b;`, `int [lo, hi] name (= init)?;`,
//! `int [lo, hi] name[len];`. Process bodies support `stop`, `skip`,
//! action prefixes with `{= assignments =}` blocks, `palt`, `alt`,
//! `when(...)`, `invariant(...)`, tail calls, and `;` sequencing;
//! `when`/`invariant` scope over the remainder of their sequence.
//! The composition is given by `system P() || Q() || ...;`.

use crate::ast::{ActionId, Assignment, ModestModel, PaltBranch, Process};
use std::collections::HashMap;
use std::fmt;
use tempo_dbm::Clock;
use tempo_expr::{BinOp, Expr, VarId};
use tempo_ta::ClockAtom;

/// A parse error with line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Error description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for tempo_obs::Diagnostic {
    fn from(e: ParseError) -> Self {
        tempo_obs::Diagnostic::error(
            "PARSE",
            None,
            format!("{}:{}: {}", e.line, e.col, e.message),
        )
    }
}

impl From<ParseError> for tempo_obs::LintError {
    fn from(e: ParseError) -> Self {
        tempo_obs::LintError {
            diagnostics: vec![e.into()],
        }
    }
}

/// Parses a MODEST model from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token.
pub fn parse_modest(source: &str) -> Result<ModestModel, ParseError> {
    let (tokens, eof) = lex(source)?;
    Parser::new(tokens, eof).model()
}

// --------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    // Punctuation / operators.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    AsgnOpen,  // {=
    AsgnClose, // =}
    Assign,    // =
    EqEq,
    Ne,
    Le,
    Lt,
    Ge,
    Gt,
    AndAnd,
    Not,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    ParPar, // ||  (also used as OrOr in expressions; disambiguated by context)
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(source: &str) -> Result<(Vec<Spanned>, (usize, usize)), ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let n = chars.len();
    macro_rules! push {
        ($t:expr, $len:expr) => {{
            out.push(Spanned { tok: $t, line, col });
            i += $len;
            col += $len;
        }};
    }
    while i < n {
        let c = chars[i];
        let c2 = chars.get(i + 1).copied().unwrap_or('\0');
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if c2 == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if c2 == '*' => {
                i += 2;
                col += 2;
                while i + 1 < n && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                i += 2;
                col += 2;
            }
            '{' if c2 == '=' => push!(Tok::AsgnOpen, 2),
            '=' if c2 == '}' => push!(Tok::AsgnClose, 2),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            ';' => push!(Tok::Semi, 1),
            ',' => push!(Tok::Comma, 1),
            ':' => push!(Tok::Colon, 1),
            '=' if c2 == '=' => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Assign, 1),
            '!' if c2 == '=' => push!(Tok::Ne, 2),
            '!' => push!(Tok::Not, 1),
            '<' if c2 == '=' => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if c2 == '=' => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '&' if c2 == '&' => push!(Tok::AndAnd, 2),
            '|' if c2 == '|' => push!(Tok::ParPar, 2),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '%' => push!(Tok::Percent, 1),
            '0'..='9' => {
                let start = i;
                while i < n && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text.parse().map_err(|_| ParseError {
                    message: format!("integer {text} out of range"),
                    line,
                    col,
                })?;
                out.push(Spanned {
                    tok: Tok::Int(value),
                    line,
                    col,
                });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    line,
                    col,
                });
                col += i - start;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    line,
                    col,
                })
            }
        }
    }
    Ok((out, (line, col)))
}

// --------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------

/// What a bare identifier resolves to.
#[derive(Debug, Clone, Copy)]
enum Symbol {
    Clock(Clock),
    Var(VarId),
    Action(ActionId),
    Const(i64),
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Position just past the last character of the source, for errors at
    /// end-of-input (always 1-based, even when the token stream is empty).
    eof: (usize, usize),
    model: ModestModel,
    symbols: HashMap<String, Symbol>,
}

impl Parser {
    fn new(tokens: Vec<Spanned>, eof: (usize, usize)) -> Self {
        Parser {
            tokens,
            pos: 0,
            eof,
            model: ModestModel::new(),
            symbols: HashMap::new(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .map_or(self.eof, |s| (s.line, s.col))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(v)
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                let v = self.expect_int(what)?;
                Ok(-v)
            }
            Some(Tok::Ident(name)) => match self.symbols.get(&name) {
                Some(Symbol::Const(v)) => {
                    let v = *v;
                    self.pos += 1;
                    Ok(v)
                }
                _ => Err(self.err(format!("expected {what}, found identifier {name}"))),
            },
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn model(mut self) -> Result<ModestModel, ParseError> {
        while let Some(tok) = self.peek().cloned() {
            match tok {
                Tok::Ident(kw) if kw == "const" => self.const_decl()?,
                Tok::Ident(kw) if kw == "clock" => self.clock_decl()?,
                Tok::Ident(kw) if kw == "action" => self.action_decl()?,
                Tok::Ident(kw) if kw == "int" => self.int_decl()?,
                Tok::Ident(kw) if kw == "process" => self.process_decl()?,
                Tok::Ident(kw) if kw == "system" => self.system_decl()?,
                other => return Err(self.err(format!("expected a declaration, found {other:?}"))),
            }
        }
        Ok(self.model)
    }

    fn const_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // const
        let name = self.expect_ident("constant name")?;
        self.expect(&Tok::Assign, "=")?;
        let value = self.expect_int("constant value")?;
        self.expect(&Tok::Semi, ";")?;
        self.symbols.insert(name, Symbol::Const(value));
        Ok(())
    }

    fn clock_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // clock
        loop {
            let name = self.expect_ident("clock name")?;
            let c = self.model.clock(&name);
            self.symbols.insert(name, Symbol::Clock(c));
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi, ";")
    }

    fn action_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // action
        loop {
            let name = self.expect_ident("action name")?;
            let a = self.model.action(&name);
            self.symbols.insert(name, Symbol::Action(a));
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi, ";")
    }

    fn int_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // int
        self.expect(&Tok::LBracket, "[")?;
        let lo = self.expect_int("lower bound")?;
        self.expect(&Tok::Comma, ",")?;
        let hi = self.expect_int("upper bound")?;
        self.expect(&Tok::RBracket, "]")?;
        let name = self.expect_ident("variable name")?;
        let id = if self.peek() == Some(&Tok::LBracket) {
            self.bump();
            let len = self.expect_int("array length")?;
            self.expect(&Tok::RBracket, "]")?;
            if len <= 0 {
                return Err(self.err("array length must be positive"));
            }
            self.model.decls_mut().array(&name, len as usize, lo, hi)
        } else if self.peek() == Some(&Tok::Assign) {
            self.bump();
            let init = self.expect_int("initial value")?;
            self.model.decls_mut().int_init(&name, lo, hi, init)
        } else {
            self.model.decls_mut().int(&name, lo, hi)
        };
        self.expect(&Tok::Semi, ";")?;
        self.symbols.insert(name, Symbol::Var(id));
        Ok(())
    }

    fn process_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // process
        let name = self.expect_ident("process name")?;
        self.expect(&Tok::LParen, "(")?;
        self.expect(&Tok::RParen, ")")?;
        self.expect(&Tok::LBrace, "{")?;
        let body = self.sequence()?;
        self.expect(&Tok::RBrace, "}")?;
        self.model.define(&name, body);
        Ok(())
    }

    fn system_decl(&mut self) -> Result<(), ParseError> {
        self.bump(); // system
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident("process name")?;
            if self.peek() == Some(&Tok::LParen) {
                self.bump();
                self.expect(&Tok::RParen, ")")?;
            }
            names.push(name);
            if self.peek() == Some(&Tok::ParPar) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi, ";")?;
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.model.system(&refs);
        Ok(())
    }

    /// A `;`-separated sequence of process atoms, folded right-to-left
    /// with [`Process::then`]. Ends at `}` or at a palt branch marker.
    fn sequence(&mut self) -> Result<Process, ParseError> {
        let mut atoms = vec![self.atom()?];
        while self.peek() == Some(&Tok::Semi) {
            self.bump();
            if self.at_sequence_end() {
                break;
            }
            atoms.push(self.atom()?);
        }
        let mut proc = atoms.pop().expect("at least one atom");
        while let Some(prev) = atoms.pop() {
            proc = prev.then(proc);
        }
        Ok(proc)
    }

    fn at_sequence_end(&self) -> bool {
        matches!(self.peek(), None | Some(Tok::RBrace | Tok::Colon))
    }

    /// One process atom.
    fn atom(&mut self) -> Result<Process, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(kw)) if kw == "stop" => {
                self.bump();
                Ok(Process::stop())
            }
            Some(Tok::Ident(kw)) if kw == "skip" => {
                self.bump();
                Ok(Process::skip())
            }
            Some(Tok::Ident(kw)) if kw == "alt" => {
                self.bump();
                self.expect(&Tok::LBrace, "{")?;
                let mut choices = Vec::new();
                // Each choice starts with `::`.
                while self.peek() == Some(&Tok::Colon) && self.peek2() == Some(&Tok::Colon) {
                    self.bump();
                    self.bump();
                    choices.push(self.sequence()?);
                }
                self.expect(&Tok::RBrace, "}")?;
                if choices.is_empty() {
                    return Err(self.err("alt requires at least one `::` choice"));
                }
                Ok(Process::alt(choices))
            }
            Some(Tok::Ident(kw)) if kw == "when" => {
                self.bump();
                self.expect(&Tok::LParen, "(")?;
                let (clock_atoms, data) = self.guard_expr()?;
                self.expect(&Tok::RParen, ")")?;
                let rest = self.sequence()?;
                let mut proc = rest;
                if let Some(e) = data {
                    proc = Process::when(e, proc);
                }
                for atom in clock_atoms.into_iter().rev() {
                    proc = Process::when_clock(atom, proc);
                }
                Ok(proc)
            }
            Some(Tok::Ident(kw)) if kw == "invariant" => {
                self.bump();
                self.expect(&Tok::LParen, "(")?;
                let (clock_atoms, data) = self.guard_expr()?;
                if data.is_some() {
                    return Err(self.err("invariants must be clock constraints"));
                }
                self.expect(&Tok::RParen, ")")?;
                let rest = self.sequence()?;
                Ok(Process::invariant(clock_atoms, rest))
            }
            Some(Tok::Ident(name)) => {
                // Call, action prefix or palt.
                match self.symbols.get(&name).copied() {
                    Some(Symbol::Action(a)) => {
                        self.bump();
                        if matches!(self.peek(), Some(Tok::Ident(kw)) if kw == "palt") {
                            self.bump();
                            self.expect(&Tok::LBrace, "{")?;
                            let mut branches = Vec::new();
                            while self.peek() == Some(&Tok::Colon) {
                                self.bump();
                                let weight = self.expect_int("branch weight")?;
                                if weight < 0 {
                                    return Err(self.err("weights must be non-negative"));
                                }
                                self.expect(&Tok::Colon, ":")?;
                                let assignments = if self.peek() == Some(&Tok::AsgnOpen) {
                                    self.assignments()?
                                } else {
                                    Vec::new()
                                };
                                let then = if self.peek() == Some(&Tok::Semi) {
                                    self.bump();
                                    if self.at_sequence_end() {
                                        Process::skip()
                                    } else {
                                        self.sequence()?
                                    }
                                } else {
                                    Process::skip()
                                };
                                branches.push(PaltBranch {
                                    weight: weight as u64,
                                    assignments,
                                    then,
                                });
                            }
                            self.expect(&Tok::RBrace, "}")?;
                            if branches.is_empty() {
                                return Err(self.err("palt requires at least one branch"));
                            }
                            Ok(Process::palt(a, branches))
                        } else {
                            let assignments = if self.peek() == Some(&Tok::AsgnOpen) {
                                self.assignments()?
                            } else {
                                Vec::new()
                            };
                            Ok(Process::act_with(a, assignments, Process::skip()))
                        }
                    }
                    _ => {
                        // Tail call `Name()`.
                        self.bump();
                        self.expect(&Tok::LParen, "( for a process call")?;
                        self.expect(&Tok::RParen, ")")?;
                        Ok(Process::call(&name))
                    }
                }
            }
            other => Err(self.err(format!("expected a process expression, found {other:?}"))),
        }
    }

    /// `{= asgn, asgn, ... =}` (possibly empty: `{==}`).
    fn assignments(&mut self) -> Result<Vec<Assignment>, ParseError> {
        self.expect(&Tok::AsgnOpen, "{=")?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::AsgnClose) {
            let name = self.expect_ident("assignment target")?;
            match self.symbols.get(&name).copied() {
                Some(Symbol::Clock(c)) => {
                    self.expect(&Tok::Assign, "=")?;
                    let v = self.expect_int("clock reset value")?;
                    out.push(Assignment::Clock(c, v));
                }
                Some(Symbol::Var(id)) => {
                    if self.peek() == Some(&Tok::LBracket) {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&Tok::RBracket, "]")?;
                        self.expect(&Tok::Assign, "=")?;
                        let value = self.expr()?;
                        out.push(Assignment::ArrayElem(id, index, value));
                    } else {
                        self.expect(&Tok::Assign, "=")?;
                        let value = self.expr()?;
                        out.push(Assignment::Var(id, value));
                    }
                }
                _ => return Err(self.err(format!("unknown assignment target {name}"))),
            }
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::AsgnClose, "=}")?;
        Ok(out)
    }

    /// A guard: a `&&`-conjunction whose clock-comparison conjuncts become
    /// [`ClockAtom`]s and whose data conjuncts become one [`Expr`].
    fn guard_expr(&mut self) -> Result<(Vec<ClockAtom>, Option<Expr>), ParseError> {
        let mut atoms = Vec::new();
        let mut data: Option<Expr> = None;
        loop {
            // Clock conjunct: IDENT(clock) cmp INT.
            let is_clock = matches!(
                (self.peek(), self.peek2()),
                (Some(Tok::Ident(name)), Some(Tok::Le | Tok::Lt | Tok::Ge | Tok::Gt | Tok::EqEq))
                    if matches!(self.symbols.get(name), Some(Symbol::Clock(_)))
            );
            if is_clock {
                let name = self.expect_ident("clock")?;
                let Some(Symbol::Clock(c)) = self.symbols.get(&name).copied() else {
                    unreachable!("checked above")
                };
                let op = self.bump().expect("comparison");
                let bound = self.expect_int("clock bound")?;
                match op {
                    Tok::Le => atoms.push(ClockAtom::le(c, bound)),
                    Tok::Lt => atoms.push(ClockAtom::lt(c, bound)),
                    Tok::Ge => atoms.push(ClockAtom::ge(c, bound)),
                    Tok::Gt => atoms.push(ClockAtom::gt(c, bound)),
                    Tok::EqEq => {
                        atoms.push(ClockAtom::ge(c, bound));
                        atoms.push(ClockAtom::le(c, bound));
                    }
                    _ => unreachable!("checked above"),
                }
            } else {
                let e = self.comparison()?;
                data = Some(match data {
                    Some(d) => d & e,
                    None => e,
                });
            }
            if self.peek() == Some(&Tok::AndAnd) {
                self.bump();
            } else {
                return Ok((atoms, data));
            }
        }
    }

    // Expression grammar: ||, &&, comparison, additive, multiplicative,
    // unary, primary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&Tok::ParPar) {
            self.bump();
            lhs = lhs | self.and_expr()?;
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.bump();
            lhs = lhs & self.comparison()?;
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::Ne) => BinOp::Ne,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Ge) => BinOp::Ge,
            Some(Tok::Gt) => BinOp::Gt,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(lhs.bin(op, rhs))
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    lhs = lhs + self.multiplicative()?;
                }
                Some(Tok::Minus) => {
                    self.bump();
                    lhs = lhs - self.multiplicative()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = lhs.bin(op, self.unary()?);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.bump();
                Ok(-self.unary()?)
            }
            Some(Tok::Not) => {
                self.bump();
                Ok(!self.unary()?)
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::konst(v))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match self.symbols.get(&name).copied() {
                Some(Symbol::Var(id)) => {
                    self.bump();
                    if self.peek() == Some(&Tok::LBracket) {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&Tok::RBracket, "]")?;
                        Ok(Expr::index(id, index))
                    } else {
                        Ok(Expr::var(id))
                    }
                }
                Some(Symbol::Const(v)) => {
                    self.bump();
                    Ok(Expr::konst(v))
                }
                _ => Err(self.err(format!("unknown variable {name}"))),
            },
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::mcpta::Mcpta;
    use tempo_ta::StateFormula;

    /// The paper's Fig. 5 channel, verbatim modulo declarations.
    const FIG5: &str = r"
        const TD = 1;
        clock c;
        action put, get;
        process Channel() {
          put palt {
            :98: {= c = 0 =}; invariant(c <= TD) get
            : 2: {==}                 // message lost
          }; Channel()
        }
        system Channel();
    ";

    #[test]
    fn fig5_parses_and_compiles() {
        let model = parse_modest(FIG5).expect("Fig. 5 parses");
        assert_eq!(model.actions().len(), 2);
        let pta = compile(&model);
        assert_eq!(pta.automata.len(), 1);
        let put_edge = pta.automata[0]
            .edges
            .iter()
            .find(|e| e.action.map(|a| a.0) == Some(0))
            .expect("put edge");
        assert_eq!(put_edge.branches.len(), 2);
        assert_eq!(put_edge.branches[0].weight, 98);
        assert_eq!(put_edge.branches[1].weight, 2);
        assert_eq!(
            put_edge.branches[1].to, pta.automata[0].initial,
            "lost → restart"
        );
    }

    #[test]
    fn parsed_coin_has_exact_probability() {
        let src = r"
            action toss;
            int [0, 1] heads;
            process Coin() {
              toss palt {
                :3: {= heads = 1 =}; stop
                :1: {==}; stop
              }
            }
            system Coin();
        ";
        let model = parse_modest(src).expect("parses");
        let pta = compile(&model);
        let mc = Mcpta::build(&pta, &[], 10_000);
        let heads = model.decls().lookup("heads").unwrap();
        let goal = StateFormula::data(Expr::var(heads).eq(Expr::konst(1)));
        assert!((mc.pmax(&goal) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn alt_when_and_calls() {
        let src = r"
            clock x;
            action go, reset;
            int [0, 5] n;
            process P() {
              alt {
                :: when(n < 5 && x >= 2) go {= n = n + 1, x = 0 =}; P()
                :: when(n >= 5) reset {= n = 0 =}; P()
              }
            }
            system P();
        ";
        let model = parse_modest(src).expect("parses");
        let pta = compile(&model);
        // Two edges out of the entry location.
        let entry = pta.automata[0].initial;
        let out = pta.automata[0]
            .edges
            .iter()
            .filter(|e| e.from == entry)
            .count();
        assert_eq!(out, 2);
        // The go edge carries both the clock guard and the data guard.
        let go = pta.automata[0]
            .edges
            .iter()
            .find(|e| e.action.map(|a| a.0) == Some(0))
            .unwrap();
        assert_eq!(go.guard_clocks.len(), 1);
        assert_ne!(go.guard_data, Expr::truth());
        assert_eq!(go.branches[0].resets, vec![(Clock(1), 0)]);
    }

    #[test]
    fn parallel_system_composition() {
        let src = r"
            action a;
            process P() { a; stop }
            process Q() { a; stop }
            system P() || Q();
        ";
        let model = parse_modest(src).expect("parses");
        assert_eq!(model.system_processes().len(), 2);
        let pta = compile(&model);
        assert!(matches!(pta.sync[0], crate::pta::SyncKind::Pair(0, 1)));
    }

    #[test]
    fn arrays_and_consts() {
        let src = r"
            const N = 3;
            action tick;
            int [0, 9] buf[4];
            int [0, 9] i;
            process P() {
              when(i < N) tick {= buf[i] = i * 2, i = i + 1 =}; P()
            }
            system P();
        ";
        let model = parse_modest(src).expect("parses");
        let pta = compile(&model);
        assert_eq!(pta.automata.len(), 1);
    }

    #[test]
    fn error_reporting_has_positions() {
        let err = parse_modest("process P() { ??? }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("parse error"));
        let err = parse_modest("action a;\nprocess P() { b; stop }\nsystem P();").unwrap_err();
        assert_eq!(err.line, 2, "unknown name b on line 2: {err}");
    }

    #[test]
    fn errors_at_end_of_input_point_past_the_last_token() {
        // Missing `;` after the declaration: the error sits at end of
        // input, one column past `a` — not the old (0, 0) placeholder.
        let err = parse_modest("action a").unwrap_err();
        assert_eq!((err.line, err.col), (1, 9), "{err}");
        // A trailing newline moves end-of-input to the next line.
        let err = parse_modest("action a,\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 1), "{err}");
    }

    #[test]
    fn parse_errors_convert_to_diagnostics() {
        let err = parse_modest("process P() { ??? }").unwrap_err();
        let diag: tempo_obs::Diagnostic = err.clone().into();
        assert_eq!(diag.severity, tempo_obs::Severity::Error);
        assert_eq!(diag.code, "PARSE");
        assert!(diag.message.contains(&format!("{}:{}", err.line, err.col)));
        let lint: tempo_obs::LintError = err.into();
        assert_eq!(lint.diagnostics.len(), 1);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "
            // line comment
            /* block
               comment */
            action a;
            process P() { a; stop }
            system P();
        ";
        assert!(parse_modest(src).is_ok());
    }
}
