//! `mcpta`: probabilistic model checking of MODEST PTA models via the
//! digital-clocks translation to an MDP, solved by the PRISM-like engine
//! in [`tempo_mdp`] (Bozga et al., DATE 2012, §III).

use crate::pta::{Pta, PtaExplorer, PtaLu, PtaReduction, PtaState};
use std::collections::{BTreeSet, HashMap};
use tempo_expr::VarId;
use tempo_mdp::{
    bounded_reachability, expected_reward, expected_reward_governed, reachability,
    reachability_governed, Mdp, MdpBuilder, Opt, StateId,
};
use tempo_obs::{Budget, Outcome, RunReport};
use tempo_ta::flow::FlowMetrics;
use tempo_ta::StateFormula;

/// The `mcpta` analyzer: explores the digital-clocks semantics of a PTA
/// once and answers `Pmax` / `Pmin` / `Emax` / `Emin` queries against the
/// resulting MDP.
///
/// Tick transitions carry reward `1`, so expected *rewards* are expected
/// *times* — exactly the `Emax` property of the paper's Table I.
#[derive(Debug)]
pub struct Mcpta {
    mdp: Mdp,
    /// Explored states, in the reduced clock space.
    states: Vec<PtaState>,
    /// The active-clock reduction applied before exploration; queries are
    /// mapped through it.
    reduction: PtaReduction,
    /// Protected property atoms, already mapped into the reduced space.
    extra_atoms: Vec<tempo_ta::ClockAtom>,
}

/// Exploration statistics of the digital-clocks MDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McptaStats {
    /// Number of MDP states.
    pub states: usize,
    /// Number of MDP actions.
    pub actions: usize,
    /// Number of probabilistic transitions.
    pub transitions: usize,
}

/// Build-time options for the digital-clocks MDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McptaConfig {
    /// Dirac tick-chain compression: a digital state whose only
    /// behaviour is the unit delay is a pure waiting point, and a run of
    /// such states collapses into one tick transition carrying the
    /// accumulated time as its reward. A waiting state is skipped only
    /// while its protected-atom truth vector matches the chain's start
    /// (locations and variables cannot change under tick), so every
    /// probability and expected time computed from the compressed MDP is
    /// identical — under the same contract [`Mcpta::build`] already
    /// imposes: `extra_atoms` covers every clock constraint later
    /// queries read.
    ///
    /// Off by default because *step*-bounded queries
    /// ([`Mcpta::pmax_bounded`]) count MDP steps, and compression
    /// changes how many steps a unit of time takes.
    pub compress_ticks: bool,
    /// Dataflow passes (on by default): query-directed slicing of
    /// provably dead edges and the per-location LU tick clamp. Both are
    /// exact for every probability and expected value — the switch
    /// exists for differential testing and measurement.
    pub flow: bool,
}

impl Default for McptaConfig {
    fn default() -> Self {
        McptaConfig {
            compress_ticks: false,
            flow: true,
        }
    }
}

impl Mcpta {
    /// Builds the digital-clocks MDP for the PTA. `extra_atoms` must
    /// cover every clock constraint used in later queries (so that the
    /// clock clamp keeps them observable).
    ///
    /// # Panics
    ///
    /// Panics if the PTA is not closed (strict bounds) or the state space
    /// exceeds `max_states`; [`Mcpta::try_build`] reports the latter
    /// gracefully.
    #[must_use]
    pub fn build(pta: &Pta, extra_atoms: &[tempo_ta::ClockAtom], max_states: usize) -> Self {
        Self::try_build(
            pta,
            extra_atoms,
            &Budget::unlimited().with_max_states(max_states as u64),
        )
        .into_value()
        .unwrap_or_else(|| panic!("digital-clocks MDP exceeds {max_states} states"))
    }

    /// Builds the digital-clocks MDP under a resource [`Budget`].
    ///
    /// A truncated MDP would silently distort every probability computed
    /// from it, so on exhaustion the partial answer is `None` — the
    /// report still records how far the exploration got.
    ///
    /// # Panics
    ///
    /// Panics if the PTA is not closed (strict bounds).
    pub fn try_build(
        pta: &Pta,
        extra_atoms: &[tempo_ta::ClockAtom],
        budget: &Budget,
    ) -> Outcome<Option<Self>> {
        Self::try_build_with(pta, extra_atoms, McptaConfig::default(), budget)
    }

    /// [`Mcpta::try_build`] with explicit build options (see
    /// [`McptaConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if the PTA is not closed (strict bounds).
    pub fn try_build_with(
        pta: &Pta,
        extra_atoms: &[tempo_ta::ClockAtom],
        config: McptaConfig,
        budget: &Budget,
    ) -> Outcome<Option<Self>> {
        Self::try_build_frozen(pta, extra_atoms, None, config, budget)
    }

    /// [`Mcpta::try_build_with`] with variable freezing: `freeze` lists
    /// every variable later queries read in `Data` atoms, and slicing
    /// may then remove assignments to write-only variables outside the
    /// cone of influence of all guards — merging digital states that
    /// differ only in values nothing observable depends on. The same
    /// caller contract as `extra_atoms`, extended to variables.
    ///
    /// # Panics
    ///
    /// Panics if the PTA is not closed (strict bounds).
    pub fn try_build_frozen(
        pta: &Pta,
        extra_atoms: &[tempo_ta::ClockAtom],
        freeze: Option<&BTreeSet<VarId>>,
        config: McptaConfig,
        budget: &Budget,
    ) -> Outcome<Option<Self>> {
        let gov = budget.governor();
        let mut metrics = FlowMetrics::default();
        // Query-directed slicing first: provably dead edges cannot carry
        // probability mass, and stranded pair partners die with them.
        let sliced = config.flow.then(|| crate::pta::slice(pta, freeze));
        let base: &Pta = sliced.as_ref().map_or(pta, |s| &s.pta);
        if let Some(s) = &sliced {
            metrics.sliced_edges = s.disabled_edges;
            metrics.vars_narrowed = s.vars_narrowed;
            metrics.sliced_vars = s.dead_vars.len() as u64;
        }
        // Active-clock reduction: clocks read by no guard, invariant or
        // protected atom cannot influence enabledness or branching, so
        // the reduced MDP has identical probabilities over smaller (and
        // fewer) states.
        let reduction = base.reduced_with(extra_atoms);
        if let Some(s) = &sliced {
            if s.disabled_edges > 0 {
                let plain = pta.reduced_with(extra_atoms).dim();
                metrics.sliced_clocks = (plain as u64).saturating_sub(reduction.dim() as u64);
            }
        }
        let extra_mapped: Vec<tempo_ta::ClockAtom> = extra_atoms
            .iter()
            .map(|a| {
                reduction
                    .map_atom(a)
                    .expect("protected atoms are kept alive by reduced_with")
            })
            .collect();
        let mut exp = PtaExplorer::new(reduction.pta(), &extra_mapped);
        if config.flow {
            // Per-location LU tick clamp: clamp-merged states share
            // locations, stores and the truth of every still-observable
            // clock constraint, so the quotient MDP is probabilistically
            // bisimilar to the globally-clamped one.
            let lu = PtaLu::analyze(reduction.pta(), &extra_mapped);
            metrics.lu_tightened = lu.tightened(&reduction.pta().max_constants());
            exp = exp.with_lu(lu);
        }
        let mut builder = MdpBuilder::new();
        let mut index: HashMap<PtaState, StateId> = HashMap::new();
        let mut states: Vec<PtaState> = Vec::new();
        let mut frontier: Vec<StateId> = Vec::new();
        let mut peak = 0_usize;
        let mut explored = 0_usize;
        let mut s0 = StateId(0);

        if gov.charge_state() {
            let init = exp.initial_state();
            s0 = builder.add_state();
            index.insert(init.clone(), s0);
            states.push(init);
            frontier.push(s0);
            peak = 1;
        }

        'build: while let Some(sid) = frontier.pop() {
            if !gov.check_time() {
                break;
            }
            explored += 1;
            let state = states[sid.index()].clone();
            // Action transitions (reward 0).
            for t in exp.transitions(&state) {
                let mut dist: Vec<(StateId, f64)> = Vec::with_capacity(t.successors.len());
                for (p, next) in &t.successors {
                    let Some(id) = intern(
                        &mut builder,
                        &mut index,
                        &mut states,
                        &mut frontier,
                        next,
                        &gov,
                    ) else {
                        break 'build;
                    };
                    dist.push((id, *p));
                }
                builder
                    .add_action(sid, Some(&t.label), 0.0, dist)
                    .expect("explorer produces valid distributions");
            }
            // Tick (reward 1 = one time unit).
            if let Some(mut next) = exp.tick(&state) {
                let mut waited = 1.0;
                if config.compress_ticks {
                    // Walk the Dirac chain: keep skipping `next` while it
                    // is a pure waiting point — no action transitions,
                    // and observationally identical to `state` (its
                    // protected-atom truth vector agrees; locations and
                    // variables cannot change under tick).
                    while atoms_agree(&extra_mapped, &state, &next)
                        && exp.transitions(&next).is_empty()
                    {
                        let Some(after) = exp.tick(&next) else { break };
                        if after == next {
                            // Every clock clamped: the tick fixpoint
                            // self-loop must stay a stored state.
                            break;
                        }
                        next = after;
                        waited += 1.0;
                    }
                }
                let Some(id) = intern(
                    &mut builder,
                    &mut index,
                    &mut states,
                    &mut frontier,
                    &next,
                    &gov,
                ) else {
                    break 'build;
                };
                builder
                    .add_action(sid, Some("tick"), waited, vec![(id, 1.0)])
                    .expect("tick distribution is valid");
            }
            peak = peak.max(frontier.len());
        }
        let report = metrics.stamp(RunReport {
            states_explored: explored as u64,
            states_stored: states.len() as u64,
            peak_waiting: peak as u64,
            dbm_dim: reduction.dim() as u64,
            dbm_dim_model: reduction.original_dim() as u64,
            wall_time: gov.elapsed(),
            ..RunReport::default()
        });
        if gov.is_exhausted() || states.is_empty() {
            return gov.finish(None, report);
        }
        gov.finish(
            Some(Mcpta {
                mdp: builder.build(s0).expect("initial state exists"),
                states,
                reduction,
                extra_atoms: extra_mapped,
            }),
            report,
        )
    }

    /// The active-clock reduction applied at build time (reduced and
    /// original clock-space dimensions, clock map).
    #[must_use]
    pub fn reduction(&self) -> &PtaReduction {
        &self.reduction
    }

    /// Statistics of the underlying MDP.
    #[must_use]
    pub fn stats(&self) -> McptaStats {
        McptaStats {
            states: self.mdp.num_states(),
            actions: self.mdp.num_actions(),
            transitions: self.mdp.num_transitions(),
        }
    }

    /// The underlying MDP (for ablation benchmarks).
    #[must_use]
    pub fn mdp(&self) -> &Mdp {
        &self.mdp
    }

    /// The per-MDP-state mask of a goal formula (for driving the raw
    /// [`tempo_mdp`] algorithms directly, e.g. interval iteration).
    #[must_use]
    pub fn goal_mask(&self, goal: &StateFormula) -> Vec<bool> {
        let goal = self.reduction.map_formula(goal).expect(
            "query reads a clock that was reduced away; list its atoms in `extra_atoms` at build time",
        );
        let exp = PtaExplorer::new(self.reduction.pta(), &self.extra_atoms);
        self.states
            .iter()
            .map(|s| exp.satisfies(s, &goal))
            .collect()
    }

    /// Maximum probability of eventually reaching `goal`.
    #[must_use]
    pub fn pmax(&self, goal: &StateFormula) -> f64 {
        reachability(&self.mdp, Opt::Max, &self.goal_mask(goal)).initial_value
    }

    /// `Pmax` under a resource [`Budget`] (see
    /// [`tempo_mdp::reachability_governed`] for the partial semantics).
    pub fn pmax_governed(&self, goal: &StateFormula, budget: &Budget) -> Outcome<f64> {
        reachability_governed(&self.mdp, Opt::Max, &self.goal_mask(goal), budget)
            .map(|q| q.initial_value)
    }

    /// `Pmin` under a resource [`Budget`].
    pub fn pmin_governed(&self, goal: &StateFormula, budget: &Budget) -> Outcome<f64> {
        reachability_governed(&self.mdp, Opt::Min, &self.goal_mask(goal), budget)
            .map(|q| q.initial_value)
    }

    /// Full quantitative reachability result — per-state values plus the
    /// memoryless scheduler realizing them — for certification: the
    /// scheduler induces a Markov chain whose reach probability can be
    /// recomputed independently of value iteration.
    pub fn reach_quantitative(
        &self,
        opt: Opt,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<tempo_mdp::Quantitative> {
        reachability_governed(&self.mdp, opt, &self.goal_mask(goal), budget)
    }

    /// `Emax` (expected time) under a resource [`Budget`].
    pub fn emax_time_governed(&self, goal: &StateFormula, budget: &Budget) -> Outcome<f64> {
        expected_reward_governed(&self.mdp, Opt::Max, &self.goal_mask(goal), budget)
            .map(|q| q.initial_value)
    }

    /// `Emin` (expected time) under a resource [`Budget`].
    pub fn emin_time_governed(&self, goal: &StateFormula, budget: &Budget) -> Outcome<f64> {
        expected_reward_governed(&self.mdp, Opt::Min, &self.goal_mask(goal), budget)
            .map(|q| q.initial_value)
    }

    /// Minimum probability of eventually reaching `goal`.
    #[must_use]
    pub fn pmin(&self, goal: &StateFormula) -> f64 {
        reachability(&self.mdp, Opt::Min, &self.goal_mask(goal)).initial_value
    }

    /// Maximum probability of reaching `goal` within `steps` MDP steps
    /// (note: steps, not time — use a clock in the model for time bounds).
    #[must_use]
    pub fn pmax_bounded(&self, goal: &StateFormula, steps: usize) -> f64 {
        bounded_reachability(&self.mdp, Opt::Max, &self.goal_mask(goal), steps).initial_value
    }

    /// Maximum expected time until `goal` (infinite if some scheduler can
    /// avoid it).
    #[must_use]
    pub fn emax_time(&self, goal: &StateFormula) -> f64 {
        expected_reward(&self.mdp, Opt::Max, &self.goal_mask(goal)).initial_value
    }

    /// Minimum expected time until `goal`.
    #[must_use]
    pub fn emin_time(&self, goal: &StateFormula) -> f64 {
        expected_reward(&self.mdp, Opt::Min, &self.goal_mask(goal)).initial_value
    }

    /// Whether `invariant` holds in every reachable state (used for the
    /// paper's TA1/TA2 rows: non-probabilistic invariants checked on the
    /// same MDP).
    #[must_use]
    pub fn check_invariant(&self, invariant: &StateFormula) -> bool {
        let invariant = self.reduction.map_formula(invariant).expect(
            "query reads a clock that was reduced away; list its atoms in `extra_atoms` at build time",
        );
        let exp = PtaExplorer::new(self.reduction.pta(), &self.extra_atoms);
        self.states.iter().all(|s| exp.satisfies(s, &invariant))
    }
}

/// Whether every protected atom has the same truth value in both states.
/// Along a tick chain this is the whole observable difference: locations
/// and variables are tick-invariant, and queries read clocks only
/// through protected atoms.
fn atoms_agree(atoms: &[tempo_ta::ClockAtom], a: &PtaState, b: &PtaState) -> bool {
    let sat = |s: &PtaState, atom: &tempo_ta::ClockAtom| {
        atom.bound
            .satisfied_by(s.clocks[atom.i.index()] - s.clocks[atom.j.index()])
    };
    atoms.iter().all(|atom| sat(a, atom) == sat(b, atom))
}

fn intern(
    builder: &mut MdpBuilder,
    index: &mut HashMap<PtaState, StateId>,
    states: &mut Vec<PtaState>,
    frontier: &mut Vec<StateId>,
    state: &PtaState,
    gov: &tempo_obs::Governor,
) -> Option<StateId> {
    if let Some(&id) = index.get(state) {
        return Some(id);
    }
    if !gov.charge_state() {
        return None;
    }
    let id = builder.add_state();
    index.insert(state.clone(), id);
    states.push(state.clone());
    frontier.push(id);
    Some(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActionId, Assignment, ModestModel, PaltBranch, Process};
    use crate::compile::compile;
    use tempo_expr::Expr;
    use tempo_ta::{AutomatonId, ClockAtom, LocationId};

    /// A retrying sender: each attempt succeeds with 0.75, fails with
    /// 0.25 and retries after 2 time units; at most 2 retries.
    fn retry_model() -> (Pta, tempo_expr::VarId) {
        let mut m = ModestModel::new();
        let x = m.clock("x");
        let send: ActionId = m.action("send");
        let ok = m.decls_mut().int("ok", 0, 1);
        let tries = m.decls_mut().int("tries", 0, 3);
        m.define(
            "Sender",
            Process::when(
                Expr::var(tries).lt(Expr::konst(3)),
                Process::when_clock(
                    ClockAtom::ge(x, 2),
                    Process::palt(
                        send,
                        vec![
                            PaltBranch {
                                weight: 3,
                                assignments: vec![Assignment::Var(ok, Expr::konst(1))],
                                then: Process::stop(),
                            },
                            PaltBranch {
                                weight: 1,
                                assignments: vec![
                                    Assignment::Var(tries, Expr::var(tries) + Expr::konst(1)),
                                    Assignment::Clock(x, 0),
                                ],
                                then: Process::call("Sender"),
                            },
                        ],
                    ),
                ),
            ),
        );
        m.system(&["Sender"]);
        (compile(&m), ok)
    }

    #[test]
    fn pmax_of_retry_protocol() {
        let (pta, ok) = retry_model();
        let mc = Mcpta::build(&pta, &[], 100_000);
        let goal = StateFormula::data(Expr::var(ok).eq(Expr::konst(1)));
        // Success prob = 1 - 0.25^3.
        let expected = 1.0 - 0.25_f64.powi(3);
        assert!((mc.pmax(&goal) - expected).abs() < 1e-9);
        assert!(
            (mc.pmin(&goal) - 0.0).abs() < 1e-9,
            "never sending is allowed"
        );
    }

    #[test]
    fn emin_time_counts_ticks() {
        let (pta, ok) = retry_model();
        let mc = Mcpta::build(&pta, &[], 100_000);
        let goal = StateFormula::data(Expr::var(ok).eq(Expr::konst(1)));
        // The fastest schedule sends at x = 2; expected time under the
        // *minimizing* scheduler: E = 2 + 0.25*(2 + 0.25*(2 + ...)); but
        // Emin is infinite-free only if Pmax = 1, which fails (the third
        // failure is terminal). So Emin must be infinite here.
        assert!(mc.emin_time(&goal).is_infinite());
    }

    #[test]
    fn location_goals_work() {
        // Single action a: L0 -> L1; Emax counts the forced waiting time 0
        // (tick competes, so max scheduler can stall... guarded by x <= 3
        // invariant to force progress).
        let mut m = ModestModel::new();
        let x = m.clock("x");
        let a = m.action("a");
        m.define(
            "P",
            Process::invariant(
                vec![ClockAtom::le(x, 3)],
                Process::when_clock(ClockAtom::ge(x, 1), Process::act(a, Process::stop())),
            ),
        );
        m.system(&["P"]);
        let pta = compile(&m);
        let mc = Mcpta::build(&pta, &[], 10_000);
        // Location 1 of component 0 is the post-a location.
        let goal = StateFormula::at(AutomatonId(0), LocationId(1));
        assert!((mc.pmax(&goal) - 1.0).abs() < 1e-9);
        assert!(
            (mc.pmin(&goal) - 1.0).abs() < 1e-9,
            "invariant forces the action"
        );
        let emax = mc.emax_time(&goal);
        assert!(
            (emax - 3.0).abs() < 1e-9,
            "wait until the invariant bound: {emax}"
        );
        let emin = mc.emin_time(&goal);
        assert!(
            (emin - 1.0).abs() < 1e-9,
            "move as soon as the guard allows: {emin}"
        );
    }

    #[test]
    fn tick_compression_preserves_values_on_fewer_states() {
        let (pta, ok) = retry_model();
        let goal = StateFormula::data(Expr::var(ok).eq(Expr::konst(1)));
        let full = Mcpta::build(&pta, &[], 100_000);
        let compressed = Mcpta::try_build_with(
            &pta,
            &[],
            McptaConfig {
                compress_ticks: true,
                ..McptaConfig::default()
            },
            &Budget::unlimited(),
        )
        .into_value()
        .expect("unlimited build completes");
        // The retry loop waits two ticks before every attempt; those
        // waiting points collapse.
        assert!(
            compressed.stats().states < full.stats().states,
            "compressed {} vs full {}",
            compressed.stats().states,
            full.stats().states
        );
        assert!((compressed.pmax(&goal) - full.pmax(&goal)).abs() < 1e-12);
        assert!((compressed.pmin(&goal) - full.pmin(&goal)).abs() < 1e-12);
        assert!(
            compressed.emin_time(&goal).is_infinite() && full.emin_time(&goal).is_infinite(),
            "the third failure is terminal either way"
        );
    }

    #[test]
    fn invariant_check_on_states() {
        let (pta, ok) = retry_model();
        let mc = Mcpta::build(&pta, &[], 100_000);
        let tries = pta.decls.lookup("tries").unwrap();
        assert!(mc.check_invariant(&StateFormula::data(Expr::var(tries).le(Expr::konst(3)))));
        assert!(!mc.check_invariant(&StateFormula::data(Expr::var(tries).le(Expr::konst(2)))));
        let _ = ok;
    }
}
