//! The MODEST-style process language: a compositional syntax for
//! stochastic timed automata (Bozga et al., DATE 2012, §III).
//!
//! Processes are built from action prefixing, probabilistic choice
//! (`palt`), nondeterministic choice (`alt`), guards (`when`), invariants
//! and tail recursion, and composed in parallel with CSP-style
//! synchronization on shared actions. The paper's Fig. 5 channel —
//!
//! ```text
//! process Channel() {
//!   clock c;
//!   put palt {
//!     :98: {= c = 0 =}; invariant(c <= TD) get
//!     : 2: {==}                 // message lost
//!   }; Channel()
//! }
//! ```
//!
//! — is expressed with [`Process::palt`] and [`Process::call`]; see
//! `tempo-models::brp` for the complete model.

use tempo_dbm::Clock;
use tempo_expr::{Decls, Expr, VarId};
use tempo_ta::ClockAtom;

/// Identifier of an action in a [`ModestModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub usize);

/// An atomic assignment inside an action's update block (`{= ... =}`).
#[derive(Debug, Clone, PartialEq)]
pub enum Assignment {
    /// `var := expr`.
    Var(VarId, Expr),
    /// `array[index] := expr`.
    ArrayElem(VarId, Expr, Expr),
    /// Clock reset `c := value`.
    Clock(Clock, i64),
}

/// One weighted branch of a `palt`.
#[derive(Debug, Clone, PartialEq)]
pub struct PaltBranch {
    /// Relative weight (`:98:` in the paper's Fig. 5).
    pub weight: u64,
    /// Assignments performed when this branch is taken.
    pub assignments: Vec<Assignment>,
    /// Continuation process.
    pub then: Process,
}

/// A MODEST process expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Process {
    /// Deadlock (`stop`).
    Stop,
    /// Successful termination (the unit of sequential composition).
    Skip,
    /// Action prefix `act {= assignments =}; continuation`.
    Act(ActionId, Vec<Assignment>, Box<Process>),
    /// Probabilistic choice `act palt { :w: {=..=}; P ... }`.
    Palt(ActionId, Vec<PaltBranch>),
    /// Nondeterministic choice `alt { :: P ... }`.
    Alt(Vec<Process>),
    /// Data guard `when(e) P`.
    When(Expr, Box<Process>),
    /// Clock guard `when(c ⋈ k) P`.
    WhenClock(ClockAtom, Box<Process>),
    /// `invariant(c ≤ k) P`: the constraint must hold while waiting to
    /// perform the initial action of `P`.
    Invariant(Vec<ClockAtom>, Box<Process>),
    /// Tail call of a named process.
    Call(String),
}

impl Process {
    /// `stop`.
    #[must_use]
    pub fn stop() -> Process {
        Process::Stop
    }

    /// Successful termination.
    #[must_use]
    pub fn skip() -> Process {
        Process::Skip
    }

    /// Action prefix without assignments.
    #[must_use]
    pub fn act(a: ActionId, then: Process) -> Process {
        Process::Act(a, Vec::new(), Box::new(then))
    }

    /// Action prefix with assignments.
    #[must_use]
    pub fn act_with(a: ActionId, assignments: Vec<Assignment>, then: Process) -> Process {
        Process::Act(a, assignments, Box::new(then))
    }

    /// Probabilistic choice on an action.
    #[must_use]
    pub fn palt(a: ActionId, branches: Vec<PaltBranch>) -> Process {
        Process::Palt(a, branches)
    }

    /// Nondeterministic choice.
    #[must_use]
    pub fn alt(choices: Vec<Process>) -> Process {
        Process::Alt(choices)
    }

    /// Data guard.
    #[must_use]
    pub fn when(e: Expr, p: Process) -> Process {
        Process::When(e, Box::new(p))
    }

    /// Clock guard.
    #[must_use]
    pub fn when_clock(atom: ClockAtom, p: Process) -> Process {
        Process::WhenClock(atom, Box::new(p))
    }

    /// Invariant scope.
    #[must_use]
    pub fn invariant(atoms: Vec<ClockAtom>, p: Process) -> Process {
        Process::Invariant(atoms, Box::new(p))
    }

    /// Tail call of a named process.
    #[must_use]
    pub fn call(name: &str) -> Process {
        Process::Call(name.to_owned())
    }

    /// Sequential composition `self ; q`, implemented by pushing `q` into
    /// the terminal positions of `self` (MODEST's `;`). Matches the
    /// paper's `...; Channel()` in Fig. 5.
    ///
    /// # Panics
    ///
    /// Panics if `self` contains a [`Process::Call`] in a terminal
    /// position — only *tail* calls are supported, so nothing may be
    /// sequenced after a call.
    #[must_use]
    pub fn then(self, q: Process) -> Process {
        match self {
            Process::Stop => Process::Stop,
            Process::Skip => q,
            Process::Act(a, asgn, p) => Process::Act(a, asgn, Box::new(p.then(q))),
            Process::Palt(a, branches) => Process::Palt(
                a,
                branches
                    .into_iter()
                    .map(|b| PaltBranch {
                        weight: b.weight,
                        assignments: b.assignments,
                        then: b.then.then(q.clone()),
                    })
                    .collect(),
            ),
            Process::Alt(ps) => Process::Alt(ps.into_iter().map(|p| p.then(q.clone())).collect()),
            Process::When(e, p) => Process::When(e, Box::new(p.then(q))),
            Process::WhenClock(c, p) => Process::WhenClock(c, Box::new(p.then(q))),
            Process::Invariant(i, p) => Process::Invariant(i, Box::new(p.then(q))),
            Process::Call(name) => {
                panic!(
                    "sequential composition after call of {name} (only tail calls are supported)"
                )
            }
        }
    }
}

/// A complete MODEST model: declarations, clocks, actions, process
/// definitions, and the parallel composition run as the system.
///
/// Actions shared by exactly two system processes synchronize CSP-style;
/// actions used by one process are local. (Multiway synchronization is
/// not needed by the paper's models and is rejected at compile time.)
#[derive(Debug, Clone, Default)]
pub struct ModestModel {
    pub(crate) decls: Decls,
    pub(crate) clock_names: Vec<String>,
    pub(crate) actions: Vec<String>,
    pub(crate) processes: Vec<(String, Process)>,
    pub(crate) system: Vec<String>,
}

impl ModestModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        ModestModel::default()
    }

    /// Access to the variable declarations.
    pub fn decls_mut(&mut self) -> &mut Decls {
        &mut self.decls
    }

    /// The variable declarations.
    #[must_use]
    pub fn decls(&self) -> &Decls {
        &self.decls
    }

    /// Declares a clock.
    pub fn clock(&mut self, name: &str) -> Clock {
        self.clock_names.push(name.to_owned());
        Clock(self.clock_names.len())
    }

    /// Number of clocks including the reference clock.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.clock_names.len() + 1
    }

    /// The declared clock names (index 0 is clock `x1`).
    #[must_use]
    pub fn clock_names(&self) -> &[String] {
        &self.clock_names
    }

    /// Declares an action.
    pub fn action(&mut self, name: &str) -> ActionId {
        self.actions.push(name.to_owned());
        ActionId(self.actions.len() - 1)
    }

    /// The action names.
    #[must_use]
    pub fn actions(&self) -> &[String] {
        &self.actions
    }

    /// Defines a named process.
    pub fn define(&mut self, name: &str, body: Process) {
        self.processes.push((name.to_owned(), body));
    }

    /// The process definitions, in declaration order.
    #[must_use]
    pub fn processes(&self) -> &[(String, Process)] {
        &self.processes
    }

    /// Looks up a process definition.
    #[must_use]
    pub fn process(&self, name: &str) -> Option<&Process> {
        self.processes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p)
    }

    /// Sets the system as the parallel composition of the named processes
    /// (each must be defined).
    pub fn system(&mut self, names: &[&str]) {
        self.system = names.iter().map(|&n| n.to_owned()).collect();
    }

    /// The system composition.
    #[must_use]
    pub fn system_processes(&self) -> &[String] {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_channel_shape() {
        // The paper's Fig. 5 communication channel with 2% message loss.
        let mut m = ModestModel::new();
        let c = m.clock("c");
        let put = m.action("put");
        let get = m.action("get");
        let td = 1;
        let body = Process::palt(
            put,
            vec![
                PaltBranch {
                    weight: 98,
                    assignments: vec![Assignment::Clock(c, 0)],
                    then: Process::invariant(
                        vec![ClockAtom::le(c, td)],
                        Process::act(get, Process::skip()),
                    ),
                },
                PaltBranch {
                    weight: 2,
                    assignments: vec![],
                    then: Process::skip(),
                },
            ],
        )
        .then(Process::call("Channel"));
        m.define("Channel", body.clone());
        m.system(&["Channel"]);
        // `; Channel()` distributed into both branches.
        if let Process::Palt(_, branches) = &body {
            assert!(matches!(
                &branches[1].then,
                Process::Call(name) if name == "Channel"
            ));
            assert!(matches!(&branches[0].then, Process::Invariant(_, _)));
        } else {
            panic!("expected palt at top level");
        }
        assert!(m.process("Channel").is_some());
        assert_eq!(m.system_processes(), &["Channel".to_owned()]);
    }

    #[test]
    fn then_distributes_over_alt() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let b = m.action("b");
        let p = Process::alt(vec![
            Process::act(a, Process::skip()),
            Process::act(b, Process::skip()),
        ])
        .then(Process::stop());
        if let Process::Alt(choices) = p {
            assert!(matches!(&choices[0], Process::Act(_, _, k) if **k == Process::Stop));
            assert!(matches!(&choices[1], Process::Act(_, _, k) if **k == Process::Stop));
        } else {
            panic!("expected alt");
        }
    }

    #[test]
    #[should_panic(expected = "tail calls")]
    fn non_tail_call_rejected() {
        let p = Process::call("P").then(Process::stop());
        let _ = p;
    }

    #[test]
    fn stop_absorbs_continuations() {
        let p = Process::stop().then(Process::skip());
        assert_eq!(p, Process::Stop);
    }
}
