//! Compilation of MODEST process expressions to probabilistic timed
//! automata (the formal semantics of MODEST is in terms of stochastic
//! timed automata; for the decidable PTA fragment used by `mcpta`, each
//! process becomes one component automaton).

use crate::ast::{Assignment, ModestModel, PaltBranch, Process};
use crate::pta::{compute_sync, AssignTarget, Pta, PtaAutomaton, PtaBranch, PtaEdge, PtaLocation};
use std::collections::HashMap;
use tempo_expr::Expr;
use tempo_ta::ClockAtom;

/// Compiles the model's system composition into a PTA network.
///
/// # Panics
///
/// Panics if a system process is undefined, a `Call` targets an unknown
/// process, or an action is shared by more than two system processes.
#[must_use]
pub fn compile(model: &ModestModel) -> Pta {
    let automata: Vec<PtaAutomaton> = model
        .system
        .iter()
        .map(|name| {
            let body = model
                .process(name)
                .unwrap_or_else(|| panic!("undefined system process {name}"));
            compile_process(model, name, body)
        })
        .collect();
    let sync = compute_sync(&model.actions, &automata);
    Pta {
        decls: model.decls.clone(),
        dim: model.dim(),
        actions: model.actions.clone(),
        automata,
        sync,
    }
}

struct Compiler<'m> {
    model: &'m ModestModel,
    locations: Vec<PtaLocation>,
    edges: Vec<PtaEdge>,
    /// Entry location of each called process (compiled on demand).
    process_entries: HashMap<String, usize>,
    /// Processes whose bodies still need compiling at their entry.
    pending: Vec<(String, usize)>,
}

/// The static context accumulated by `when` / `invariant` wrappers on the
/// path to an initial action.
#[derive(Clone, Default)]
struct Ctx {
    guard_clocks: Vec<ClockAtom>,
    guard_data: Option<Expr>,
    invariant: Vec<ClockAtom>,
}

fn compile_process(model: &ModestModel, name: &str, body: &Process) -> PtaAutomaton {
    let mut c = Compiler {
        model,
        locations: Vec::new(),
        edges: Vec::new(),
        process_entries: HashMap::new(),
        pending: Vec::new(),
    };
    let entry = c.fresh_location(&format!("{name}_0"));
    c.process_entries.insert(name.to_owned(), entry);
    c.compile_at(body, entry, Ctx::default());
    while let Some((pname, ploc)) = c.pending.pop() {
        let pbody = c
            .model
            .process(&pname)
            .unwrap_or_else(|| panic!("call of undefined process {pname}"))
            .clone();
        c.compile_at(&pbody, ploc, Ctx::default());
    }
    PtaAutomaton {
        name: name.to_owned(),
        locations: c.locations,
        edges: c.edges,
        initial: entry,
    }
}

impl Compiler<'_> {
    fn fresh_location(&mut self, name: &str) -> usize {
        self.locations.push(PtaLocation {
            name: name.to_owned(),
            invariant: Vec::new(),
        });
        self.locations.len() - 1
    }

    /// Resolves the entry location for a process call, scheduling its
    /// body for compilation if unseen.
    fn call_entry(&mut self, name: &str) -> usize {
        if let Some(&loc) = self.process_entries.get(name) {
            return loc;
        }
        let loc = self.fresh_location(&format!("{name}_0"));
        self.process_entries.insert(name.to_owned(), loc);
        self.pending.push((name.to_owned(), loc));
        loc
    }

    /// Compiles `p` so that its behaviour starts at the existing location
    /// `entry`. Terminal `Skip`s become a fresh terminal location.
    fn compile_at(&mut self, p: &Process, entry: usize, ctx: Ctx) {
        match p {
            Process::Stop | Process::Skip => {
                // No outgoing behaviour. (A Skip that matters has been
                // rewritten away by `Process::then`.)
                self.locations[entry].invariant.extend(ctx.invariant);
            }
            Process::Act(a, assignments, then) => {
                self.locations[entry]
                    .invariant
                    .extend(ctx.invariant.iter().copied());
                let target = self.continuation_target(then);
                let branch = PtaBranch {
                    weight: 1,
                    assignments: data_assignments(assignments),
                    resets: clock_resets(assignments),
                    to: target,
                };
                self.edges.push(PtaEdge {
                    from: entry,
                    guard_clocks: ctx.guard_clocks,
                    guard_data: ctx.guard_data.unwrap_or_else(Expr::truth),
                    action: Some(*a),
                    branches: vec![branch],
                });
            }
            Process::Palt(a, branches) => {
                self.locations[entry]
                    .invariant
                    .extend(ctx.invariant.iter().copied());
                let compiled: Vec<PtaBranch> = branches
                    .iter()
                    .map(|b: &PaltBranch| {
                        let target = self.continuation_target(&b.then);
                        PtaBranch {
                            weight: b.weight,
                            assignments: data_assignments(&b.assignments),
                            resets: clock_resets(&b.assignments),
                            to: target,
                        }
                    })
                    .collect();
                self.edges.push(PtaEdge {
                    from: entry,
                    guard_clocks: ctx.guard_clocks,
                    guard_data: ctx.guard_data.unwrap_or_else(Expr::truth),
                    action: Some(*a),
                    branches: compiled,
                });
            }
            Process::Alt(choices) => {
                for choice in choices {
                    self.compile_at(choice, entry, ctx.clone());
                }
            }
            Process::When(e, inner) => {
                let mut ctx = ctx;
                ctx.guard_data = Some(match ctx.guard_data.take() {
                    Some(g) => g & e.clone(),
                    None => e.clone(),
                });
                self.compile_at(inner, entry, ctx);
            }
            Process::WhenClock(atom, inner) => {
                let mut ctx = ctx;
                ctx.guard_clocks.push(*atom);
                self.compile_at(inner, entry, ctx);
            }
            Process::Invariant(atoms, inner) => {
                let mut ctx = ctx;
                ctx.invariant.extend(atoms.iter().copied());
                self.compile_at(inner, entry, ctx);
            }
            Process::Call(name) => {
                // A bare call in initial position: behave as the called
                // process from this entry. Compile the body directly at
                // `entry` (guards/invariants from the context apply to its
                // initial actions).
                let body = self
                    .model
                    .process(name)
                    .unwrap_or_else(|| panic!("call of undefined process {name}"))
                    .clone();
                self.compile_at(&body, entry, ctx);
            }
        }
    }

    /// The location where a continuation process starts: a shared entry
    /// for tail calls, a fresh location otherwise.
    fn continuation_target(&mut self, then: &Process) -> usize {
        match then {
            Process::Call(name) => self.call_entry(name),
            _ => {
                let loc = self.fresh_location(&format!("l{}", self.locations.len()));
                self.compile_at(then, loc, Ctx::default());
                loc
            }
        }
    }
}

fn data_assignments(assignments: &[Assignment]) -> Vec<(AssignTarget, Expr)> {
    assignments
        .iter()
        .filter_map(|a| match a {
            Assignment::Var(v, e) => Some((AssignTarget::Var(*v), e.clone())),
            Assignment::ArrayElem(v, i, e) => {
                Some((AssignTarget::ArrayElem(*v, i.clone()), e.clone()))
            }
            Assignment::Clock(_, _) => None,
        })
        .collect()
}

fn clock_resets(assignments: &[Assignment]) -> Vec<(tempo_dbm::Clock, i64)> {
    assignments
        .iter()
        .filter_map(|a| match a {
            Assignment::Clock(c, v) => Some((*c, *v)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pta::PtaExplorer;

    #[test]
    fn fig5_channel_compiles_to_three_locations() {
        // put palt { :98: {c:=0}; invariant(c<=1) get  :2: skip }; Channel()
        let mut m = ModestModel::new();
        let c = m.clock("c");
        let put = m.action("put");
        let get = m.action("get");
        let body = Process::palt(
            put,
            vec![
                PaltBranch {
                    weight: 98,
                    assignments: vec![Assignment::Clock(c, 0)],
                    then: Process::invariant(
                        vec![ClockAtom::le(c, 1)],
                        Process::act(get, Process::skip()),
                    ),
                },
                PaltBranch {
                    weight: 2,
                    assignments: vec![],
                    then: Process::skip(),
                },
            ],
        )
        .then(Process::call("Channel"));
        m.define("Channel", body);
        m.system(&["Channel"]);
        let pta = compile(&m);
        assert_eq!(pta.automata.len(), 1);
        let a = &pta.automata[0];
        // Continuations compile before their edge, so locate by action.
        let put_edge = a.edges.iter().find(|e| e.action == Some(put)).unwrap();
        assert_eq!(put_edge.branches.len(), 2);
        assert_eq!(put_edge.branches[1].to, a.initial, "lost → restart");
        let transit = put_edge.branches[0].to;
        assert_eq!(a.locations[transit].invariant, vec![ClockAtom::le(c, 1)]);
        // The get edge returns to the entry (tail call).
        let get_edge = a.edges.iter().find(|e| e.action == Some(get)).unwrap();
        assert_eq!(get_edge.branches[0].to, a.initial);
    }

    #[test]
    fn probabilities_normalize() {
        let mut m = ModestModel::new();
        let toss = m.action("toss");
        let heads = m.decls_mut().int("heads", 0, 1);
        m.define(
            "Coin",
            Process::palt(
                toss,
                vec![
                    PaltBranch {
                        weight: 1,
                        assignments: vec![Assignment::Var(heads, Expr::konst(1))],
                        then: Process::stop(),
                    },
                    PaltBranch {
                        weight: 3,
                        assignments: vec![],
                        then: Process::stop(),
                    },
                ],
            ),
        );
        m.system(&["Coin"]);
        let pta = compile(&m);
        let exp = PtaExplorer::new(&pta, &[]);
        let ts = exp.transitions(&exp.initial_state());
        assert_eq!(ts.len(), 1);
        let probs: Vec<f64> = ts[0].successors.iter().map(|(p, _)| *p).collect();
        assert!((probs[0] - 0.25).abs() < 1e-12);
        assert!((probs[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn paired_actions_synchronize() {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let done = m.decls_mut().int("done", 0, 2);
        m.define(
            "P",
            Process::act_with(
                a,
                vec![Assignment::Var(done, Expr::var(done) + Expr::konst(1))],
                Process::stop(),
            ),
        );
        m.define(
            "Q",
            Process::act_with(
                a,
                vec![Assignment::Var(done, Expr::var(done) + Expr::konst(1))],
                Process::stop(),
            ),
        );
        m.system(&["P", "Q"]);
        let pta = compile(&m);
        assert_eq!(pta.sync[a.0], crate::pta::SyncKind::Pair(0, 1));
        let exp = PtaExplorer::new(&pta, &[]);
        let ts = exp.transitions(&exp.initial_state());
        assert_eq!(ts.len(), 1, "one joint handshake");
        let (p, next) = &ts[0].successors[0];
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(next.store.get(done), 2, "both updates applied");
    }

    #[test]
    fn when_guards_apply() {
        let mut m = ModestModel::new();
        let go = m.action("go");
        let flag = m.decls_mut().int("flag", 0, 1);
        m.define(
            "P",
            Process::when(
                Expr::var(flag).eq(Expr::konst(1)),
                Process::act(go, Process::stop()),
            ),
        );
        m.system(&["P"]);
        let pta = compile(&m);
        let exp = PtaExplorer::new(&pta, &[]);
        assert!(
            exp.transitions(&exp.initial_state()).is_empty(),
            "flag == 0 blocks go"
        );
    }

    #[test]
    fn clock_guards_and_tick() {
        let mut m = ModestModel::new();
        let x = m.clock("x");
        let go = m.action("go");
        m.define(
            "P",
            Process::when_clock(ClockAtom::ge(x, 2), Process::act(go, Process::stop())),
        );
        m.system(&["P"]);
        let pta = compile(&m);
        let exp = PtaExplorer::new(&pta, &[]);
        let s0 = exp.initial_state();
        assert!(exp.transitions(&s0).is_empty());
        let s1 = exp.tick(&s0).unwrap();
        let s2 = exp.tick(&s1).unwrap();
        assert_eq!(exp.transitions(&s2).len(), 1);
    }
}
