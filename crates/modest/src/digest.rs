//! Stable structural fingerprints for compiled MODEST models (PTA
//! networks), keying the analysis service's verdict cache.
//!
//! Location, component and action *names* are excluded — only indices,
//! which are the identities edges and the synchronization table refer
//! to. Guard and invariant conjunctions fold commutatively; branch lists
//! stay ordered (branches are a weighted distribution whose targets are
//! positional).

use crate::ast::ActionId;
use crate::pta::{AssignTarget, Pta, PtaAutomaton, PtaBranch, PtaEdge, PtaLocation, SyncKind};
use tempo_obs::{Fingerprint, StableDigest, StableHasher};

impl StableDigest for AssignTarget {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            AssignTarget::Var(id) => {
                h.write_u8(0);
                id.digest(h);
            }
            AssignTarget::ArrayElem(id, idx) => {
                h.write_u8(1);
                id.digest(h);
                idx.digest(h);
            }
        }
    }
}

impl StableDigest for PtaBranch {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("branch");
        h.write_u64(self.weight);
        h.write_usize(self.assignments.len());
        for (target, e) in &self.assignments {
            target.digest(h);
            e.digest(h);
        }
        h.write_usize(self.resets.len());
        for (clock, v) in &self.resets {
            h.write_usize(clock.index());
            h.write_i64(*v);
        }
        h.write_usize(self.to);
    }
}

impl StableDigest for PtaEdge {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("pta-edge");
        h.write_usize(self.from);
        h.write_unordered(self.guard_clocks.iter().map(Fingerprint::of));
        self.guard_data.digest(h);
        self.action.map(|a: ActionId| a.0).digest(h);
        self.branches.digest(h);
    }
}

impl StableDigest for PtaLocation {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("pta-location");
        h.write_unordered(self.invariant.iter().map(Fingerprint::of));
    }
}

impl StableDigest for PtaAutomaton {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("pta-automaton");
        self.locations.digest(h);
        self.edges.digest(h);
        h.write_usize(self.initial);
    }
}

impl StableDigest for SyncKind {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            SyncKind::Local => h.write_u8(0),
            SyncKind::Pair(a, b) => {
                h.write_u8(1);
                h.write_usize(*a);
                h.write_usize(*b);
            }
        }
    }
}

impl StableDigest for Pta {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("pta");
        self.decls.digest(h);
        h.write_usize(self.dim);
        // Action names are labels; only their count and sync structure
        // are semantic.
        h.write_usize(self.actions.len());
        self.automata.digest(h);
        self.sync.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_expr::Decls;

    fn one_loc_pta(dim: usize) -> Pta {
        let automata = vec![PtaAutomaton {
            name: "P".to_owned(),
            locations: vec![PtaLocation {
                name: "l0".to_owned(),
                invariant: Vec::new(),
            }],
            edges: Vec::new(),
            initial: 0,
        }];
        Pta {
            decls: Decls::new(),
            dim,
            actions: Vec::new(),
            automata,
            sync: Vec::new(),
        }
    }

    #[test]
    fn fingerprint_tracks_structure_not_names() {
        let a = one_loc_pta(2);
        let mut b = one_loc_pta(2);
        b.automata[0].name = "Renamed".to_owned();
        b.automata[0].locations[0].name = "elsewhere".to_owned();
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&one_loc_pta(3)));
    }
}
