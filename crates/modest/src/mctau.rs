//! `mctau`: bridging MODEST and the UPPAAL substrate
//! (Bozga et al., DATE 2012, §III).
//!
//! Probabilistic decisions, which the timed-automata engine cannot
//! handle, are *over-approximated by nondeterministic decisions*: every
//! `palt` branch becomes a separate edge. Invariant (`A[]`) properties
//! checked on the over-approximation are exact when they hold;
//! probabilistic queries collapse to the trivial bounds `[0, 1]` unless
//! the goal is unreachable even nondeterministically, in which case the
//! probability is exactly `0` (the paper's Table I rows PA/PB vs
//! P1/P2/Dmax).

use crate::pta::{Pta, SyncKind};
use tempo_obs::{Budget, Outcome};
use tempo_ta::{ChannelKind, ModelChecker, Network, NetworkBuilder, StateFormula, Verdict};

/// Bounds `[lower, upper]` on a probability, as reported by `mctau`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityBounds {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
}

impl std::fmt::Display for ProbabilityBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lower == self.upper {
            write!(f, "{}", self.lower)
        } else {
            write!(f, "[{}, {}]", self.lower, self.upper)
        }
    }
}

/// The `mctau` analyzer: owns the over-approximating TA network.
#[derive(Debug)]
pub struct Mctau {
    net: Network,
}

impl Mctau {
    /// Builds the nondeterministic over-approximation of a PTA.
    ///
    /// Component and location indices are preserved, so
    /// [`StateFormula`] atoms written against the PTA work unchanged.
    #[must_use]
    pub fn new(pta: &Pta) -> Self {
        Mctau {
            net: over_approximate(pta),
        }
    }

    /// The exported UPPAAL-style network (the paper's "export to UPPAAL
    /// XML" becomes an in-memory network here).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Checks an invariant (`A[] f`) on the over-approximation. `true`
    /// is exact (more behaviours were checked than exist); `false` may be
    /// spurious for properties that depend on probabilities.
    #[must_use]
    pub fn check_invariant(&self, f: &StateFormula) -> bool {
        let mut mc = ModelChecker::new(&self.net);
        let (verdict, _) = mc.always(f);
        matches!(verdict, Verdict::Satisfied)
    }

    /// Invariant check under a resource [`Budget`], delegating to the
    /// governed timed-automata engine. A violation found within the
    /// budget is definitive; on exhaustion the partial `true` means "no
    /// violation found in the explored portion".
    pub fn check_invariant_governed(&self, f: &StateFormula, budget: &Budget) -> Outcome<bool> {
        let mut mc = ModelChecker::new(&self.net);
        mc.always_governed(f, budget)
            .map(|(verdict, _)| matches!(verdict, Verdict::Satisfied))
    }

    /// Bounds on `Pmax(◇ goal)`: exactly `0` if the goal is unreachable
    /// in the over-approximation, else the trivial `[0, 1]`.
    #[must_use]
    pub fn probability_bounds(&self, goal: &StateFormula) -> ProbabilityBounds {
        self.probability_bounds_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// Probability bounds under a resource [`Budget`]. The exact-zero
    /// answer requires a *complete* unreachability proof, so on
    /// exhaustion the partial answer stays at the trivial `[0, 1]`.
    pub fn probability_bounds_governed(
        &self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<ProbabilityBounds> {
        let mut mc = ModelChecker::new(&self.net);
        let out = mc.reachable_governed(goal, budget);
        let exhausted = out.is_exhausted();
        out.map(|res| {
            if res.reachable || exhausted {
                ProbabilityBounds {
                    lower: 0.0,
                    upper: 1.0,
                }
            } else {
                ProbabilityBounds {
                    lower: 0.0,
                    upper: 0.0,
                }
            }
        })
    }
}

/// Translates a PTA into a [`tempo_ta::Network`], dropping probabilities.
fn over_approximate(pta: &Pta) -> Network {
    let mut b = NetworkBuilder::new();
    *b.decls_mut() = pta.decls.clone();
    // Recreate the clocks (indices must match the PTA's).
    for i in 1..pta.dim {
        b.clock(&format!("x{i}"));
    }
    // One binary channel per paired action; local actions become internal.
    let channels: Vec<Option<tempo_ta::ChannelId>> = pta
        .actions
        .iter()
        .enumerate()
        .map(|(k, name)| match pta.sync[k] {
            SyncKind::Pair(_, _) => Some(b.channel_array(name, 1, ChannelKind::Binary, false)),
            SyncKind::Local => None,
        })
        .collect();
    for (ai, a) in pta.automata.iter().enumerate() {
        let mut ab = b.automaton(&a.name);
        let locs: Vec<tempo_ta::LocationId> = a
            .locations
            .iter()
            .map(|l| ab.location_with_invariant(&l.name, l.invariant.clone()))
            .collect();
        ab.set_initial(locs[a.initial]);
        for e in &a.edges {
            for branch in &e.branches {
                if branch.weight == 0 {
                    continue;
                }
                let mut eb = ab
                    .edge(locs[e.from], locs[branch.to])
                    .guard_data(e.guard_data.clone());
                for atom in &e.guard_clocks {
                    eb = eb.guard_clock(*atom);
                }
                for (clock, v) in &branch.resets {
                    eb = eb.reset(*clock, *v);
                }
                // Assignments become an update statement.
                let stmts: Vec<tempo_expr::Stmt> = branch
                    .assignments
                    .iter()
                    .map(|(target, expr)| match target {
                        crate::pta::AssignTarget::Var(v) => {
                            tempo_expr::Stmt::assign(*v, expr.clone())
                        }
                        crate::pta::AssignTarget::ArrayElem(v, i) => {
                            tempo_expr::Stmt::assign_index(*v, i.clone(), expr.clone())
                        }
                    })
                    .collect();
                eb = eb.update(tempo_expr::Stmt::seq(stmts));
                if let Some(act) = e.action {
                    if let Some(ch) = channels[act.0] {
                        // Direction: the first user sends.
                        let sends =
                            matches!(pta.sync[act.0], SyncKind::Pair(first, _) if first == ai);
                        eb = if sends { eb.send(ch) } else { eb.recv(ch) };
                    }
                }
                eb.done();
            }
        }
        ab.done();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Assignment, ModestModel, PaltBranch, Process};
    use crate::compile::compile;
    use tempo_expr::Expr;
    use tempo_ta::{AutomatonId, LocationId};

    fn lossy_pair() -> (Pta, tempo_expr::VarId) {
        let mut m = ModestModel::new();
        let a = m.action("a");
        let got = m.decls_mut().int("got", 0, 1);
        m.define(
            "P",
            Process::palt(
                a,
                vec![
                    PaltBranch {
                        weight: 99,
                        assignments: vec![],
                        then: Process::stop(),
                    },
                    PaltBranch {
                        weight: 1,
                        assignments: vec![Assignment::Var(got, Expr::konst(1))],
                        then: Process::stop(),
                    },
                ],
            ),
        );
        m.define("Q", Process::act(a, Process::stop()));
        m.system(&["P", "Q"]);
        (compile(&m), got)
    }

    #[test]
    fn reachable_rare_branch_gives_trivial_bounds() {
        let (pta, got) = lossy_pair();
        let mctau = Mctau::new(&pta);
        let rare = StateFormula::data(Expr::var(got).eq(Expr::konst(1)));
        let bounds = mctau.probability_bounds(&rare);
        assert_eq!((bounds.lower, bounds.upper), (0.0, 1.0));
        assert_eq!(bounds.to_string(), "[0, 1]");
    }

    #[test]
    fn unreachable_goal_gives_exact_zero() {
        let (pta, _) = lossy_pair();
        let mctau = Mctau::new(&pta);
        // P has locations {entry, post}; there is no third location.
        let impossible = StateFormula::and(vec![
            StateFormula::at(AutomatonId(0), LocationId(0)),
            StateFormula::at(AutomatonId(1), LocationId(1)),
        ]);
        // P and Q synchronize on `a`, so they move together: P at entry
        // while Q has moved is unreachable.
        let bounds = mctau.probability_bounds(&impossible);
        assert_eq!((bounds.lower, bounds.upper), (0.0, 0.0));
        assert_eq!(bounds.to_string(), "0");
    }

    #[test]
    fn invariants_check_exactly() {
        let (pta, got) = lossy_pair();
        let mctau = Mctau::new(&pta);
        assert!(mctau.check_invariant(&StateFormula::data(Expr::var(got).le(Expr::konst(1)))));
        assert!(!mctau.check_invariant(&StateFormula::data(Expr::var(got).eq(Expr::konst(0)))));
    }

    #[test]
    fn structure_is_preserved() {
        let (pta, _) = lossy_pair();
        let mctau = Mctau::new(&pta);
        let net = mctau.network();
        assert_eq!(net.automata().len(), 2);
        // P's palt with 2 branches becomes 2 nondeterministic edges.
        assert_eq!(net.automata()[0].edges.len(), 2);
        assert_eq!(net.dim(), pta.dim);
    }
}
