//! `modes`: discrete-event simulation of MODEST models
//! (Bozga et al., DATE 2012, §III). Nondeterminism — both in delays and
//! between enabled actions — is resolved by an explicit [`Scheduler`],
//! matching the paper's remark that "we explicitly specified a scheduler
//! to resolve nondeterminism"; probabilistic (`palt`) choices are
//! resolved by their weights.

use crate::pta::{Pta, PtaExplorer, PtaState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_obs::{Budget, Governor, Outcome, RunReport};
use tempo_ta::StateFormula;

/// [`RunReport`] for the simulator: only runs and wall time apply.
fn modes_report(gov: &Governor, completed: usize) -> RunReport {
    RunReport {
        runs_simulated: completed as u64,
        wall_time: gov.elapsed(),
        ..RunReport::default()
    }
}

/// How the simulator resolves scheduling nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Take enabled actions as soon as possible; tick only when no action
    /// is enabled.
    Asap,
    /// Delay as long as the invariants allow; act only when time is
    /// blocked (maximizes completion times — the scheduler used for the
    /// Emax row of Table I).
    Alap,
    /// Choose uniformly among ticking and each enabled action.
    Uniform,
}

/// One simulated run over the digital-clocks semantics.
#[derive(Debug, Clone)]
pub struct ModesRun {
    /// Visited states, starting with the initial state.
    pub states: Vec<PtaState>,
    /// Elapsed integer time at each visited state.
    pub times: Vec<i64>,
    /// Whether the run ended with no enabled move (deadlock/termination).
    pub stuck: bool,
}

impl ModesRun {
    /// Total elapsed time.
    #[must_use]
    pub fn duration(&self) -> i64 {
        self.times.last().copied().unwrap_or(0)
    }

    /// The earliest time at which `goal` holds, if observed.
    #[must_use]
    pub fn first_hit(&self, exp: &PtaExplorer<'_>, goal: &StateFormula) -> Option<i64> {
        self.states
            .iter()
            .zip(&self.times)
            .find(|(s, _)| exp.satisfies(s, goal))
            .map(|(_, &t)| t)
    }

    /// Whether `safe` holds in every visited state.
    #[must_use]
    pub fn globally(&self, exp: &PtaExplorer<'_>, safe: &StateFormula) -> bool {
        self.states.iter().all(|s| exp.satisfies(s, safe))
    }
}

/// Aggregate result of a `modes` experiment on a Bernoulli run property,
/// reported like the paper's Table I (`0 (no observations in 10k runs)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModesObservation {
    /// Number of runs satisfying the property.
    pub observations: usize,
    /// Total runs.
    pub runs: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl std::fmt::Display for ModesObservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.observations == 0 {
            write!(f, "0 (no observations in {} runs)", self.runs)
        } else if self.observations == self.runs {
            write!(f, "1 (all {} runs)", self.runs)
        } else {
            write!(f, "µ={:.1e}, σ={:.1e}", self.mean, self.std_dev)
        }
    }
}

/// The `modes` discrete-event simulator.
#[derive(Debug)]
pub struct Modes<'p> {
    exp: PtaExplorer<'p>,
    scheduler: Scheduler,
    rng: StdRng,
}

impl<'p> Modes<'p> {
    /// Creates a simulator with the given scheduler and seed.
    /// `extra_atoms` must cover property clock constants.
    #[must_use]
    pub fn new(
        pta: &'p Pta,
        extra_atoms: &[tempo_ta::ClockAtom],
        scheduler: Scheduler,
        seed: u64,
    ) -> Self {
        Modes {
            exp: PtaExplorer::new(pta, extra_atoms),
            scheduler,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The explorer (for evaluating properties over runs).
    #[must_use]
    pub fn explorer(&self) -> &PtaExplorer<'p> {
        &self.exp
    }

    /// Simulates one run until `time_bound` elapsed time, `max_steps`
    /// transitions, or no move is enabled.
    pub fn simulate(&mut self, time_bound: i64, max_steps: usize) -> ModesRun {
        let mut state = self.exp.initial_state();
        let mut time = 0_i64;
        let mut run = ModesRun {
            states: vec![state.clone()],
            times: vec![0],
            stuck: false,
        };
        for _ in 0..max_steps {
            if time >= time_bound {
                break;
            }
            let transitions = self.exp.transitions(&state);
            let tick = self.exp.tick(&state);
            let take_tick = match (self.scheduler, tick.is_some(), transitions.is_empty()) {
                (_, false, true) => {
                    run.stuck = true;
                    break;
                }
                (_, false, false) => false,
                (_, true, true) => true,
                (Scheduler::Asap, true, false) => false,
                (Scheduler::Alap, true, false) => true,
                (Scheduler::Uniform, true, false) => self.rng.gen_range(0..=transitions.len()) == 0,
            };
            if take_tick {
                state = tick.expect("tick checked above");
                time += 1;
            } else {
                let t = &transitions[self.rng.gen_range(0..transitions.len())];
                // Sample the probabilistic branch.
                let u: f64 = self.rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                let mut chosen = &t.successors[t.successors.len() - 1].1;
                for (p, next) in &t.successors {
                    acc += p;
                    if u < acc {
                        chosen = next;
                        break;
                    }
                }
                state = chosen.clone();
            }
            run.states.push(state.clone());
            run.times.push(time);
        }
        run
    }

    /// Runs a Bernoulli experiment: how many of `runs` simulations
    /// satisfy `property`?
    pub fn observe<F>(
        &mut self,
        runs: usize,
        time_bound: i64,
        max_steps: usize,
        property: F,
    ) -> ModesObservation
    where
        F: FnMut(&PtaExplorer<'p>, &ModesRun) -> bool,
    {
        self.observe_governed(runs, time_bound, max_steps, property, &Budget::unlimited())
            .into_value()
    }

    /// Bernoulli experiment under a resource [`Budget`]: on run-budget or
    /// deadline exhaustion the partial observation covers the runs that
    /// completed (its `runs` field is the completed count).
    pub fn observe_governed<F>(
        &mut self,
        runs: usize,
        time_bound: i64,
        max_steps: usize,
        mut property: F,
        budget: &Budget,
    ) -> Outcome<ModesObservation>
    where
        F: FnMut(&PtaExplorer<'p>, &ModesRun) -> bool,
    {
        let gov = budget.governor();
        let mut hits = 0_usize;
        let mut completed = 0_usize;
        for _ in 0..runs {
            if !gov.check_time() || !gov.charge_run() {
                break;
            }
            let run = self.simulate(time_bound, max_steps);
            completed += 1;
            if property(&self.exp, &run) {
                hits += 1;
            }
        }
        let mean = if completed == 0 {
            0.0
        } else {
            hits as f64 / completed as f64
        };
        let report = modes_report(&gov, completed);
        gov.finish(
            ModesObservation {
                observations: hits,
                runs: completed,
                mean,
                // Sample standard deviation of a Bernoulli observable.
                std_dev: (mean * (1.0 - mean)).sqrt(),
            },
            report,
        )
    }

    /// Estimates the mean and standard deviation of a run functional
    /// (e.g. completion time for the Emax row of Table I).
    pub fn expected<F>(
        &mut self,
        runs: usize,
        time_bound: i64,
        max_steps: usize,
        value: F,
    ) -> ModesObservation
    where
        F: FnMut(&PtaExplorer<'p>, &ModesRun) -> f64,
    {
        self.expected_governed(runs, time_bound, max_steps, value, &Budget::unlimited())
            .into_value()
    }

    /// Mean estimation under a resource [`Budget`]: on exhaustion the
    /// partial observation covers the completed runs (mean `0` when no
    /// run completed).
    pub fn expected_governed<F>(
        &mut self,
        runs: usize,
        time_bound: i64,
        max_steps: usize,
        mut value: F,
        budget: &Budget,
    ) -> Outcome<ModesObservation>
    where
        F: FnMut(&PtaExplorer<'p>, &ModesRun) -> f64,
    {
        let gov = budget.governor();
        let mut samples: Vec<f64> = Vec::with_capacity(runs.min(1024));
        for _ in 0..runs {
            if !gov.check_time() || !gov.charge_run() {
                break;
            }
            let run = self.simulate(time_bound, max_steps);
            samples.push(value(&self.exp, &run));
        }
        let n = samples.len() as f64;
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / n
        };
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let report = modes_report(&gov, samples.len());
        gov.finish(
            ModesObservation {
                observations: samples.len(),
                runs: samples.len(),
                mean,
                std_dev: var.sqrt(),
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Assignment, ModestModel, PaltBranch, Process};
    use crate::compile::compile;
    use tempo_expr::Expr;
    use tempo_ta::ClockAtom;

    fn coin_pta() -> (Pta, tempo_expr::VarId) {
        let mut m = ModestModel::new();
        let toss = m.action("toss");
        let heads = m.decls_mut().int("heads", 0, 1);
        m.define(
            "Coin",
            Process::palt(
                toss,
                vec![
                    PaltBranch {
                        weight: 1,
                        assignments: vec![Assignment::Var(heads, Expr::konst(1))],
                        then: Process::stop(),
                    },
                    PaltBranch {
                        weight: 1,
                        assignments: vec![],
                        then: Process::stop(),
                    },
                ],
            ),
        );
        m.system(&["Coin"]);
        (compile(&m), heads)
    }

    #[test]
    fn coin_flips_near_half() {
        let (pta, heads) = coin_pta();
        let mut modes = Modes::new(&pta, &[], Scheduler::Asap, 42);
        let goal = StateFormula::data(Expr::var(heads).eq(Expr::konst(1)));
        let obs = modes.observe(2000, 100, 100, |exp, run| {
            run.first_hit(exp, &goal).is_some()
        });
        assert!((obs.mean - 0.5).abs() < 0.05, "observed {obs}");
    }

    #[test]
    fn alap_scheduler_waits_out_invariants() {
        let mut m = ModestModel::new();
        let x = m.clock("x");
        let a = m.action("a");
        m.define(
            "P",
            Process::invariant(
                vec![ClockAtom::le(x, 5)],
                Process::when_clock(ClockAtom::ge(x, 1), Process::act(a, Process::stop())),
            ),
        );
        m.system(&["P"]);
        let pta = compile(&m);
        let goal = StateFormula::at(tempo_ta::AutomatonId(0), tempo_ta::LocationId(1));
        let mut alap = Modes::new(&pta, &[], Scheduler::Alap, 1);
        let obs = alap.expected(50, 100, 100, |exp, run| {
            run.first_hit(exp, &goal).unwrap_or(100) as f64
        });
        assert!(
            (obs.mean - 5.0).abs() < 1e-9,
            "ALAP hits at the invariant bound"
        );
        let mut asap = Modes::new(&pta, &[], Scheduler::Asap, 1);
        let obs = asap.expected(50, 100, 100, |exp, run| {
            run.first_hit(exp, &goal).unwrap_or(100) as f64
        });
        assert!((obs.mean - 1.0).abs() < 1e-9, "ASAP acts at the guard");
    }

    #[test]
    fn rare_events_unobserved() {
        // 0.1% branch: in 100 runs with a fixed seed we expect (almost
        // always) zero observations — the paper's Table I phenomenon.
        let mut m = ModestModel::new();
        let toss = m.action("toss");
        let rare = m.decls_mut().int("rare", 0, 1);
        m.define(
            "P",
            Process::palt(
                toss,
                vec![
                    PaltBranch {
                        weight: 1,
                        assignments: vec![Assignment::Var(rare, Expr::konst(1))],
                        then: Process::stop(),
                    },
                    PaltBranch {
                        weight: 9999,
                        assignments: vec![],
                        then: Process::stop(),
                    },
                ],
            ),
        );
        m.system(&["P"]);
        let pta = compile(&m);
        let goal = StateFormula::data(Expr::var(rare).eq(Expr::konst(1)));
        let mut modes = Modes::new(&pta, &[], Scheduler::Asap, 7);
        let obs = modes.observe(100, 10, 10, |exp, run| run.first_hit(exp, &goal).is_some());
        assert_eq!(obs.observations, 0);
        assert_eq!(obs.to_string(), "0 (no observations in 100 runs)");
    }

    #[test]
    fn time_bound_ends_runs() {
        // After the toss the process is Stop, but time can still pass, so
        // the run ends at the time bound rather than getting stuck.
        let (pta, _) = coin_pta();
        let mut modes = Modes::new(&pta, &[], Scheduler::Asap, 3);
        let run = modes.simulate(50, 1000);
        assert!(!run.stuck);
        assert_eq!(run.duration(), 50);
    }
}
