//! # tempo-modest — a MODEST-style single-formalism, multi-solution toolset
//!
//! This crate reproduces the MODEST approach of Bozga et al. (DATE 2012,
//! §III): one compositional modelling language for stochastic timed
//! systems, analysed by several backends:
//!
//! * [`Mctau`] — connects MODEST models to the UPPAAL substrate
//!   ([`tempo_ta`]) by over-approximating probabilistic choices with
//!   nondeterminism; fast model debugging, exact for invariants;
//! * [`Mcpta`] — exact probabilistic model checking of the PTA fragment
//!   via the digital-clocks translation to an MDP, solved by the
//!   PRISM-like engine in [`tempo_mdp`];
//! * [`Modes`] — discrete-event simulation with explicit schedulers for
//!   nondeterminism.
//!
//! Models are written in an AST mirroring MODEST's syntax ([`Process`],
//! [`ModestModel`]); [`compile`] translates the system composition into a
//! probabilistic timed automata network ([`Pta`]).
//!
//! ## Example: a biased coin, three ways
//!
//! ```
//! use tempo_modest::{ModestModel, Process, PaltBranch, Assignment, compile,
//!                    Mcpta, Mctau, Modes, Scheduler};
//! use tempo_expr::Expr;
//! use tempo_ta::StateFormula;
//!
//! let mut m = ModestModel::new();
//! let toss = m.action("toss");
//! let heads = m.decls_mut().int("heads", 0, 1);
//! m.define("Coin", Process::palt(toss, vec![
//!     PaltBranch { weight: 3, assignments: vec![Assignment::Var(heads, Expr::konst(1))],
//!                  then: Process::stop() },
//!     PaltBranch { weight: 1, assignments: vec![], then: Process::stop() },
//! ]));
//! m.system(&["Coin"]);
//! let pta = compile(&m);
//!
//! let goal = StateFormula::data(Expr::var(heads).eq(Expr::konst(1)));
//! // mctau: the goal is reachable, so only trivial bounds.
//! assert_eq!(Mctau::new(&pta).probability_bounds(&goal).upper, 1.0);
//! // mcpta: exact.
//! let mc = Mcpta::build(&pta, &[], 10_000);
//! assert!((mc.pmax(&goal) - 0.75).abs() < 1e-9);
//! // modes: statistical.
//! let mut sim = Modes::new(&pta, &[], Scheduler::Asap, 1);
//! let obs = sim.observe(500, 10, 10, |exp, run| run.first_hit(exp, &goal).is_some());
//! assert!((obs.mean - 0.75).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
mod digest;
mod mcpta;
mod mctau;
mod modes;
mod parser;
mod pta;

pub use ast::{ActionId, Assignment, ModestModel, PaltBranch, Process};
pub use compile::compile;
pub use mcpta::{Mcpta, McptaConfig, McptaStats};
pub use mctau::{Mctau, ProbabilityBounds};
pub use modes::{Modes, ModesObservation, ModesRun, Scheduler};
pub use parser::{parse_modest, ParseError};
pub use pta::{
    compute_sync, pta_ranges, slice, AssignTarget, Pta, PtaAutomaton, PtaBranch, PtaEdge,
    PtaExplorer, PtaLocation, PtaLu, PtaReduction, PtaSlice, PtaState, PtaTransition, SyncKind,
};
