//! Cross-semantics oracle: on randomly generated *closed* timed automata,
//! the symbolic (zone-based) engine and the digital-clocks explorer must
//! agree on location reachability — the digital semantics is exact for
//! closed models, so any disagreement is a bug in one of the engines.

use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};
use tempo_dbm::Clock;
use tempo_ta::{
    ClockAtom, DigitalExplorer, LocationId, ModelChecker, Network, NetworkBuilder, StateFormula,
};

const LOCS: usize = 4;

/// Specification of one random closed edge.
#[derive(Debug, Clone)]
struct EdgeSpec {
    from: usize,
    to: usize,
    lower: Option<i64>,
    upper: Option<i64>,
    reset: bool,
}

fn arb_edges() -> impl Strategy<Value = Vec<EdgeSpec>> {
    prop::collection::vec(
        (
            0..LOCS,
            0..LOCS,
            prop::option::of(0..4_i64),
            prop::option::of(0..6_i64),
            prop::bool::ANY,
        )
            .prop_map(|(from, to, lower, upper, reset)| EdgeSpec {
                from,
                to,
                lower,
                upper,
                reset,
            }),
        1..8,
    )
}

fn arb_invariants() -> impl Strategy<Value = Vec<Option<i64>>> {
    prop::collection::vec(prop::option::of(1..8_i64), LOCS)
}

fn build(edges: &[EdgeSpec], invariants: &[Option<i64>]) -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("A");
    let locs: Vec<LocationId> = (0..LOCS)
        .map(|i| match invariants[i] {
            Some(c) => a.location_with_invariant(&format!("L{i}"), vec![ClockAtom::le(x, c)]),
            None => a.location(&format!("L{i}")),
        })
        .collect();
    for e in edges {
        let mut eb = a.edge(locs[e.from], locs[e.to]);
        if let Some(lo) = e.lower {
            eb = eb.guard_clock(ClockAtom::ge(x, lo));
        }
        if let Some(hi) = e.upper {
            eb = eb.guard_clock(ClockAtom::le(x, hi));
        }
        if e.reset {
            eb = eb.reset(x, 0);
        }
        eb.done();
    }
    a.done();
    b.build()
}

/// Digital-clocks reachability of each location, by explicit BFS.
fn digital_reachable(net: &Network) -> Vec<bool> {
    let exp = DigitalExplorer::new(net);
    let mut reachable = vec![false; LOCS];
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    let init = exp.initial_state();
    seen.insert(init.clone());
    queue.push_back(init);
    while let Some(s) = queue.pop_front() {
        reachable[s.locs[0].index()] = true;
        if let Some(next) = exp.tick(&s) {
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
        for (_, next) in exp.moves(&s) {
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    reachable
}

fn clock_is_x(net: &Network) -> Clock {
    assert_eq!(net.dim(), 2);
    Clock(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symbolic_and_digital_location_reachability_agree(
        edges in arb_edges(),
        invariants in arb_invariants(),
    ) {
        let net = build(&edges, &invariants);
        let digital = digital_reachable(&net);
        let mut mc = ModelChecker::new(&net);
        for (loc, &dig) in digital.iter().enumerate() {
            let goal = StateFormula::at(tempo_ta::AutomatonId(0), LocationId(loc));
            let symbolic = mc.reachable(&goal).reachable;
            prop_assert_eq!(
                symbolic,
                dig,
                "location L{} disagreement (symbolic {}, digital {})",
                loc,
                symbolic,
                dig
            );
        }
    }

    #[test]
    fn symbolic_clock_bounds_agree_with_digital(
        edges in arb_edges(),
        invariants in arb_invariants(),
        bound in 0..6_i64,
    ) {
        // E<> (L_to ∧ x <= bound) must agree between engines.
        let net = build(&edges, &invariants);
        let x = clock_is_x(&net);
        let exp = DigitalExplorer::new(&net);
        let mut digital = [false; LOCS];
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        let init = exp.initial_state();
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some(s) = queue.pop_front() {
            if s.clocks[1] <= bound {
                digital[s.locs[0].index()] = true;
            }
            if let Some(next) = exp.tick(&s) {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
            for (_, next) in exp.moves(&s) {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        let mut mc = ModelChecker::new(&net);
        for (loc, &dig) in digital.iter().enumerate() {
            let goal = StateFormula::and(vec![
                StateFormula::at(tempo_ta::AutomatonId(0), LocationId(loc)),
                StateFormula::clock(ClockAtom::le(x, bound)),
            ]);
            let symbolic = mc.reachable(&goal).reachable;
            prop_assert_eq!(symbolic, dig, "L{} with x <= {}", loc, bound);
        }
    }

    #[test]
    fn deadlock_freedom_matches_digital_exploration(
        edges in arb_edges(),
        invariants in arb_invariants(),
    ) {
        // UPPAAL's deadlock: a valuation from which no action transition
        // is possible now or after any delay. Digitally: a state from
        // which the tick-chain (clocks clamp, so it is finite) never
        // reaches an enabled move.
        let net = build(&edges, &invariants);
        let exp = DigitalExplorer::new(&net);
        let is_dead = |start: &tempo_ta::DigitalState| -> bool {
            let mut cur = start.clone();
            loop {
                if !exp.moves(&cur).is_empty() {
                    return false;
                }
                match exp.tick(&cur) {
                    Some(next) if next != cur => cur = next,
                    _ => return true, // time blocked or clamped fixpoint
                }
            }
        };
        let mut digital_deadlock = false;
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        let init = exp.initial_state();
        seen.insert(init.clone());
        queue.push_back(init);
        while let Some(s) = queue.pop_front() {
            if is_dead(&s) {
                digital_deadlock = true;
                break;
            }
            if let Some(next) = exp.tick(&s) {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
            for (_, next) in exp.moves(&s) {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        let mut mc = ModelChecker::new(&net);
        let (verdict, _) = mc.deadlock_free();
        prop_assert_eq!(
            !verdict.holds(),
            digital_deadlock,
            "symbolic deadlock {} vs digital {}",
            !verdict.holds(),
            digital_deadlock
        );
    }
}
