//! State formulas: the atoms of UPPAAL's property language.
//!
//! A [`StateFormula`] is a boolean combination of location atoms
//! (`Train(0).Cross`), data constraints (`len == 0`) and clock constraints
//! (`x <= 10`). Satisfaction over a symbolic state is computed *exactly*
//! as the federation of satisfying valuations, so negation and clock
//! atoms are handled without approximation.

use crate::explore::SymState;
use crate::model::{AutomatonId, ClockAtom, LocationId, Network};
use tempo_dbm::{Dbm, Federation};
use tempo_expr::Expr;

/// A boolean state predicate over locations, data variables and clocks.
#[derive(Debug, Clone, PartialEq)]
pub enum StateFormula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Automaton `a` is at location `l`.
    At(AutomatonId, LocationId),
    /// A data predicate over the variable store (no clocks).
    Data(Expr),
    /// A clock constraint.
    Clock(ClockAtom),
    /// Negation.
    Not(Box<StateFormula>),
    /// Conjunction.
    And(Vec<StateFormula>),
    /// Disjunction.
    Or(Vec<StateFormula>),
}

impl StateFormula {
    /// `automaton.location` atom.
    #[must_use]
    pub fn at(a: AutomatonId, l: LocationId) -> Self {
        StateFormula::At(a, l)
    }

    /// Data predicate atom.
    #[must_use]
    pub fn data(e: Expr) -> Self {
        StateFormula::Data(e)
    }

    /// Clock constraint atom.
    #[must_use]
    pub fn clock(atom: ClockAtom) -> Self {
        StateFormula::Clock(atom)
    }

    /// Negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: StateFormula) -> Self {
        StateFormula::Not(Box::new(f))
    }

    /// Conjunction of a list of formulas.
    #[must_use]
    pub fn and(fs: Vec<StateFormula>) -> Self {
        StateFormula::And(fs)
    }

    /// Disjunction of a list of formulas.
    #[must_use]
    pub fn or(fs: Vec<StateFormula>) -> Self {
        StateFormula::Or(fs)
    }

    /// All clock atoms syntactically occurring in the formula (used to
    /// widen extrapolation constants so that property bounds stay exact).
    #[must_use]
    pub fn clock_atoms(&self) -> Vec<ClockAtom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<ClockAtom>) {
        match self {
            StateFormula::Clock(a) => out.push(*a),
            StateFormula::Not(f) => f.collect_atoms(out),
            StateFormula::And(fs) | StateFormula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
            _ => {}
        }
    }

    /// Whether the formula contains clock atoms (if not, satisfaction is
    /// uniform across a symbolic state's zone).
    #[must_use]
    pub fn is_discrete(&self) -> bool {
        self.clock_atoms().is_empty()
    }

    /// The federation of valuations of `state.zone` satisfying the
    /// formula. Exact (negation is computed by zone subtraction).
    #[must_use]
    pub fn sat_federation(&self, net: &Network, state: &SymState) -> Federation {
        let dim = state.zone.dim();
        let whole = || Federation::from_zones(dim, vec![state.zone.clone()]);
        match self {
            StateFormula::True => whole(),
            StateFormula::False => Federation::empty(dim),
            StateFormula::At(a, l) => {
                if state.locs[a.index()] == *l {
                    whole()
                } else {
                    Federation::empty(dim)
                }
            }
            StateFormula::Data(e) => {
                if e.eval_bool(net.decls(), &state.store, &[]).unwrap_or(false) {
                    whole()
                } else {
                    Federation::empty(dim)
                }
            }
            StateFormula::Clock(atom) => {
                let mut z = state.zone.clone();
                if z.constrain(atom.i, atom.j, atom.bound) {
                    Federation::from_zones(dim, vec![z])
                } else {
                    Federation::empty(dim)
                }
            }
            StateFormula::Not(f) => whole().subtract(&f.sat_federation(net, state)),
            StateFormula::And(fs) => {
                let mut acc = whole();
                for f in fs {
                    acc = acc.intersection(&f.sat_federation(net, state));
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
            StateFormula::Or(fs) => {
                let mut acc = Federation::empty(dim);
                for f in fs {
                    acc.union_with(&f.sat_federation(net, state));
                }
                acc
            }
        }
    }

    /// Whether some valuation of the state satisfies the formula.
    #[must_use]
    pub fn holds_somewhere(&self, net: &Network, state: &SymState) -> bool {
        !self.sat_federation(net, state).is_empty()
    }

    /// Whether every valuation of the state satisfies the formula.
    #[must_use]
    pub fn holds_everywhere(&self, net: &Network, state: &SymState) -> bool {
        StateFormula::not(self.clone())
            .sat_federation(net, state)
            .is_empty()
    }

    /// The subset of `state.zone` *not* satisfying the formula.
    #[must_use]
    pub fn violation_federation(&self, net: &Network, state: &SymState) -> Federation {
        StateFormula::not(self.clone()).sat_federation(net, state)
    }

    /// Convenience: restricts a zone to the satisfying subset, returning
    /// the pieces.
    #[must_use]
    pub fn restrict(&self, net: &Network, state: &SymState) -> Vec<Dbm> {
        self.sat_federation(net, state).zones().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkBuilder;
    use tempo_dbm::Clock;

    fn simple_net() -> (Network, AutomatonId, LocationId, Clock) {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let _v = b.decls_mut().int_init("v", 0, 9, 5);
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).done();
        let aid = a.done();
        (b.build(), aid, l0, x)
    }

    fn state(net: &Network) -> SymState {
        crate::explore::Explorer::new(net).initial_state()
    }

    #[test]
    fn location_and_data_atoms() {
        let (net, aid, l0, _) = simple_net();
        let s = state(&net);
        assert!(StateFormula::at(aid, l0).holds_everywhere(&net, &s));
        let v = net.decls().lookup("v").unwrap();
        assert!(StateFormula::data(Expr::var(v).eq(Expr::konst(5))).holds_somewhere(&net, &s));
        assert!(!StateFormula::data(Expr::var(v).eq(Expr::konst(4))).holds_somewhere(&net, &s));
    }

    #[test]
    fn clock_atoms_split_zones() {
        let (net, _, _, x) = simple_net();
        let s = state(&net); // zone: x >= 0 (delay-closed)
        let low = StateFormula::clock(ClockAtom::le(x, 5));
        assert!(low.holds_somewhere(&net, &s));
        assert!(!low.holds_everywhere(&net, &s));
        let neg = StateFormula::not(low);
        assert!(neg.holds_somewhere(&net, &s)); // x > 5 exists
    }

    #[test]
    fn boolean_combinations() {
        let (net, aid, l0, x) = simple_net();
        let s = state(&net);
        let f = StateFormula::and(vec![
            StateFormula::at(aid, l0),
            StateFormula::clock(ClockAtom::ge(x, 2)),
            StateFormula::clock(ClockAtom::le(x, 4)),
        ]);
        let fed = f.sat_federation(&net, &s);
        assert!(fed.contains(&[0, 3]));
        assert!(!fed.contains(&[0, 5]));
        let g = StateFormula::or(vec![
            StateFormula::clock(ClockAtom::le(x, 1)),
            StateFormula::clock(ClockAtom::ge(x, 9)),
        ]);
        let fed = g.sat_federation(&net, &s);
        assert!(fed.contains(&[0, 0]));
        assert!(fed.contains(&[0, 10]));
        assert!(!fed.contains(&[0, 5]));
    }

    #[test]
    fn formula_atom_collection() {
        let (_, aid, l0, x) = simple_net();
        let f = StateFormula::and(vec![
            StateFormula::at(aid, l0),
            StateFormula::not(StateFormula::clock(ClockAtom::le(x, 7))),
        ]);
        assert_eq!(f.clock_atoms().len(), 1);
        assert!(!f.is_discrete());
        assert!(StateFormula::at(aid, l0).is_discrete());
    }
}
