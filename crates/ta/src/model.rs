//! Networks of timed automata: the modelling layer of the UPPAAL substrate.
//!
//! A [`Network`] is a set of [`Automaton`] components communicating over
//! channels (binary or broadcast, optionally urgent) and sharing a pool of
//! clocks and bounded-integer variables, exactly as in UPPAAL's modelling
//! language (Bozga et al., DATE 2012, §II).

use tempo_dbm::{Bound, Clock};
use tempo_expr::{Decls, Expr, Stmt, VarId};

/// Identifier of a channel (or channel array) in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub usize);

impl ChannelId {
    /// Position in the network's channel table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an automaton within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AutomatonId(pub usize);

impl AutomatonId {
    /// Position in the network's automata list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a location within one automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocationId(pub usize);

impl LocationId {
    /// Position in the automaton's location list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Kind of a channel: binary handshake or broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Binary (CCS-style) synchronization between one sender and one
    /// receiver.
    Binary,
    /// Broadcast: one sender, all enabled receivers participate.
    Broadcast,
}

/// A channel (array) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Name for diagnostics and traces.
    pub name: String,
    /// Number of indexed instances (`1` for a scalar channel).
    pub size: usize,
    /// Binary or broadcast.
    pub kind: ChannelKind,
    /// Urgent channels forbid delay whenever a synchronization on them is
    /// enabled. Edges synchronizing on urgent channels must not carry
    /// clock guards (as in UPPAAL).
    pub urgent: bool,
}

/// Progress discipline of a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocationKind {
    /// Ordinary location: time may elapse subject to the invariant.
    #[default]
    Normal,
    /// Urgent location: no delay may elapse while any automaton is here.
    Urgent,
    /// Committed location: no delay, and the next transition must involve
    /// an automaton in a committed location.
    Committed,
}

/// A single clock constraint `xᵢ - xⱼ ≺ c` used in guards and invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockAtom {
    /// Left clock.
    pub i: Clock,
    /// Right clock (use [`Clock::REF`] for constraints against constants).
    pub j: Clock,
    /// The bound `≺ c`.
    pub bound: Bound,
}

impl ClockAtom {
    /// `x ≤ c`.
    #[must_use]
    pub fn le(x: Clock, c: i64) -> Self {
        ClockAtom {
            i: x,
            j: Clock::REF,
            bound: Bound::le(c),
        }
    }

    /// `x < c`.
    #[must_use]
    pub fn lt(x: Clock, c: i64) -> Self {
        ClockAtom {
            i: x,
            j: Clock::REF,
            bound: Bound::lt(c),
        }
    }

    /// `x ≥ c`.
    #[must_use]
    pub fn ge(x: Clock, c: i64) -> Self {
        ClockAtom {
            i: Clock::REF,
            j: x,
            bound: Bound::le(-c),
        }
    }

    /// `x > c`.
    #[must_use]
    pub fn gt(x: Clock, c: i64) -> Self {
        ClockAtom {
            i: Clock::REF,
            j: x,
            bound: Bound::lt(-c),
        }
    }

    /// `xᵢ - xⱼ ≺ c` with an explicit bound.
    #[must_use]
    pub fn diff(i: Clock, j: Clock, bound: Bound) -> Self {
        ClockAtom { i, j, bound }
    }

    /// The negation of this atom (`¬(xᵢ - xⱼ ≺ c)` = `xⱼ - xᵢ ≺' -c`).
    #[must_use]
    pub fn negated(self) -> Self {
        ClockAtom {
            i: self.j,
            j: self.i,
            bound: self.bound.negated().expect("guard atoms are finite"),
        }
    }
}

/// Direction of a channel synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncDir {
    /// Emit (`c!`).
    Send,
    /// Receive (`c?`).
    Recv,
}

/// A synchronization annotation on an edge: `chan[index]!` or
/// `chan[index]?`. The index expression may reference `select` bindings
/// and variables (e.g. `go[front()]!` in the paper's controller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sync {
    /// The channel (array).
    pub channel: ChannelId,
    /// The index into the channel array (constant `0` for scalars).
    pub index: Expr,
    /// Send or receive.
    pub dir: SyncDir,
}

/// An edge of a timed automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source location.
    pub from: LocationId,
    /// Target location.
    pub to: LocationId,
    /// `select` bindings: each entry is an inclusive range the bound value
    /// ranges over (UPPAAL's `e : id_t` selectors).
    pub selects: Vec<(i64, i64)>,
    /// Conjunction of clock constraints.
    pub guard_clocks: Vec<ClockAtom>,
    /// Data guard over variables and selects.
    pub guard_data: Expr,
    /// Optional channel synchronization.
    pub sync: Option<Sync>,
    /// Clock resets `x := e` (evaluated over the pre-state).
    pub resets: Vec<(Clock, Expr)>,
    /// Discrete update, executed after the partner's guard is checked.
    pub update: Stmt,
    /// Whether the edge belongs to the controller in a timed game
    /// (UPPAAL-TIGA solid edges). Ignored by plain model checking.
    pub controllable: bool,
}

/// A location of a timed automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// Name for diagnostics, traces and property atoms.
    pub name: String,
    /// Normal, urgent or committed.
    pub kind: LocationKind,
    /// Conjunction of clock constraints that must hold while the automaton
    /// is in this location.
    pub invariant: Vec<ClockAtom>,
}

/// One timed automaton of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct Automaton {
    /// Name for diagnostics.
    pub name: String,
    /// Locations; index `0` need not be initial.
    pub locations: Vec<Location>,
    /// Edges.
    pub edges: Vec<Edge>,
    /// Initial location.
    pub initial: LocationId,
}

impl Automaton {
    /// Looks up a location by name.
    #[must_use]
    pub fn location_by_name(&self, name: &str) -> Option<LocationId> {
        self.locations
            .iter()
            .position(|l| l.name == name)
            .map(LocationId)
    }
}

/// A network of timed automata sharing clocks, variables and channels.
///
/// Build networks with [`NetworkBuilder`]; the constructed model is
/// validated (channel arities, location indices, urgent-edge rules) at
/// build time.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    pub(crate) decls: Decls,
    pub(crate) clock_names: Vec<String>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) automata: Vec<Automaton>,
    pub(crate) id_vars: Vec<VarId>,
}

impl Network {
    /// The variable declarations of the network.
    #[must_use]
    pub fn decls(&self) -> &Decls {
        &self.decls
    }

    /// Number of clocks including the reference clock (the DBM dimension).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.clock_names.len() + 1
    }

    /// The channel table.
    #[must_use]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Variables declared (via [`NetworkBuilder::mark_id_var`]) to hold
    /// component identities — the scalarset contract that template-symmetry
    /// reduction builds its orbit permutations from.
    #[must_use]
    pub fn id_vars(&self) -> &[VarId] {
        &self.id_vars
    }

    /// The automata of the network.
    #[must_use]
    pub fn automata(&self) -> &[Automaton] {
        &self.automata
    }

    /// The automaton with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn automaton(&self, id: AutomatonId) -> &Automaton {
        &self.automata[id.0]
    }

    /// Looks up an automaton by name.
    #[must_use]
    pub fn automaton_by_name(&self, name: &str) -> Option<AutomatonId> {
        self.automata
            .iter()
            .position(|a| a.name == name)
            .map(AutomatonId)
    }

    /// Looks up a clock by its declared name.
    #[must_use]
    pub fn clock_by_name(&self, name: &str) -> Option<Clock> {
        self.clock_names
            .iter()
            .position(|n| n == name)
            .map(|i| Clock(i + 1))
    }

    /// The declared clock names (index 0 is clock `x1`).
    #[must_use]
    pub fn clock_names(&self) -> &[String] {
        &self.clock_names
    }

    /// Per-clock maximal constants for extrapolation, computed from all
    /// guards and invariants. Entry `0` (reference clock) is `0`.
    #[must_use]
    pub fn max_constants(&self) -> Vec<i64> {
        let mut m = vec![0_i64; self.dim()];
        let mut feed = |atom: &ClockAtom| {
            if atom.bound.is_inf() {
                return;
            }
            let c = atom.bound.constant().abs();
            if !atom.i.is_ref() {
                m[atom.i.index()] = m[atom.i.index()].max(c);
            }
            if !atom.j.is_ref() {
                m[atom.j.index()] = m[atom.j.index()].max(c);
            }
        };
        for a in &self.automata {
            for l in &a.locations {
                for atom in &l.invariant {
                    feed(atom);
                }
            }
            for e in &a.edges {
                for atom in &e.guard_clocks {
                    feed(atom);
                }
            }
        }
        m
    }

    /// The largest constant appearing in any guard or invariant.
    #[must_use]
    pub fn max_constant(&self) -> i64 {
        self.max_constants().into_iter().max().unwrap_or(0)
    }
}

/// Builder for [`Network`] models.
///
/// ```
/// use tempo_ta::{NetworkBuilder, ClockAtom};
/// use tempo_expr::Expr;
///
/// let mut b = NetworkBuilder::new();
/// let x = b.clock("x");
/// let mut t = b.automaton("Lamp");
/// let off = t.location("Off");
/// let on = t.location_with_invariant("On", vec![ClockAtom::le(x, 10)]);
/// t.set_initial(off);
/// t.edge(off, on).reset(x, 0).done();
/// t.edge(on, off).guard_clock(ClockAtom::ge(x, 2)).done();
/// t.done();
/// let net = b.build();
/// assert_eq!(net.dim(), 2);
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    decls: Decls,
    clock_names: Vec<String>,
    channels: Vec<Channel>,
    automata: Vec<Automaton>,
    id_vars: Vec<VarId>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Access to the variable declarations (to declare `int`s and arrays).
    pub fn decls_mut(&mut self) -> &mut Decls {
        &mut self.decls
    }

    /// Declares a fresh clock and returns its DBM index.
    pub fn clock(&mut self, name: &str) -> Clock {
        self.clock_names.push(name.to_owned());
        Clock(self.clock_names.len())
    }

    /// Declares a scalar binary channel.
    pub fn channel(&mut self, name: &str) -> ChannelId {
        self.channel_array(name, 1, ChannelKind::Binary, false)
    }

    /// Declares a scalar urgent binary channel.
    pub fn urgent_channel(&mut self, name: &str) -> ChannelId {
        self.channel_array(name, 1, ChannelKind::Binary, true)
    }

    /// Declares a scalar broadcast channel.
    pub fn broadcast_channel(&mut self, name: &str) -> ChannelId {
        self.channel_array(name, 1, ChannelKind::Broadcast, false)
    }

    /// Declares a channel array of the given size and kind.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn channel_array(
        &mut self,
        name: &str,
        size: usize,
        kind: ChannelKind,
        urgent: bool,
    ) -> ChannelId {
        assert!(size > 0, "channel array {name} must have size >= 1");
        self.channels.push(Channel {
            name: name.to_owned(),
            size,
            kind,
            urgent,
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Declares that a variable (scalar or array) holds *component
    /// identities*: every value it ever takes is either a replicated
    /// template's id or a neutral filler constant. This is UPPAAL's
    /// scalarset contract, stated explicitly by the modeller; symmetry
    /// reduction permutes the values of marked variables alongside the
    /// components themselves, and conservatively switches itself off
    /// when it sees an id flow anywhere it cannot track.
    pub fn mark_id_var(&mut self, var: VarId) {
        if !self.id_vars.contains(&var) {
            self.id_vars.push(var);
        }
    }

    /// Starts building an automaton. Call [`AutomatonBuilder::done`] to
    /// add it to the network.
    pub fn automaton(&mut self, name: &str) -> AutomatonBuilder<'_> {
        AutomatonBuilder {
            parent: self,
            automaton: Some(Automaton {
                name: name.to_owned(),
                locations: Vec::new(),
                edges: Vec::new(),
                initial: LocationId(0),
            }),
        }
    }

    /// Finalizes and validates the network.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an out-of-range location or channel,
    /// or if an urgent-channel edge or broadcast-receiver edge carries
    /// clock guards (both unsupported, as in UPPAAL).
    #[must_use]
    pub fn build(self) -> Network {
        let net = Network {
            decls: self.decls,
            clock_names: self.clock_names,
            channels: self.channels,
            automata: self.automata,
            id_vars: self.id_vars,
        };
        net.validate();
        net
    }
}

impl Network {
    fn validate(&self) {
        for a in &self.automata {
            assert!(
                a.initial.0 < a.locations.len(),
                "automaton {} has out-of-range initial location",
                a.name
            );
            for e in &a.edges {
                assert!(
                    e.from.0 < a.locations.len() && e.to.0 < a.locations.len(),
                    "automaton {} has an edge with out-of-range locations",
                    a.name
                );
                if let Some(sync) = &e.sync {
                    let ch = &self.channels[sync.channel.0];
                    if ch.urgent {
                        assert!(
                            e.guard_clocks.is_empty(),
                            "urgent channel {} used with clock guard in {}",
                            ch.name,
                            a.name
                        );
                    }
                    if ch.kind == ChannelKind::Broadcast && sync.dir == SyncDir::Recv {
                        assert!(
                            e.guard_clocks.is_empty(),
                            "broadcast receiver on {} with clock guard in {} \
                             (unsupported: receiver sets would split zones)",
                            ch.name,
                            a.name
                        );
                    }
                }
                for clock in e
                    .guard_clocks
                    .iter()
                    .flat_map(|atom| [atom.i, atom.j])
                    .chain(e.resets.iter().map(|(c, _)| *c))
                {
                    assert!(
                        clock.index() < self.dim(),
                        "automaton {} references undeclared clock {clock}",
                        a.name
                    );
                }
            }
        }
    }
}

/// Builder for one automaton; created by [`NetworkBuilder::automaton`].
///
/// The automaton is committed to the network either explicitly with
/// [`AutomatonBuilder::done`] (which returns its id) or implicitly when
/// the builder is dropped — a half-built automaton is never silently
/// discarded.
#[derive(Debug)]
pub struct AutomatonBuilder<'a> {
    parent: &'a mut NetworkBuilder,
    automaton: Option<Automaton>,
}

impl Drop for AutomatonBuilder<'_> {
    fn drop(&mut self) {
        if let Some(a) = self.automaton.take() {
            self.parent.automata.push(a);
        }
    }
}

impl AutomatonBuilder<'_> {
    fn automaton_mut(&mut self) -> &mut Automaton {
        self.automaton.as_mut().expect("present until done()")
    }
    /// Adds a normal location without invariant.
    pub fn location(&mut self, name: &str) -> LocationId {
        self.location_full(name, LocationKind::Normal, Vec::new())
    }

    /// Adds a normal location with an invariant.
    pub fn location_with_invariant(&mut self, name: &str, inv: Vec<ClockAtom>) -> LocationId {
        self.location_full(name, LocationKind::Normal, inv)
    }

    /// Adds an urgent location.
    pub fn urgent_location(&mut self, name: &str) -> LocationId {
        self.location_full(name, LocationKind::Urgent, Vec::new())
    }

    /// Adds a committed location.
    pub fn committed_location(&mut self, name: &str) -> LocationId {
        self.location_full(name, LocationKind::Committed, Vec::new())
    }

    /// Adds a location with explicit kind and invariant.
    pub fn location_full(
        &mut self,
        name: &str,
        kind: LocationKind,
        invariant: Vec<ClockAtom>,
    ) -> LocationId {
        let a = self.automaton_mut();
        a.locations.push(Location {
            name: name.to_owned(),
            kind,
            invariant,
        });
        LocationId(a.locations.len() - 1)
    }

    /// Sets the initial location (defaults to the first added location).
    pub fn set_initial(&mut self, loc: LocationId) {
        self.automaton_mut().initial = loc;
    }

    /// Starts building an edge from `from` to `to`.
    pub fn edge(&mut self, from: LocationId, to: LocationId) -> EdgeBuilder<'_> {
        EdgeBuilder {
            edges: &mut self.automaton_mut().edges,
            edge: Edge {
                from,
                to,
                selects: Vec::new(),
                guard_clocks: Vec::new(),
                guard_data: Expr::truth(),
                sync: None,
                resets: Vec::new(),
                update: Stmt::skip(),
                controllable: true,
            },
        }
    }

    /// Finalizes the automaton and adds it to the network builder,
    /// returning its id. (Dropping the builder without calling `done`
    /// also commits the automaton; `done` is only needed for the id.)
    pub fn done(mut self) -> AutomatonId {
        let a = self.automaton.take().expect("present until done()");
        self.parent.automata.push(a);
        AutomatonId(self.parent.automata.len() - 1)
    }
}

/// Builder for one edge; created by [`AutomatonBuilder::edge`]. Call
/// [`EdgeBuilder::done`] to commit the edge.
#[derive(Debug)]
pub struct EdgeBuilder<'a> {
    edges: &'a mut Vec<Edge>,
    edge: Edge,
}

impl EdgeBuilder<'_> {
    /// Adds a `select` binding over the inclusive range `[lo, hi]`; the
    /// `k`-th call binds [`Expr::select(k)`](tempo_expr::Expr::select).
    #[must_use]
    pub fn select(mut self, lo: i64, hi: i64) -> Self {
        self.edge.selects.push((lo, hi));
        self
    }

    /// Conjoins a clock constraint onto the guard.
    #[must_use]
    pub fn guard_clock(mut self, atom: ClockAtom) -> Self {
        self.edge.guard_clocks.push(atom);
        self
    }

    /// Conjoins a data guard (default `true`).
    #[must_use]
    pub fn guard_data(mut self, e: Expr) -> Self {
        self.edge.guard_data = if self.edge.guard_data == Expr::truth() {
            e
        } else {
            std::mem::replace(&mut self.edge.guard_data, Expr::truth()) & e
        };
        self
    }

    /// Emits on `channel[0]` (scalar channels).
    #[must_use]
    pub fn send(self, channel: ChannelId) -> Self {
        self.send_indexed(channel, Expr::konst(0))
    }

    /// Emits on `channel[index]`.
    #[must_use]
    pub fn send_indexed(mut self, channel: ChannelId, index: Expr) -> Self {
        self.edge.sync = Some(Sync {
            channel,
            index,
            dir: SyncDir::Send,
        });
        self
    }

    /// Receives on `channel[0]` (scalar channels).
    #[must_use]
    pub fn recv(self, channel: ChannelId) -> Self {
        self.recv_indexed(channel, Expr::konst(0))
    }

    /// Receives on `channel[index]`.
    #[must_use]
    pub fn recv_indexed(mut self, channel: ChannelId, index: Expr) -> Self {
        self.edge.sync = Some(Sync {
            channel,
            index,
            dir: SyncDir::Recv,
        });
        self
    }

    /// Resets a clock to a constant value.
    #[must_use]
    pub fn reset(mut self, clock: Clock, value: i64) -> Self {
        self.edge.resets.push((clock, Expr::konst(value)));
        self
    }

    /// Resets a clock to the value of an expression over the pre-state.
    #[must_use]
    pub fn reset_expr(mut self, clock: Clock, value: Expr) -> Self {
        self.edge.resets.push((clock, value));
        self
    }

    /// Sets the discrete update statement.
    #[must_use]
    pub fn update(mut self, stmt: Stmt) -> Self {
        self.edge.update = stmt;
        self
    }

    /// Marks the edge as uncontrollable (environment-owned) for timed
    /// games — the dashed edges of UPPAAL-TIGA (Fig. 2 of the paper).
    #[must_use]
    pub fn uncontrollable(mut self) -> Self {
        self.edge.controllable = false;
        self
    }

    /// Commits the edge to the automaton.
    pub fn done(self) {
        self.edges.push(self.edge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_network() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let c = b.channel("c");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location_with_invariant("L1", vec![ClockAtom::le(x, 5)]);
        a.set_initial(l0);
        a.edge(l0, l1).send(c).reset(x, 0).done();
        let a_id = a.done();
        let mut bb = b.automaton("B");
        let m0 = bb.location("M0");
        bb.edge(m0, m0).recv(c).done();
        bb.done();
        let net = b.build();
        assert_eq!(net.dim(), 2);
        assert_eq!(net.automata().len(), 2);
        assert_eq!(net.automaton(a_id).name, "A");
        assert_eq!(net.automaton_by_name("B"), Some(AutomatonId(1)));
        assert_eq!(
            net.automaton(a_id).location_by_name("L1"),
            Some(LocationId(1))
        );
        assert_eq!(net.max_constants(), vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "urgent channel")]
    fn urgent_channel_rejects_clock_guards() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let u = b.urgent_channel("u");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0)
            .recv(u)
            .guard_clock(ClockAtom::ge(x, 1))
            .done();
        a.done();
        let _ = b.build();
    }

    #[test]
    fn clock_atom_helpers() {
        let x = Clock(1);
        let ge = ClockAtom::ge(x, 3);
        assert_eq!(ge.i, Clock::REF);
        assert_eq!(ge.j, x);
        assert_eq!(ge.bound, Bound::le(-3));
        let neg = ClockAtom::le(x, 5).negated();
        // ¬(x ≤ 5) = x > 5 = 0 - x < -5
        assert_eq!(neg.i, Clock::REF);
        assert_eq!(neg.j, x);
        assert_eq!(neg.bound, Bound::lt(-5));
    }

    #[test]
    fn max_constants_cover_guards_and_invariants() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let y = b.clock("y");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 20)]);
        a.edge(l0, l0).guard_clock(ClockAtom::ge(y, 7)).done();
        a.done();
        let net = b.build();
        assert_eq!(net.max_constants(), vec![0, 20, 7]);
        assert_eq!(net.max_constant(), 20);
    }
}
