//! Deterministic byte codec for symbolic states, and the [`Spillable`]
//! implementation that lets them live in an out-of-core
//! [`tempo_obs::SpillStore`].
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! u32 n_locs   | n_locs  × u32 location index
//! u32 n_vals   | n_vals  × i64 store value
//! u32 dim      | dim×dim × i64 raw DBM bound (row-major)
//! ```
//!
//! The encoding is canonical — one state, one byte string — because
//! zones are stored in canonical DBM form and the raw bound packing is
//! injective. Decoding re-closes the DBM defensively (identity on
//! canonical input), so deserialized bytes never carry semantic
//! authority; any structural defect is reported as a typed error
//! string that the spill store turns into
//! [`tempo_conc::SpillError::Corrupt`].

use crate::explore::SymState;
use crate::model::LocationId;
use tempo_dbm::{Bound, Dbm};
use tempo_expr::Store;
use tempo_obs::Spillable;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a record payload with typed truncation errors.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(format!(
                "state record truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Serializes a symbolic state into its canonical record payload.
#[must_use]
pub fn encode_state(state: &SymState) -> Vec<u8> {
    let dim = state.zone.dim();
    let mut out = Vec::with_capacity(
        4 * 3 + 4 * state.locs.len() + 8 * (state.store.as_slice().len() + dim * dim),
    );
    put_u32(
        &mut out,
        u32::try_from(state.locs.len()).expect("loc count fits u32"),
    );
    for l in &state.locs {
        put_u32(
            &mut out,
            u32::try_from(l.index()).expect("location index fits u32"),
        );
    }
    let vals = state.store.as_slice();
    put_u32(
        &mut out,
        u32::try_from(vals.len()).expect("store size fits u32"),
    );
    for &v in vals {
        put_i64(&mut out, v);
    }
    put_u32(&mut out, u32::try_from(dim).expect("dim fits u32"));
    for b in state.zone.as_slice() {
        put_i64(&mut out, b.raw());
    }
    out
}

/// Deserializes a symbolic state from a record payload.
///
/// # Errors
///
/// A description of the malformation (truncation, trailing bytes,
/// oversized dimensions) when `bytes` is not a valid encoding.
pub fn decode_state(bytes: &[u8]) -> Result<SymState, String> {
    let mut cur = Cursor { bytes, pos: 0 };
    let n_locs = cur.u32()? as usize;
    let mut locs = Vec::with_capacity(n_locs.min(1 << 16));
    for _ in 0..n_locs {
        locs.push(LocationId(cur.u32()? as usize));
    }
    let n_vals = cur.u32()? as usize;
    let mut vals = Vec::with_capacity(n_vals.min(1 << 16));
    for _ in 0..n_vals {
        vals.push(cur.i64()?);
    }
    let dim = cur.u32()? as usize;
    if dim == 0 {
        return Err("state record has zero DBM dimension".to_owned());
    }
    let cells = dim
        .checked_mul(dim)
        .ok_or_else(|| format!("state record DBM dimension {dim} overflows"))?;
    let mut bounds = Vec::with_capacity(cells.min(1 << 20));
    for _ in 0..cells {
        bounds.push(Bound::from_raw(cur.i64()?));
    }
    if cur.pos != bytes.len() {
        return Err(format!(
            "state record has {} trailing bytes",
            bytes.len() - cur.pos
        ));
    }
    Ok(SymState {
        locs,
        store: Store::from_values(vals),
        zone: Dbm::from_bounds(dim, bounds),
    })
}

/// Resident summary of a spilled zone: the raw lower bounds (row 0,
/// `x0 - xi ≤ c`) and upper bounds (column 0, `xi - x0 ≤ c`) of every
/// clock. On canonical DBMs, `A ⊆ B` holds iff every entry of `A` is
/// at most the corresponding entry of `B`, so comparing these 2·dim
/// tracked cells is a sound necessary condition for the full
/// entrywise test — it can rule a subset relation out, never in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneSummary {
    /// Raw row-0 bounds (`x0 - xi`), indexed by clock.
    row0: Vec<i64>,
    /// Raw column-0 bounds (`xi - x0`), indexed by clock.
    col0: Vec<i64>,
}

impl ZoneSummary {
    /// Extracts the summary of a zone.
    #[must_use]
    pub fn of(zone: &Dbm) -> Self {
        let dim = zone.dim();
        ZoneSummary {
            row0: (0..dim).map(|i| zone.bound(0, i).raw()).collect(),
            col0: (0..dim).map(|i| zone.bound(i, 0).raw()).collect(),
        }
    }

    /// Necessary condition for `probe ⊆ summarized`: every tracked
    /// probe bound is at most the summarized bound.
    #[must_use]
    pub fn may_contain(&self, probe: &Dbm) -> bool {
        debug_assert_eq!(probe.dim(), self.row0.len());
        (0..probe.dim()).all(|i| {
            probe.bound(0, i).raw() <= self.row0[i] && probe.bound(i, 0).raw() <= self.col0[i]
        })
    }

    /// Necessary condition for `summarized ⊆ probe`: every tracked
    /// summarized bound is at most the probe bound.
    #[must_use]
    pub fn may_be_contained_in(&self, probe: &Dbm) -> bool {
        debug_assert_eq!(probe.dim(), self.row0.len());
        (0..probe.dim()).all(|i| {
            self.row0[i] <= probe.bound(0, i).raw() && self.col0[i] <= probe.bound(i, 0).raw()
        })
    }
}

impl Spillable for SymState {
    type Key = (Vec<LocationId>, Store);
    type Summary = ZoneSummary;

    fn key(&self) -> Self::Key {
        self.discrete()
    }

    fn summary(&self) -> ZoneSummary {
        ZoneSummary::of(&self.zone)
    }

    fn covered_by(&self, other: &Self) -> bool {
        self.zone.is_subset_of(&other.zone)
    }

    fn may_cover(stored: &ZoneSummary, state: &Self) -> bool {
        stored.may_contain(&state.zone)
    }

    fn may_be_covered(stored: &ZoneSummary, state: &Self) -> bool {
        stored.may_be_contained_in(&state.zone)
    }

    fn encode(&self) -> Vec<u8> {
        encode_state(self)
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        decode_state(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_dbm::Clock;

    fn sample_state() -> SymState {
        let mut zone = Dbm::zero(3);
        zone.up();
        zone.constrain(Clock(1), Clock::REF, Bound::le(5));
        zone.constrain(Clock(2), Clock(1), Bound::lt(2));
        SymState {
            locs: vec![LocationId(0), LocationId(3), LocationId(1)],
            store: Store::from_values(vec![7, -3, 0]),
            zone,
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let state = sample_state();
        let bytes = encode_state(&state);
        let back = decode_state(&bytes).expect("decode");
        assert_eq!(back.locs, state.locs);
        assert_eq!(back.store.as_slice(), state.store.as_slice());
        assert_eq!(back.zone, state.zone);
        // Canonical: same state, same bytes.
        assert_eq!(encode_state(&back), bytes);
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed_errors() {
        let state = sample_state();
        let bytes = encode_state(&state);
        for cut in [0, 1, 5, bytes.len() - 1] {
            let err = decode_state(&bytes[..cut]).expect_err("truncated must fail");
            assert!(err.contains("truncated"), "cut {cut}: {err}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        let err = decode_state(&padded).expect_err("trailing must fail");
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn summary_prefilter_is_sound() {
        let state = sample_state();
        let summary = ZoneSummary::of(&state.zone);
        // A zone is contained in itself: both prefilters must agree.
        assert!(summary.may_contain(&state.zone));
        assert!(summary.may_be_contained_in(&state.zone));
        // A strictly larger zone cannot be contained in the summarized
        // one, and the prefilter must see that from row-0/col-0 alone.
        let mut bigger = Dbm::universe(3);
        bigger.up();
        assert!(
            !summary.may_contain(&bigger),
            "x1 ≤ 5 rules the universe out"
        );
        assert!(summary.may_be_contained_in(&bigger));
    }
}
