//! UPPAAL's textual property language: "safety, liveness and
//! time-bounded liveness properties" (Bozga et al., DATE 2012, §II).
//!
//! Queries are parsed against a [`Network`] (names are resolved to
//! automata, locations, variables and clocks) and dispatched to the
//! symbolic engine:
//!
//! ```text
//! A[] forall-style safety        A[] not (Train0.Cross and Train1.Cross)
//! E<> reachability               E<> Gate.Occ and len > 0
//! leads-to                       Train0.Appr --> Train0.Cross
//! deadlock-freedom               A[] not deadlock
//! ```
//!
//! State predicates support `Automaton.Location` atoms, integer
//! comparisons over declared variables (including `arr[i]`), clock
//! comparisons (`x0 <= 10`), and `not` / `and` / `or` / parentheses
//! (symbolic `!`, `&&`, `||` also accepted).

use crate::formula::StateFormula;
use crate::liveness::leads_to_governed;
use crate::model::{ClockAtom, Network};
use crate::reach::{ModelChecker, Stats, Trace, Verdict};
use tempo_dbm::Clock;
use tempo_expr::{BinOp, Expr};
use tempo_obs::{Budget, Outcome};

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `A[] φ`.
    Always(StateFormula),
    /// `E<> φ`.
    Eventually(StateFormula),
    /// `φ --> ψ`.
    LeadsTo(StateFormula, StateFormula),
    /// `A[] not deadlock`.
    DeadlockFree,
}

/// The result of running a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Whether the property is satisfied.
    pub satisfied: bool,
    /// Witness (for satisfied `E<>`) or counterexample (for violated
    /// `A[]` / deadlock) trace.
    pub trace: Option<Trace>,
    /// Exploration statistics.
    pub stats: Stats,
}

/// An error raised while parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Description, including the offending fragment.
    pub message: String,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query error: {}", self.message)
    }
}

impl std::error::Error for QueryError {}

/// Parses a textual query against a network.
///
/// # Errors
///
/// Returns [`QueryError`] on syntax errors or unresolved names.
pub fn parse_query(net: &Network, text: &str) -> Result<Query, QueryError> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix("A[]") {
        let rest = rest.trim();
        if rest == "not deadlock" || rest == "!deadlock" {
            return Ok(Query::DeadlockFree);
        }
        return Ok(Query::Always(parse_formula(net, rest)?));
    }
    if let Some(rest) = text.strip_prefix("E<>") {
        return Ok(Query::Eventually(parse_formula(net, rest)?));
    }
    if let Some(pos) = text.find("-->") {
        let phi = parse_formula(net, &text[..pos])?;
        let psi = parse_formula(net, &text[pos + 3..])?;
        return Ok(Query::LeadsTo(phi, psi));
    }
    Err(QueryError {
        message: format!("expected A[] / E<> / --> query, got {text:?}"),
    })
}

/// Parses and immediately checks a query.
///
/// # Errors
///
/// Returns [`QueryError`] if the query does not parse.
pub fn check_query(net: &Network, text: &str) -> Result<QueryResult, QueryError> {
    check_query_governed(net, text, &Budget::unlimited()).map(Outcome::into_value)
}

/// Parses and checks a query under a resource [`Budget`].
///
/// With [`Budget::unlimited`] this is exactly [`check_query`]. On
/// exhaustion the partial [`QueryResult`] carries the weakest sound
/// reading for the query form: "goal not found so far" for `E<>`,
/// "no violation found so far" for `A[]` / `-->` / deadlock-freedom.
///
/// # Errors
///
/// Returns [`QueryError`] if the query does not parse.
pub fn check_query_governed(
    net: &Network,
    text: &str,
    budget: &Budget,
) -> Result<Outcome<QueryResult>, QueryError> {
    let query = parse_query(net, text)?;
    let mut mc = ModelChecker::new(net);
    let verdict_outcome = match query {
        Query::Always(f) => mc.always_governed(&f, budget),
        Query::Eventually(f) => {
            return Ok(mc.reachable_governed(&f, budget).map(|res| QueryResult {
                satisfied: res.reachable,
                trace: res.trace,
                stats: res.stats,
            }))
        }
        Query::LeadsTo(phi, psi) => leads_to_governed(net, &phi, &psi, budget),
        Query::DeadlockFree => mc.deadlock_free_governed(budget),
    };
    Ok(verdict_outcome.map(|(verdict, stats)| match verdict {
        Verdict::Satisfied => QueryResult {
            satisfied: true,
            trace: None,
            stats,
        },
        Verdict::Violated(t) => QueryResult {
            satisfied: false,
            trace: Some(t),
            stats,
        },
    }))
}

/// Parses a state formula against the network's names.
///
/// # Errors
///
/// Returns [`QueryError`] on syntax errors or unresolved names.
pub fn parse_formula(net: &Network, text: &str) -> Result<StateFormula, QueryError> {
    let tokens = tokenize(text)?;
    let mut p = FParser {
        net,
        tokens,
        pos: 0,
    };
    let f = p.or_formula()?;
    if p.pos != p.tokens.len() {
        return Err(QueryError {
            message: format!("trailing input starting at {:?}", p.tokens[p.pos]),
        });
    }
    Ok(f)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum T {
    Ident(String),
    Int(i64),
    Dot,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Le,
    Lt,
    Ge,
    Gt,
    EqEq,
    Ne,
    And,
    Or,
    Not,
    Plus,
    Minus,
    Star,
}

fn tokenize(text: &str) -> Result<Vec<T>, QueryError> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        let c2 = chars.get(i + 1).copied().unwrap_or('\0');
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '.' => {
                out.push(T::Dot);
                i += 1;
            }
            '(' => {
                out.push(T::LParen);
                i += 1;
            }
            ')' => {
                out.push(T::RParen);
                i += 1;
            }
            '[' => {
                out.push(T::LBracket);
                i += 1;
            }
            ']' => {
                out.push(T::RBracket);
                i += 1;
            }
            '<' if c2 == '=' => {
                out.push(T::Le);
                i += 2;
            }
            '<' => {
                out.push(T::Lt);
                i += 1;
            }
            '>' if c2 == '=' => {
                out.push(T::Ge);
                i += 2;
            }
            '>' => {
                out.push(T::Gt);
                i += 1;
            }
            '=' if c2 == '=' => {
                out.push(T::EqEq);
                i += 2;
            }
            '!' if c2 == '=' => {
                out.push(T::Ne);
                i += 2;
            }
            '!' => {
                out.push(T::Not);
                i += 1;
            }
            '&' if c2 == '&' => {
                out.push(T::And);
                i += 2;
            }
            '|' if c2 == '|' => {
                out.push(T::Or);
                i += 2;
            }
            '+' => {
                out.push(T::Plus);
                i += 1;
            }
            '-' => {
                out.push(T::Minus);
                i += 1;
            }
            '*' => {
                out.push(T::Star);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(T::Int(text.parse().map_err(|_| QueryError {
                    message: format!("integer {text} out of range"),
                })?));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.as_str() {
                    "and" => out.push(T::And),
                    "or" => out.push(T::Or),
                    "not" => out.push(T::Not),
                    _ => out.push(T::Ident(word)),
                }
            }
            other => {
                return Err(QueryError {
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct FParser<'n> {
    net: &'n Network,
    tokens: Vec<T>,
    pos: usize,
}

impl FParser<'_> {
    fn peek(&self) -> Option<&T> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &T) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError {
            message: msg.into(),
        }
    }

    fn or_formula(&mut self) -> Result<StateFormula, QueryError> {
        let mut parts = vec![self.and_formula()?];
        while self.eat(&T::Or) {
            parts.push(self.and_formula()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            StateFormula::or(parts)
        })
    }

    fn and_formula(&mut self) -> Result<StateFormula, QueryError> {
        let mut parts = vec![self.unary_formula()?];
        while self.eat(&T::And) {
            parts.push(self.unary_formula()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            StateFormula::and(parts)
        })
    }

    fn unary_formula(&mut self) -> Result<StateFormula, QueryError> {
        if self.eat(&T::Not) {
            return Ok(StateFormula::not(self.unary_formula()?));
        }
        if self.eat(&T::LParen) {
            let f = self.or_formula()?;
            if !self.eat(&T::RParen) {
                return Err(self.err("expected )"));
            }
            return Ok(f);
        }
        self.atom()
    }

    /// `Automaton.Location`, `clock cmp int`, or `expr cmp expr`.
    fn atom(&mut self) -> Result<StateFormula, QueryError> {
        // Location atom: Ident '.' Ident where the first resolves to an
        // automaton.
        if let (Some(T::Ident(a)), Some(T::Dot)) = (self.peek(), self.tokens.get(self.pos + 1)) {
            let a = a.clone();
            if let Some(aid) = self.net.automaton_by_name(&a) {
                self.pos += 2;
                let loc_name = match self.peek() {
                    Some(T::Ident(l)) => l.clone(),
                    other => return Err(self.err(format!("expected location, got {other:?}"))),
                };
                self.pos += 1;
                let lid = self
                    .net
                    .automaton(aid)
                    .location_by_name(&loc_name)
                    .ok_or_else(|| self.err(format!("automaton {a} has no location {loc_name}")))?;
                return Ok(StateFormula::at(aid, lid));
            }
        }
        // Clock atom: clock-name cmp int.
        if let Some(T::Ident(name)) = self.peek() {
            if let Some(clock) = self.net.clock_by_name(name) {
                self.pos += 1;
                let op = self.bump_cmp()?;
                let c = self.int_operand()?;
                return Ok(clock_formula(clock, &op, c));
            }
        }
        // Data comparison.
        let lhs = self.additive()?;
        let op = self.bump_cmp()?;
        let rhs = self.additive()?;
        let bin = match op {
            T::Le => BinOp::Le,
            T::Lt => BinOp::Lt,
            T::Ge => BinOp::Ge,
            T::Gt => BinOp::Gt,
            T::EqEq => BinOp::Eq,
            T::Ne => BinOp::Ne,
            _ => return Err(self.err("expected a comparison")),
        };
        Ok(StateFormula::data(lhs.bin(bin, rhs)))
    }

    fn bump_cmp(&mut self) -> Result<T, QueryError> {
        match self.peek().cloned() {
            Some(t @ (T::Le | T::Lt | T::Ge | T::Gt | T::EqEq | T::Ne)) => {
                self.pos += 1;
                Ok(t)
            }
            other => Err(self.err(format!("expected a comparison, got {other:?}"))),
        }
    }

    fn int_operand(&mut self) -> Result<i64, QueryError> {
        let neg = self.eat(&T::Minus);
        match self.peek().cloned() {
            Some(T::Int(v)) => {
                self.pos += 1;
                Ok(if neg { -v } else { v })
            }
            other => Err(self.err(format!("expected an integer bound, got {other:?}"))),
        }
    }

    fn additive(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.multiplicative()?;
        loop {
            if self.eat(&T::Plus) {
                lhs = lhs + self.multiplicative()?;
            } else if self.eat(&T::Minus) {
                lhs = lhs - self.multiplicative()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.primary()?;
        while self.eat(&T::Star) {
            lhs = lhs * self.primary()?;
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr, QueryError> {
        match self.peek().cloned() {
            Some(T::Int(v)) => {
                self.pos += 1;
                Ok(Expr::konst(v))
            }
            Some(T::Minus) => {
                self.pos += 1;
                Ok(-self.primary()?)
            }
            Some(T::LParen) => {
                self.pos += 1;
                let e = self.additive()?;
                if !self.eat(&T::RParen) {
                    return Err(self.err("expected )"));
                }
                Ok(e)
            }
            Some(T::Ident(name)) => {
                let id = self
                    .net
                    .decls()
                    .lookup(&name)
                    .ok_or_else(|| self.err(format!("unknown variable {name}")))?;
                self.pos += 1;
                if self.eat(&T::LBracket) {
                    let idx = self.additive()?;
                    if !self.eat(&T::RBracket) {
                        return Err(self.err("expected ]"));
                    }
                    Ok(Expr::index(id, idx))
                } else {
                    Ok(Expr::var(id))
                }
            }
            other => Err(self.err(format!("expected an expression, got {other:?}"))),
        }
    }
}

fn clock_formula(clock: Clock, op: &T, c: i64) -> StateFormula {
    let atom = match op {
        T::Le => ClockAtom::le(clock, c),
        T::Lt => ClockAtom::lt(clock, c),
        T::Ge => ClockAtom::ge(clock, c),
        T::Gt => ClockAtom::gt(clock, c),
        T::EqEq => {
            return StateFormula::and(vec![
                StateFormula::clock(ClockAtom::ge(clock, c)),
                StateFormula::clock(ClockAtom::le(clock, c)),
            ])
        }
        T::Ne => {
            return StateFormula::or(vec![
                StateFormula::clock(ClockAtom::lt(clock, c)),
                StateFormula::clock(ClockAtom::gt(clock, c)),
            ])
        }
        _ => unreachable!("bump_cmp filters the operators"),
    };
    StateFormula::clock(atom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkBuilder;

    fn lamp() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let level = b.decls_mut().int("level", 0, 3);
        let mut a = b.automaton("Lamp");
        let off = a.location("Off");
        let on = a.location_with_invariant("On", vec![ClockAtom::le(x, 10)]);
        a.edge(off, on)
            .reset(x, 0)
            .update(tempo_expr::Stmt::assign(level, Expr::konst(2)))
            .done();
        a.edge(on, off)
            .guard_clock(ClockAtom::ge(x, 1))
            .update(tempo_expr::Stmt::assign(level, Expr::konst(0)))
            .done();
        a.done();
        b.build()
    }

    #[test]
    fn reachability_queries() {
        let net = lamp();
        let r = check_query(&net, "E<> Lamp.On").unwrap();
        assert!(r.satisfied);
        assert!(r.trace.is_some());
        let r = check_query(&net, "E<> Lamp.On and level == 2").unwrap();
        assert!(r.satisfied);
        let r = check_query(&net, "E<> Lamp.Off and level == 3").unwrap();
        assert!(!r.satisfied);
    }

    #[test]
    fn safety_queries() {
        let net = lamp();
        assert!(check_query(&net, "A[] level <= 2").unwrap().satisfied);
        assert!(
            check_query(&net, "A[] not (Lamp.On and level == 0)")
                .unwrap()
                .satisfied
        );
        assert!(!check_query(&net, "A[] Lamp.Off").unwrap().satisfied);
        // Clock bound: On implies x <= 10 (the invariant).
        assert!(
            check_query(&net, "A[] !Lamp.On || x <= 10")
                .unwrap()
                .satisfied
        );
        assert!(
            !check_query(&net, "A[] !Lamp.On || x <= 9")
                .unwrap()
                .satisfied
        );
    }

    #[test]
    fn deadlock_and_leads_to() {
        let net = lamp();
        assert!(check_query(&net, "A[] not deadlock").unwrap().satisfied);
        assert!(check_query(&net, "Lamp.On --> Lamp.Off").unwrap().satisfied);
    }

    #[test]
    fn error_messages() {
        let net = lamp();
        assert!(parse_query(&net, "A[] Lamp.Nowhere").is_err());
        assert!(parse_query(&net, "E<> bogus == 1").is_err());
        assert!(parse_query(&net, "whatever").is_err());
        let err = parse_query(&net, "E<> Lamp.On extra").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn symbolic_and_word_operators_agree() {
        let net = lamp();
        let a = parse_formula(&net, "not Lamp.On or level >= 1").unwrap();
        let b = parse_formula(&net, "!Lamp.On || level >= 1").unwrap();
        assert_eq!(a, b);
    }
}
