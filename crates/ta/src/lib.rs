//! # tempo-ta — symbolic model checking for networks of timed automata
//!
//! This crate is the workspace's UPPAAL substrate (Bozga et al., DATE
//! 2012, §II): networks of timed automata with a C-like data language
//! ([`tempo_expr`]), binary/broadcast/urgent channels, urgent and
//! committed locations, and a zone-based symbolic model checker for
//!
//! * reachability `E<> φ` with shortest symbolic witness traces,
//! * safety `A[] φ`,
//! * liveness (leads-to) `φ --> ψ`,
//! * deadlock-freedom `A[] not deadlock` (exact, via federation
//!   subtraction).
//!
//! ## Example
//!
//! ```
//! use tempo_ta::{NetworkBuilder, ModelChecker, StateFormula, ClockAtom};
//!
//! let mut b = NetworkBuilder::new();
//! let x = b.clock("x");
//! let mut lamp = b.automaton("Lamp");
//! let off = lamp.location("Off");
//! let on = lamp.location_with_invariant("On", vec![ClockAtom::le(x, 10)]);
//! lamp.edge(off, on).reset(x, 0).done();
//! lamp.edge(on, off).guard_clock(ClockAtom::ge(x, 1)).done();
//! let lamp_id = lamp.done();
//! let net = b.build();
//!
//! let mut mc = ModelChecker::new(&net);
//! assert!(mc.reachable(&StateFormula::at(lamp_id, on)).reachable);
//! let (verdict, _) = mc.deadlock_free();
//! assert!(verdict.holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod digest;
mod digital;
mod explore;
pub mod flow;
mod formula;
mod liveness;
mod model;
mod par_reach;
mod por;
mod query;
mod reach;
mod reduce;
pub mod slice;
mod symmetry;

pub use codec::{decode_state, encode_state, ZoneSummary};
pub use digital::{DigitalError, DigitalExplorer, DigitalMove, DigitalState};
pub use explore::{Action, Explorer, SymState};
pub use flow::NetworkLu;
pub use formula::StateFormula;
pub use liveness::{leads_to, leads_to_governed};
pub use model::{
    Automaton, AutomatonBuilder, AutomatonId, Channel, ChannelId, ChannelKind, ClockAtom, Edge,
    EdgeBuilder, Location, LocationId, LocationKind, Network, NetworkBuilder, Sync, SyncDir,
};
pub use por::Por;
pub use query::{
    check_query, check_query_governed, parse_formula, parse_query, Query, QueryError, QueryResult,
};
pub use reach::{ModelChecker, ReachResult, Stats, Trace, TraceStep, Verdict};
pub use reduce::{live_clocks, ClockReduction};
pub use slice::{slice, Slice};
pub use symmetry::{near_miss_orbits, NearMiss, Perm, Symmetry};
pub use tempo_obs::{ExploreConfig, SpillConfig, SpillError, SpillMetrics};
