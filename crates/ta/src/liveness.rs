//! Leads-to (`φ --> ψ`) checking: UPPAAL's liveness operator.
//!
//! `φ --> ψ` holds iff every run passing through a `φ`-state eventually
//! reaches a `ψ`-state. The check searches, from every reachable
//! `φ ∧ ¬ψ` state, for a way to avoid `ψ` forever:
//!
//! * a cycle in the `ψ`-avoiding zone graph, or
//! * a `ψ`-avoiding state with no outgoing transitions.
//!
//! As in UPPAAL, paths are sequences of *action* transitions over the
//! zone graph: staying in one location forever by pure delay is not
//! counted as a counterexample (UPPAAL reports the paper's train-gate
//! liveness properties satisfied under exactly this semantics).
//!
//! Both `φ` and `ψ` must be *discrete* (no clock atoms), so satisfaction
//! is uniform over each symbolic state; this matches the location-based
//! liveness queries of the paper's train-gate example
//! (`Train(0).Appr --> Train(0).Cross`).
//!
//! The state-space reductions of the reachability engines stay **off**
//! here, deliberately: ample-set reduction with the simple subsumption-
//! based C3 proviso can still collapse `ψ`-avoiding cycles that this
//! check must observe, and symmetry folding permutes the `φ`-anchored
//! process (`Train(0)` above) out of the orbit representative. Liveness
//! keeps the unreduced zone graph as its search space.

use crate::explore::{Explorer, SymState};
use crate::formula::StateFormula;
use crate::model::{LocationId, Network};
use crate::reach::{exploration_report, Stats, Trace, TraceStep, Verdict};
use std::collections::{HashMap, HashSet, VecDeque};
use tempo_expr::Store;
use tempo_obs::{Budget, Governor, Outcome, SpillMetrics};

/// Checks the leads-to property `phi --> psi` over the network.
///
/// # Panics
///
/// Panics if `phi` or `psi` contains clock atoms (only discrete
/// predicates are supported; see the module documentation).
#[must_use]
pub fn leads_to(net: &Network, phi: &StateFormula, psi: &StateFormula) -> (Verdict, Stats) {
    leads_to_governed(net, phi, psi, &Budget::unlimited()).into_value()
}

/// Checks `phi --> psi` under a resource [`Budget`].
///
/// A counterexample found within the budget is definitive (`Complete`).
/// On exhaustion the partial verdict is `Satisfied`, to be read as "no
/// way to avoid `psi` found within the explored portion" — never as a
/// proof.
///
/// # Panics
///
/// Panics if `phi` or `psi` contains clock atoms (only discrete
/// predicates are supported; see the module documentation).
pub fn leads_to_governed(
    net: &Network,
    phi: &StateFormula,
    psi: &StateFormula,
    budget: &Budget,
) -> Outcome<(Verdict, Stats)> {
    assert!(
        phi.is_discrete() && psi.is_discrete(),
        "leads-to requires discrete (location/data) predicates"
    );
    let gov = budget.governor();
    // Discrete predicates read no clocks, so active-clock reduction is
    // always verdict-preserving here.
    let model_dim = net.dim();
    let reduction = net.reduced();
    let net = if reduction.is_reduced() {
        reduction.network()
    } else {
        net
    };
    let explorer = Explorer::new(net);
    let mut stats = Stats::default();
    let mut peak = 0usize;

    // Phase 1: collect all reachable states (inclusion-reduced), keeping
    // parent links for diagnostics.
    let mut states: Vec<SymState> = Vec::new();
    let mut parents: Vec<Option<usize>> = Vec::new();
    let mut passed: HashMap<(Vec<LocationId>, Store), Vec<usize>> = HashMap::new();
    let mut waiting: VecDeque<usize> = VecDeque::new();

    let init = explorer.initial_state();
    if gov.charge_state() {
        passed.insert(init.discrete(), vec![0]);
        states.push(init);
        parents.push(None);
        waiting.push_back(0);
        peak = 1;
    }

    'explore: while let Some(idx) = waiting.pop_front() {
        if !gov.check_time() {
            break;
        }
        stats.explored += 1;
        let state = states[idx].clone();
        for (_, succ) in explorer.successors(&state) {
            stats.transitions += 1;
            let key = succ.discrete();
            let entry = passed.entry(key).or_default();
            if entry
                .iter()
                .any(|&i| succ.zone.is_subset_of(&states[i].zone))
            {
                continue;
            }
            if !gov.charge_state() {
                break 'explore;
            }
            entry.retain(|&i| !states[i].zone.is_subset_of(&succ.zone));
            states.push(succ);
            parents.push(Some(idx));
            let new_idx = states.len() - 1;
            passed
                .get_mut(&states[new_idx].discrete())
                .expect("entry exists")
                .push(new_idx);
            waiting.push_back(new_idx);
            peak = peak.max(waiting.len());
        }
    }
    stats.stored = passed.values().map(Vec::len).sum();

    // Phase 2: from every reachable φ ∧ ¬ψ state, search the ψ-avoiding
    // graph for a cycle, a time-divergent stay, or a dead end. Skipped
    // entirely once the budget tripped during phase 1.
    for start in 0..states.len() {
        if gov.is_exhausted() {
            break;
        }
        let s = &states[start];
        if !phi.holds_somewhere(net, s) || psi.holds_somewhere(net, s) {
            continue;
        }
        if let Some(bad) = avoid_search(net, &explorer, s, psi, &mut stats, &gov) {
            // Build a trace: path to `start` via parent links, then the
            // offending suffix.
            let mut prefix = Vec::new();
            let mut cur = Some(start);
            while let Some(i) = cur {
                prefix.push(TraceStep {
                    action: None,
                    state: states[i].clone(),
                });
                cur = parents[i];
            }
            prefix.reverse();
            prefix.extend(bad.steps);
            let report = exploration_report(
                &gov,
                &stats,
                peak,
                net.dim(),
                model_dim,
                SpillMetrics::default(),
            );
            return gov
                .finish_complete((Verdict::Violated(Trace { steps: prefix }), stats), report);
        }
    }
    let report = exploration_report(
        &gov,
        &stats,
        peak,
        net.dim(),
        model_dim,
        SpillMetrics::default(),
    );
    gov.finish((Verdict::Satisfied, stats), report)
}

/// Key for cycle detection: discrete part plus the exact zone.
type AvoidKey = (Vec<LocationId>, Store, Vec<i64>);

fn key_of(s: &SymState) -> AvoidKey {
    (
        s.locs.clone(),
        s.store.clone(),
        s.zone.as_slice().iter().map(|b| b.raw()).collect(),
    )
}

/// DFS over the ψ-avoiding graph from `start`. Returns a witness suffix
/// if ψ can be avoided forever.
fn avoid_search(
    net: &Network,
    explorer: &Explorer<'_>,
    start: &SymState,
    psi: &StateFormula,
    stats: &mut Stats,
    gov: &Governor,
) -> Option<Trace> {
    let mut on_stack: HashSet<AvoidKey> = HashSet::new();
    let mut done: HashSet<AvoidKey> = HashSet::new();
    let mut path: Vec<SymState> = Vec::new();
    dfs(
        net,
        explorer,
        start,
        psi,
        &mut on_stack,
        &mut done,
        &mut path,
        stats,
        gov,
    )
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    net: &Network,
    explorer: &Explorer<'_>,
    state: &SymState,
    psi: &StateFormula,
    on_stack: &mut HashSet<AvoidKey>,
    done: &mut HashSet<AvoidKey>,
    path: &mut Vec<SymState>,
    stats: &mut Stats,
    gov: &Governor,
) -> Option<Trace> {
    // Budget trip: unwind without a verdict; the caller reports
    // `Exhausted`, so the missing branches cannot be misread as checked.
    if gov.is_exhausted() || !gov.check_time() {
        return None;
    }
    if psi.holds_somewhere(net, state) {
        return None; // ψ reached: this branch is fine.
    }
    let key = key_of(state);
    if on_stack.contains(&key) {
        // ψ-avoiding cycle.
        let mut steps: Vec<TraceStep> = path
            .iter()
            .map(|s| TraceStep {
                action: None,
                state: s.clone(),
            })
            .collect();
        steps.push(TraceStep {
            action: None,
            state: state.clone(),
        });
        return Some(Trace { steps });
    }
    if done.contains(&key) {
        return None;
    }
    if !gov.charge_state() {
        return None;
    }
    on_stack.insert(key.clone());
    path.push(state.clone());
    let succs = explorer.successors(state);
    stats.transitions += succs.len();
    let result = if succs.is_empty() {
        // Dead end while avoiding ψ: ψ never happens on this run.
        Some(Trace {
            steps: path
                .iter()
                .map(|s| TraceStep {
                    action: None,
                    state: s.clone(),
                })
                .collect(),
        })
    } else {
        let mut found = None;
        for (_, succ) in succs {
            if let Some(t) = dfs(net, explorer, &succ, psi, on_stack, done, path, stats, gov) {
                found = Some(t);
                break;
            }
        }
        found
    };
    path.pop();
    on_stack.remove(&key);
    done.insert(key);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockAtom, NetworkBuilder};

    #[test]
    fn progress_cycle_satisfies_leads_to() {
        // L0 -> L1 -> L0 with invariants forcing progress: L0 --> L1 holds.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 2)]);
        let l1 = a.location_with_invariant("L1", vec![ClockAtom::le(x, 2)]);
        a.edge(l0, l1).reset(x, 0).done();
        a.edge(l1, l0).reset(x, 0).done();
        let aid = a.done();
        let net = b.build();
        let (v, _) = leads_to(&net, &StateFormula::at(aid, l0), &StateFormula::at(aid, l1));
        assert!(v.holds());
    }

    #[test]
    fn avoidable_target_violates_leads_to() {
        // From L0 one can loop L0 -> L2 -> L0 forever, avoiding L1.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 2)]);
        let l1 = a.location("L1");
        let l2 = a.location_with_invariant("L2", vec![ClockAtom::le(x, 2)]);
        a.edge(l0, l1).reset(x, 0).done();
        a.edge(l0, l2).reset(x, 0).done();
        a.edge(l2, l0).reset(x, 0).done();
        let aid = a.done();
        let net = b.build();
        let (v, _) = leads_to(&net, &StateFormula::at(aid, l0), &StateFormula::at(aid, l1));
        assert!(!v.holds());
    }

    #[test]
    fn pure_delay_divergence_is_not_a_counterexample() {
        // L0 has no invariant, so a real-time run may stay in L0 forever;
        // like UPPAAL, the zone-graph semantics considers action paths
        // only, and the single action path reaches L1.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 1)).done();
        let aid = a.done();
        let net = b.build();
        let (v, _) = leads_to(&net, &StateFormula::at(aid, l0), &StateFormula::at(aid, l1));
        assert!(v.holds());
    }

    #[test]
    fn dead_end_violates_leads_to() {
        // L0 -> Sink with no way to reach L1.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 2)]);
        let l1 = a.location("L1");
        let sink = a.location_with_invariant("Sink", vec![ClockAtom::le(x, 2)]);
        a.edge(l0, l1).reset(x, 0).done();
        a.edge(l0, sink).reset(x, 0).done();
        let aid = a.done();
        let net = b.build();
        let (v, _) = leads_to(&net, &StateFormula::at(aid, l0), &StateFormula::at(aid, l1));
        assert!(!v.holds());
        let _ = sink;
    }

    #[test]
    #[should_panic(expected = "discrete")]
    fn clock_predicates_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).done();
        a.done();
        let net = b.build();
        let _ = leads_to(
            &net,
            &StateFormula::clock(ClockAtom::le(x, 1)),
            &StateFormula::True,
        );
    }
}
