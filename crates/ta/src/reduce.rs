//! Active-clock reduction (Daws–Yovine): shrink the DBM dimension by
//! removing clocks that no guard, invariant or property ever reads.
//!
//! The paper's tools run this analysis before touching a zone graph:
//! UPPAAL's *active-clock reduction* computes, for every location, the
//! set of clocks whose value can still influence the future behaviour,
//! and projects the rest away. This module provides both layers:
//!
//! * [`live_clocks`] — the per-location live-clock sets, computed as a
//!   backward fixpoint over resets, guards and invariants
//!   (`live(l) = reads(inv(l)) ∪ ⋃_{e: l→l'} reads(guard(e)) ∪
//!   (live(l') ∖ resets(e))`);
//! * [`Network::reduced`] / [`Network::reduced_with`] — a *globally*
//!   dead clock (live in no location, read by no property atom) is
//!   removed from the network outright, shrinking every DBM the
//!   engines manipulate. Removal only drops clocks whose value can
//!   never be observed, so every verdict is identical by construction;
//!   only the zone dimension (and thus time/memory per state) changes.

use crate::formula::StateFormula;
use crate::model::{Automaton, ClockAtom, Edge, Location, Network};
use tempo_dbm::Clock;

/// Marks the clocks read by one constraint atom.
fn feed_atom(read: &mut [bool], atom: &ClockAtom) {
    read[atom.i.index()] = true;
    read[atom.j.index()] = true;
}

/// Per-location live-clock sets of every automaton: `result[a][l][c]` is
/// `true` iff clock `c` is live at location `l` of automaton `a`.
///
/// A clock is live at a location when its current value may still be
/// read (by an invariant or a guard) before it is next reset. The sets
/// are the least fixpoint of the standard backward equations; clocks
/// shared between automata are handled conservatively by each automaton
/// seeing only its own resets.
#[must_use]
pub fn live_clocks(net: &Network) -> Vec<Vec<Vec<bool>>> {
    let dim = net.dim();
    net.automata()
        .iter()
        .map(|a| {
            let mut live = vec![vec![false; dim]; a.locations.len()];
            // Base: invariants read their clocks wherever time can pass.
            for (li, l) in a.locations.iter().enumerate() {
                for atom in &l.invariant {
                    feed_atom(&mut live[li], atom);
                }
            }
            // Iterate edges until the sets stabilise.
            let mut changed = true;
            while changed {
                changed = false;
                for e in &a.edges {
                    let (from, to) = (e.from.index(), e.to.index());
                    let mut add = vec![false; dim];
                    for atom in &e.guard_clocks {
                        feed_atom(&mut add, atom);
                    }
                    let resets: Vec<bool> = (0..dim)
                        .map(|c| e.resets.iter().any(|(clk, _)| clk.index() == c))
                        .collect();
                    for c in 0..dim {
                        let flows = add[c] || (live[to][c] && !resets[c]);
                        if flows && !live[from][c] {
                            live[from][c] = true;
                            changed = true;
                        }
                    }
                }
            }
            live
        })
        .collect()
}

/// The result of active-clock reduction: a network with dead clocks
/// removed, plus the mapping from original clocks to reduced ones.
///
/// Locations, edges, automata, channels and variables keep their exact
/// indices — only the clock table changes — so verdicts, traces and
/// property atoms over locations and data carry over unchanged.
#[derive(Debug, Clone)]
pub struct ClockReduction {
    net: Network,
    /// `map[i]` is the reduced index of original clock `i`, or `None`
    /// when the clock was removed. `map[0]` is always the reference
    /// clock.
    map: Vec<Option<Clock>>,
    removed: Vec<String>,
    original_dim: usize,
}

impl ClockReduction {
    /// The reduced network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// DBM dimension after reduction.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.net.dim()
    }

    /// DBM dimension of the original network.
    #[must_use]
    pub fn original_dim(&self) -> usize {
        self.original_dim
    }

    /// Names of the clocks that were removed.
    #[must_use]
    pub fn removed(&self) -> &[String] {
        &self.removed
    }

    /// Whether any clock was removed.
    #[must_use]
    pub fn is_reduced(&self) -> bool {
        self.dim() < self.original_dim
    }

    /// Maps an original clock to its reduced index (`None` if removed).
    #[must_use]
    pub fn map_clock(&self, c: Clock) -> Option<Clock> {
        self.map.get(c.index()).copied().flatten()
    }

    /// Original indices of the kept clocks, in reduced order (`kept()[k]`
    /// is the original index of reduced clock `k`; `kept()[0] == 0` is
    /// the reference clock). Projecting a concrete clock valuation of the
    /// original network through this vector yields the corresponding
    /// valuation of the reduced network: kept clocks share resets,
    /// constraints and therefore clamping constants in both networks.
    #[must_use]
    pub fn kept(&self) -> Vec<usize> {
        let mut kept = vec![0; self.dim()];
        for (orig, m) in self.map.iter().enumerate() {
            if let Some(nc) = m {
                kept[nc.index()] = orig;
            }
        }
        kept
    }

    /// Maps a constraint atom into the reduced clock space (`None` if it
    /// mentions a removed clock).
    #[must_use]
    pub fn map_atom(&self, atom: &ClockAtom) -> Option<ClockAtom> {
        Some(ClockAtom {
            i: self.map_clock(atom.i)?,
            j: self.map_clock(atom.j)?,
            bound: atom.bound,
        })
    }

    /// Maps a state formula into the reduced clock space. Returns `None`
    /// when the formula reads a removed clock — which cannot happen for
    /// formulas whose atoms were passed to [`Network::reduced_with`].
    #[must_use]
    pub fn map_formula(&self, f: &StateFormula) -> Option<StateFormula> {
        Some(match f {
            StateFormula::True => StateFormula::True,
            StateFormula::False => StateFormula::False,
            StateFormula::At(a, l) => StateFormula::At(*a, *l),
            StateFormula::Data(e) => StateFormula::Data(e.clone()),
            StateFormula::Clock(atom) => StateFormula::Clock(self.map_atom(atom)?),
            StateFormula::Not(g) => StateFormula::not(self.map_formula(g)?),
            StateFormula::And(gs) => StateFormula::and(
                gs.iter()
                    .map(|g| self.map_formula(g))
                    .collect::<Option<Vec<_>>>()?,
            ),
            StateFormula::Or(gs) => StateFormula::or(
                gs.iter()
                    .map(|g| self.map_formula(g))
                    .collect::<Option<Vec<_>>>()?,
            ),
        })
    }
}

impl Network {
    /// Active-clock reduction: removes every clock that no guard and no
    /// invariant reads. See [`Network::reduced_with`] to additionally
    /// protect clocks read by property atoms.
    #[must_use]
    pub fn reduced(&self) -> ClockReduction {
        self.reduced_with(&[])
    }

    /// Active-clock reduction keeping the clocks of `extra` atoms alive
    /// (use the property's [`StateFormula::clock_atoms`] so the query
    /// can still be evaluated on the reduced network).
    ///
    /// The reduced network has identical automata, locations, edges,
    /// channels and variables; only dead clocks (and their resets) are
    /// gone. Every reachability/safety/liveness/game verdict over the
    /// reduced network equals the verdict over the original, because a
    /// removed clock is read by no constraint anywhere.
    #[must_use]
    pub fn reduced_with(&self, extra: &[ClockAtom]) -> ClockReduction {
        let dim = self.dim();
        let mut read = vec![false; dim];
        read[0] = true;
        for a in &self.automata {
            for l in &a.locations {
                for atom in &l.invariant {
                    feed_atom(&mut read, atom);
                }
            }
            for e in &a.edges {
                for atom in &e.guard_clocks {
                    feed_atom(&mut read, atom);
                }
            }
        }
        for atom in extra {
            feed_atom(&mut read, atom);
        }

        let mut map: Vec<Option<Clock>> = vec![None; dim];
        map[0] = Some(Clock::REF);
        let mut clock_names = Vec::new();
        let mut removed = Vec::new();
        for i in 1..dim {
            if read[i] {
                clock_names.push(self.clock_names[i - 1].clone());
                map[i] = Some(Clock(clock_names.len()));
            } else {
                removed.push(self.clock_names[i - 1].clone());
            }
        }

        let remap = |atom: &ClockAtom| ClockAtom {
            i: map[atom.i.index()].expect("read clocks are kept"),
            j: map[atom.j.index()].expect("read clocks are kept"),
            bound: atom.bound,
        };
        let automata = self
            .automata
            .iter()
            .map(|a| Automaton {
                name: a.name.clone(),
                locations: a
                    .locations
                    .iter()
                    .map(|l| Location {
                        name: l.name.clone(),
                        kind: l.kind,
                        invariant: l.invariant.iter().map(&remap).collect(),
                    })
                    .collect(),
                edges: a
                    .edges
                    .iter()
                    .map(|e| Edge {
                        from: e.from,
                        to: e.to,
                        selects: e.selects.clone(),
                        guard_clocks: e.guard_clocks.iter().map(&remap).collect(),
                        guard_data: e.guard_data.clone(),
                        sync: e.sync.clone(),
                        resets: e
                            .resets
                            .iter()
                            .filter_map(|(c, v)| map[c.index()].map(|nc| (nc, v.clone())))
                            .collect(),
                        update: e.update.clone(),
                        controllable: e.controllable,
                    })
                    .collect(),
                initial: a.initial,
            })
            .collect();

        ClockReduction {
            net: Network {
                decls: self.decls.clone(),
                clock_names,
                channels: self.channels.clone(),
                automata,
                id_vars: self.id_vars.clone(),
            },
            map,
            removed,
            original_dim: dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkBuilder;
    use crate::reach::ModelChecker;

    /// A network with one live clock `x` and one dead clock `d` that is
    /// reset but never read.
    fn net_with_dead_clock() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let d = b.clock("d");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 5)]);
        let l1 = a.location("L1");
        a.edge(l0, l1)
            .guard_clock(ClockAtom::ge(x, 2))
            .reset(d, 0)
            .done();
        a.edge(l1, l0).reset(x, 0).done();
        a.done();
        b.build()
    }

    #[test]
    fn dead_clock_is_removed() {
        let net = net_with_dead_clock();
        let red = net.reduced();
        assert_eq!(red.original_dim(), 3);
        assert_eq!(red.dim(), 2);
        assert!(red.is_reduced());
        assert_eq!(red.removed(), &["d".to_owned()]);
        assert_eq!(red.network().clock_names(), &["x".to_owned()]);
        // Resets of the removed clock are gone.
        assert!(red.network().automata()[0].edges[0].resets.is_empty());
    }

    #[test]
    fn extra_atoms_keep_clocks_alive() {
        let net = net_with_dead_clock();
        let d = net.clock_by_name("d").unwrap();
        let red = net.reduced_with(&[ClockAtom::le(d, 10)]);
        assert_eq!(red.dim(), 3, "property atom keeps d alive");
        assert!(!red.is_reduced());
    }

    #[test]
    fn atom_and_formula_remapping() {
        let net = net_with_dead_clock();
        let red = net.reduced();
        let x = net.clock_by_name("x").unwrap();
        let d = net.clock_by_name("d").unwrap();
        let mapped = red.map_atom(&ClockAtom::le(x, 5)).unwrap();
        assert_eq!(mapped.i, red.network().clock_by_name("x").unwrap());
        assert!(red.map_atom(&ClockAtom::le(d, 5)).is_none());
        let f = StateFormula::and(vec![
            StateFormula::clock(ClockAtom::ge(x, 1)),
            StateFormula::True,
        ]);
        assert!(red.map_formula(&f).is_some());
        assert!(red
            .map_formula(&StateFormula::clock(ClockAtom::le(d, 1)))
            .is_none());
    }

    #[test]
    fn kept_projects_reduced_indices_back() {
        // Clocks: d (dead), x (live) — forces a non-trivial remap.
        let mut b = NetworkBuilder::new();
        let d = b.clock("d");
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0)
            .guard_clock(ClockAtom::ge(x, 1))
            .reset(d, 0)
            .done();
        a.done();
        let net = b.build();
        let red = net.reduced();
        assert_eq!(red.kept(), vec![0, x.index()]);
        let _ = d;
    }

    #[test]
    fn verdicts_identical_after_reduction() {
        let net = net_with_dead_clock();
        let red = net.reduced();
        let aid = net.automaton_by_name("A").unwrap();
        let goal = StateFormula::at(aid, crate::model::LocationId(1));
        let full = ModelChecker::new(&net).reachable(&goal).reachable;
        let reduced = ModelChecker::new(red.network()).reachable(&goal).reachable;
        assert_eq!(full, reduced);
        let (v1, _) = ModelChecker::new(&net).deadlock_free();
        let (v2, _) = ModelChecker::new(red.network()).deadlock_free();
        assert_eq!(v1.holds(), v2.holds());
    }

    #[test]
    fn live_sets_follow_resets_backward() {
        // x is read by the guard of the edge leaving L1; it is reset on
        // the edge into L1, so it is live at L1 but dead at L0.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        let l2 = a.location("L2");
        a.edge(l0, l1).reset(x, 0).done();
        a.edge(l1, l2).guard_clock(ClockAtom::ge(x, 3)).done();
        a.done();
        let net = b.build();
        let live = live_clocks(&net);
        let xi = x.index();
        assert!(!live[0][0][xi], "x dead at L0: reset before next read");
        assert!(live[0][1][xi], "x live at L1: guard reads it");
        assert!(!live[0][2][xi], "x dead at L2: never read again");
    }

    #[test]
    fn live_sets_include_invariants() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 4)]);
        a.edge(l0, l0).reset(x, 0).done();
        a.done();
        let net = b.build();
        let live = live_clocks(&net);
        assert!(live[0][0][x.index()]);
    }
}
