//! Digital-clocks (integer-time) semantics of networks of timed automata.
//!
//! For *closed* models (no strict clock bounds), integer delays preserve
//! reachability, cost-optimal reachability and game winning-ness
//! (Henzinger–Manna–Pnueli / Kwiatkowska et al.). This module provides a
//! concrete-state explorer with unit-delay ticks and joint action moves,
//! used by `tempo-cora` (minimum-cost reachability) and `tempo-tiga`
//! (timed-game strategy synthesis); clocks are clamped one above the
//! model's maximal constants so the state space is finite.

use crate::explore::SymState;
use crate::model::{ChannelKind, Edge, LocationId, LocationKind, Network, SyncDir};
use std::fmt;
use tempo_expr::Store;
use tempo_obs::{Diagnostic, LintError};

/// Typed rejection of a non-closed model by the digital-clocks engines:
/// one [`Diagnostic`] per strict clock bound found.
///
/// Convertible into [`LintError`] so `check_first` entry points can
/// surface closedness violations through the same channel as lint
/// findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitalError {
    /// One error-level diagnostic (code `DIGITAL`) per strict bound.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for DigitalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model is not closed (digital clocks require closed bounds):"
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DigitalError {}

impl From<DigitalError> for LintError {
    fn from(e: DigitalError) -> LintError {
        LintError::new(e.diagnostics)
    }
}

/// A concrete integer-time state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DigitalState {
    /// Location of each automaton.
    pub locs: Vec<LocationId>,
    /// Discrete variable values.
    pub store: Store,
    /// Integer clock values, clamped at `max_constant + 1`
    /// (`clocks[0] == 0`).
    pub clocks: Vec<i64>,
}

/// A joint action move in the digital semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitalMove {
    /// Human-readable label (channel or `tau`).
    pub label: String,
    /// Participants as `(automaton index, edge index, selects)`; the
    /// sender (or the single mover) comes first.
    pub participants: Vec<(usize, usize, Vec<i64>)>,
    /// Whether every participating edge is controller-owned (for games,
    /// a synchronization is controllable iff its initiating edge is).
    pub controllable: bool,
}

/// Concrete-state explorer over the digital-clocks semantics.
///
/// # Panics
///
/// [`DigitalExplorer::new`] panics if the network contains strict clock
/// bounds, for which the digital semantics is not exact.
#[derive(Debug)]
pub struct DigitalExplorer<'n> {
    net: &'n Network,
    clamp: Vec<i64>,
    /// Per-location LU tables; when present, ticks clamp each clock at
    /// `max(L, U) + 1` of the *current* location vector instead of the
    /// global maximal constant. Sound because the solved bounds are
    /// non-increasing along reset-free paths: once a clock passes every
    /// constant still observable from here, its exact value can never
    /// matter again.
    lu: Option<crate::flow::NetworkLu>,
}

impl<'n> DigitalExplorer<'n> {
    /// Creates an explorer, validating that the model is closed.
    ///
    /// # Panics
    ///
    /// Panics if the model contains strict clock bounds; use
    /// [`DigitalExplorer::try_new`] for the non-panicking API.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        Self::try_new(net).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an explorer, collecting a [`DigitalError`] with one
    /// diagnostic per strict clock bound when the model is not closed.
    ///
    /// # Errors
    ///
    /// Returns [`DigitalError`] when any guard or invariant uses a
    /// strict bound (`<`/`>`), for which the digital semantics is not
    /// exact.
    pub fn try_new(net: &'n Network) -> Result<Self, DigitalError> {
        let mut diagnostics = Vec::new();
        for a in net.automata() {
            for l in &a.locations {
                for atom in &l.invariant {
                    if !atom.bound.is_inf() && atom.bound.is_strict() {
                        diagnostics.push(Diagnostic::error(
                            "DIGITAL",
                            Some(&format!("{}.{}", a.name, l.name)),
                            format!(
                                "digital clocks require closed invariants ({} in {})",
                                l.name, a.name
                            ),
                        ));
                    }
                }
            }
            for e in &a.edges {
                for atom in &e.guard_clocks {
                    if !atom.bound.is_inf() && atom.bound.is_strict() {
                        diagnostics.push(Diagnostic::error(
                            "DIGITAL",
                            Some(&a.name),
                            format!("digital clocks require closed guards (in {})", a.name),
                        ));
                    }
                }
            }
        }
        if !diagnostics.is_empty() {
            return Err(DigitalError { diagnostics });
        }
        let clamp = net.max_constants().into_iter().map(|c| c + 1).collect();
        Ok(DigitalExplorer {
            net,
            clamp,
            lu: None,
        })
    }

    /// Switches tick clamping to the per-location LU tables. Used by
    /// engines whose certificates replay recorded *move lists* (cost
    /// traces); engines that publish state-indexed artifacts (game
    /// strategies) must keep the global clamp so that replayed states
    /// match the solved domain.
    #[must_use]
    pub fn with_lu(mut self, lu: crate::flow::NetworkLu) -> Self {
        self.lu = Some(lu);
        self
    }

    /// The network being explored.
    #[must_use]
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The initial digital state.
    #[must_use]
    pub fn initial_state(&self) -> DigitalState {
        DigitalState {
            locs: self.net.automata().iter().map(|a| a.initial).collect(),
            store: self.net.decls().initial_store(),
            clocks: vec![0; self.net.dim()],
        }
    }

    fn invariants_hold(&self, locs: &[LocationId], clocks: &[i64]) -> bool {
        self.net.automata().iter().zip(locs).all(|(a, &l)| {
            a.locations[l.index()].invariant.iter().all(|atom| {
                atom.bound
                    .satisfied_by(clocks[atom.i.index()] - clocks[atom.j.index()])
            })
        })
    }

    /// Whether a unit delay is permitted (no urgency, invariants hold
    /// after the tick).
    #[must_use]
    pub fn can_tick(&self, state: &DigitalState) -> bool {
        let urgent = state
            .locs
            .iter()
            .zip(self.net.automata())
            .any(|(&l, a)| a.locations[l.index()].kind != LocationKind::Normal);
        if urgent || self.urgent_sync_enabled(state) {
            return false;
        }
        let ticked = self.ticked_clocks(state);
        self.invariants_hold(&state.locs, &ticked)
    }

    fn ticked_clocks(&self, state: &DigitalState) -> Vec<i64> {
        let local = self.lu.as_ref().map(|lu| {
            let mut lower = Vec::new();
            let mut upper = Vec::new();
            lu.state_bounds(&state.locs, &mut lower, &mut upper);
            lower
                .iter()
                .zip(&upper)
                .map(|(&l, &u)| l.max(u).max(0) + 1)
                .collect::<Vec<i64>>()
        });
        let clamp = local.as_deref().unwrap_or(&self.clamp);
        state
            .clocks
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == 0 { 0 } else { (c + 1).min(clamp[i]) })
            .collect()
    }

    /// The unit-delay successor, if delay is permitted.
    #[must_use]
    pub fn tick(&self, state: &DigitalState) -> Option<DigitalState> {
        if !self.can_tick(state) {
            return None;
        }
        Some(DigitalState {
            locs: state.locs.clone(),
            store: state.store.clone(),
            clocks: self.ticked_clocks(state),
        })
    }

    fn urgent_sync_enabled(&self, state: &DigitalState) -> bool {
        self.moves(state).iter().any(|(m, _)| {
            let (ai, ei, _) = m.participants[0];
            let e = &self.net.automata()[ai].edges[ei];
            e.sync
                .as_ref()
                .is_some_and(|s| self.net.channels()[s.channel.index()].urgent)
        })
    }

    fn edge_enabled(&self, state: &DigitalState, e: &Edge, sel: &[i64]) -> bool {
        if !e
            .guard_data
            .eval_bool(self.net.decls(), &state.store, sel)
            .unwrap_or(false)
        {
            return false;
        }
        e.guard_clocks.iter().all(|atom| {
            atom.bound
                .satisfied_by(state.clocks[atom.i.index()] - state.clocks[atom.j.index()])
        })
    }

    /// All joint action moves enabled in the state, with their successor
    /// states.
    #[must_use]
    pub fn moves(&self, state: &DigitalState) -> Vec<(DigitalMove, DigitalState)> {
        let committed: Vec<bool> = state
            .locs
            .iter()
            .zip(self.net.automata())
            .map(|(&l, a)| a.locations[l.index()].kind == LocationKind::Committed)
            .collect();
        let any_committed = committed.iter().any(|&c| c);
        let mut out = Vec::new();
        for (ai, a) in self.net.automata().iter().enumerate() {
            for (ei, e) in a.edges.iter().enumerate() {
                if e.from != state.locs[ai] {
                    continue;
                }
                for sel in select_values(&e.selects) {
                    if !self.edge_enabled(state, e, &sel) {
                        continue;
                    }
                    match &e.sync {
                        None => {
                            if any_committed && !committed[ai] {
                                continue;
                            }
                            let mv = DigitalMove {
                                label: "tau".to_owned(),
                                participants: vec![(ai, ei, sel.clone())],
                                controllable: e.controllable,
                            };
                            if let Some(next) = self.apply(state, &mv) {
                                out.push((mv, next));
                            }
                        }
                        Some(sync) if sync.dir == SyncDir::Send => {
                            let Ok(idx) = sync.index.eval(self.net.decls(), &state.store, &sel)
                            else {
                                continue;
                            };
                            let ch = &self.net.channels()[sync.channel.index()];
                            match ch.kind {
                                ChannelKind::Binary => {
                                    for (bi, b) in self.net.automata().iter().enumerate() {
                                        if bi == ai
                                            || (any_committed && !committed[ai] && !committed[bi])
                                        {
                                            continue;
                                        }
                                        for (ri, r) in b.edges.iter().enumerate() {
                                            if r.from != state.locs[bi] {
                                                continue;
                                            }
                                            let Some(rs) = &r.sync else { continue };
                                            if rs.dir != SyncDir::Recv || rs.channel != sync.channel
                                            {
                                                continue;
                                            }
                                            for rsel in select_values(&r.selects) {
                                                if rs.index.eval(
                                                    self.net.decls(),
                                                    &state.store,
                                                    &rsel,
                                                ) != Ok(idx)
                                                    || !self.edge_enabled(state, r, &rsel)
                                                {
                                                    continue;
                                                }
                                                let mv = DigitalMove {
                                                    label: format!("{}[{}]", ch.name, idx),
                                                    participants: vec![
                                                        (ai, ei, sel.clone()),
                                                        (bi, ri, rsel),
                                                    ],
                                                    controllable: e.controllable && r.controllable,
                                                };
                                                if let Some(next) = self.apply(state, &mv) {
                                                    out.push((mv, next));
                                                }
                                            }
                                        }
                                    }
                                }
                                ChannelKind::Broadcast => {
                                    if any_committed && !committed[ai] {
                                        continue;
                                    }
                                    let mut participants = vec![(ai, ei, sel.clone())];
                                    let mut ctrl = e.controllable;
                                    for (bi, b) in self.net.automata().iter().enumerate() {
                                        if bi == ai {
                                            continue;
                                        }
                                        'edges: for (ri, r) in b.edges.iter().enumerate() {
                                            if r.from != state.locs[bi] {
                                                continue;
                                            }
                                            let Some(rs) = &r.sync else { continue };
                                            if rs.dir != SyncDir::Recv || rs.channel != sync.channel
                                            {
                                                continue;
                                            }
                                            for rsel in select_values(&r.selects) {
                                                if rs.index.eval(
                                                    self.net.decls(),
                                                    &state.store,
                                                    &rsel,
                                                ) == Ok(idx)
                                                    && self.edge_enabled(state, r, &rsel)
                                                {
                                                    participants.push((bi, ri, rsel));
                                                    ctrl &= r.controllable;
                                                    break 'edges;
                                                }
                                            }
                                        }
                                    }
                                    let mv = DigitalMove {
                                        label: format!("{}[{}]!!", ch.name, idx),
                                        participants,
                                        controllable: ctrl,
                                    };
                                    if let Some(next) = self.apply(state, &mv) {
                                        out.push((mv, next));
                                    }
                                }
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        out
    }

    /// Applies a joint move (participants in order), returning the
    /// successor or `None` if an update or target invariant fails.
    fn apply(&self, state: &DigitalState, mv: &DigitalMove) -> Option<DigitalState> {
        let mut next = state.clone();
        for (ai, ei, sel) in &mv.participants {
            let e = &self.net.automata()[*ai].edges[*ei];
            for (clock, value) in &e.resets {
                let v = value.eval(self.net.decls(), &next.store, sel).ok()?;
                if v < 0 {
                    return None;
                }
                next.clocks[clock.index()] = v.min(self.clamp[clock.index()]);
            }
            e.update
                .execute(self.net.decls(), &mut next.store, sel)
                .ok()?;
            next.locs[*ai] = e.to;
        }
        self.invariants_hold(&next.locs, &next.clocks)
            .then_some(next)
    }

    /// Lifts a digital state to a (point) symbolic state, for reuse of
    /// [`crate::StateFormula`] satisfaction via the concrete clocks.
    #[must_use]
    pub fn satisfies(&self, state: &DigitalState, f: &crate::StateFormula) -> bool {
        match f {
            crate::StateFormula::True => true,
            crate::StateFormula::False => false,
            crate::StateFormula::At(a, l) => state.locs[a.index()] == *l,
            crate::StateFormula::Data(e) => e
                .eval_bool(self.net.decls(), &state.store, &[])
                .unwrap_or(false),
            crate::StateFormula::Clock(atom) => atom
                .bound
                .satisfied_by(state.clocks[atom.i.index()] - state.clocks[atom.j.index()]),
            crate::StateFormula::Not(g) => !self.satisfies(state, g),
            crate::StateFormula::And(gs) => gs.iter().all(|g| self.satisfies(state, g)),
            crate::StateFormula::Or(gs) => gs.iter().any(|g| self.satisfies(state, g)),
        }
    }
}

impl DigitalState {
    /// Converts to a symbolic point state (zero-width zone), e.g. for
    /// display.
    #[must_use]
    pub fn to_sym_state(&self) -> SymState {
        let dim = self.clocks.len();
        let mut zone = tempo_dbm::Dbm::zero(dim);
        for (i, &v) in self.clocks.iter().enumerate().skip(1) {
            zone.reset(tempo_dbm::Clock(i), v);
        }
        SymState {
            locs: self.locs.clone(),
            store: self.store.clone(),
            zone,
        }
    }
}

fn select_values(ranges: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = vec![Vec::new()];
    for &(lo, hi) in ranges {
        let mut next = Vec::new();
        for prefix in &out {
            for v in lo..=hi {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockAtom, NetworkBuilder};
    use crate::StateFormula;

    fn bounded_loop() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 3)]);
        a.edge(l0, l0)
            .guard_clock(ClockAtom::ge(x, 2))
            .reset(x, 0)
            .done();
        a.done();
        b.build()
    }

    #[test]
    fn ticks_respect_invariants() {
        let net = bounded_loop();
        let exp = DigitalExplorer::new(&net);
        let mut s = exp.initial_state();
        for expected in [1, 2, 3] {
            s = exp.tick(&s).expect("tick allowed");
            assert_eq!(s.clocks[1], expected);
        }
        assert!(
            exp.tick(&s).is_none(),
            "invariant x <= 3 blocks further delay"
        );
    }

    #[test]
    fn moves_respect_guards() {
        let net = bounded_loop();
        let exp = DigitalExplorer::new(&net);
        let s0 = exp.initial_state();
        assert!(exp.moves(&s0).is_empty(), "guard x >= 2 not yet satisfied");
        let s1 = exp.tick(&s0).unwrap();
        let s2 = exp.tick(&s1).unwrap();
        let moves = exp.moves(&s2);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].1.clocks[1], 0, "reset applied");
    }

    #[test]
    fn clamping_bounds_state_space() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0)
            .guard_clock(ClockAtom::ge(x, 5))
            .reset(x, 0)
            .done();
        a.done();
        let net = b.build();
        let exp = DigitalExplorer::new(&net);
        let mut s = exp.initial_state();
        for _ in 0..100 {
            s = exp.tick(&s).unwrap();
        }
        assert_eq!(s.clocks[1], 6, "clamped at max constant + 1");
    }

    #[test]
    #[should_panic(expected = "closed")]
    fn strict_guards_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).guard_clock(ClockAtom::lt(x, 3)).done();
        a.done();
        let net = b.build();
        let _ = DigitalExplorer::new(&net);
    }

    #[test]
    fn try_new_reports_every_strict_bound() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::lt(x, 5)]);
        a.edge(l0, l0).guard_clock(ClockAtom::gt(x, 1)).done();
        a.done();
        let net = b.build();
        let err = DigitalExplorer::try_new(&net).unwrap_err();
        assert_eq!(err.diagnostics.len(), 2, "one per strict bound");
        assert!(err.diagnostics.iter().all(|d| d.code == "DIGITAL"));
        assert!(format!("{err}").contains("closed"));
        let lint: tempo_obs::LintError = err.into();
        assert_eq!(lint.diagnostics.len(), 2);
    }

    #[test]
    fn formula_satisfaction() {
        let net = bounded_loop();
        let exp = DigitalExplorer::new(&net);
        let s = exp.initial_state();
        let x = tempo_dbm::Clock(1);
        assert!(exp.satisfies(&s, &StateFormula::clock(ClockAtom::le(x, 0))));
        let t = exp.tick(&s).unwrap();
        assert!(!exp.satisfies(&t, &StateFormula::clock(ClockAtom::le(x, 0))));
        assert!(exp.satisfies(&t, &StateFormula::clock(ClockAtom::ge(x, 1))));
    }

    #[test]
    fn to_sym_state_roundtrip() {
        let net = bounded_loop();
        let exp = DigitalExplorer::new(&net);
        let s = exp.tick(&exp.initial_state()).unwrap();
        let sym = s.to_sym_state();
        assert!(sym.zone.contains(&[0, 1]));
        assert!(!sym.zone.contains(&[0, 2]));
    }
}
