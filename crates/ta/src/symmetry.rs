//! Template-symmetry reduction: canonical orbit representatives for
//! networks with replicated components.
//!
//! Replicated templates (the N trains of the train-gate, N stations of a
//! CSMA model, …) induce automorphisms of the zone graph: permuting
//! structurally identical automata — together with their private clocks
//! and every stored occurrence of their identities — maps reachable
//! states to reachable states and preserves every property that does not
//! tell the permuted components apart. Exploring one representative per
//! orbit therefore preserves verdicts while dividing the state count by
//! up to `k!` for an orbit of `k` interchangeable components.
//!
//! Detection is static and conservative:
//!
//! 1. Candidate orbits are automata with identical structure after
//!    renaming their private clocks and substituting their own identity
//!    constant in channel-index expressions (grouped by [`Fingerprint`]
//!    of the normalized template, then checked for exact equality).
//! 2. Component identities stored in shared variables must be declared
//!    by the modeller via [`crate::NetworkBuilder::mark_id_var`] — the
//!    scalarset contract. A data-flow scan verifies the contract: any
//!    expression where an identity leaks into arithmetic, an ordering
//!    comparison, an unmarked variable, or an array subscript disables
//!    the reduction entirely.
//! 3. Identity *constants* that the model singles out (a literal id
//!    compared with or assigned into a marked variable, or an id-marked
//!    variable's initial value) are **pinned**: permutations must fix
//!    them. The same holds for identities the goal or prune formula
//!    distinguishes, detected by checking invariance of the normalized
//!    formula under each transposition.
//!
//! The group that remains is the full symmetric group on the unpinned
//! identities; states are canonicalized by taking the lexicographic
//! minimum of the state's encoding over all group elements. Witness
//! traces remain exact: each search node stores the permutation applied
//! to it, and [`realize`]d traces compose the inverses back into a
//! concrete run of the original network.

use crate::explore::{Action, SymState};
use crate::formula::StateFormula;
use crate::model::{Automaton, AutomatonId, ClockAtom, Network};
use std::collections::{BTreeMap, BTreeSet};
use tempo_dbm::Clock;
use tempo_expr::{BinOp, Expr, Stmt, UnOp, VarId};
use tempo_obs::Fingerprint;

/// One replicated component of the detected orbit.
#[derive(Debug, Clone)]
struct Member {
    /// Automaton index in the network.
    aut: usize,
    /// Identity value (sync-index constant), or the member's ordinal for
    /// anonymous orbits that never mention identities.
    id: i64,
    /// The member's private clock columns, in first-use order; aligned
    /// across members by the structural isomorphism.
    clocks: Vec<usize>,
}

/// A network automorphism from the orbit group: simultaneous renaming of
/// member automata, their private clocks, and identity values in marked
/// variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perm {
    /// Automaton renaming (identity outside the orbit).
    aut_map: Vec<usize>,
    /// Clock-column renaming (identity outside member clocks).
    clock_map: Vec<usize>,
    /// Identity-value renaming, as sorted `(from, to)` pairs.
    id_map: Vec<(i64, i64)>,
}

impl Perm {
    /// Whether this is the identity automorphism.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.id_map.iter().all(|&(a, b)| a == b)
    }

    fn map_id(&self, v: i64) -> i64 {
        match self.id_map.binary_search_by_key(&v, |&(from, _)| from) {
            Ok(i) => self.id_map[i].1,
            Err(_) => v,
        }
    }
}

/// The detected symmetry of a network: one orbit of replicated
/// components plus its admissible permutation group.
#[derive(Debug)]
pub struct Symmetry {
    members: Vec<Member>,
    /// All group elements; index `0` is the identity.
    perms: Vec<Perm>,
    /// Id-marked shared variables whose values are renamed along.
    marked: Vec<VarId>,
    /// Channels whose index expressions carry component identities (for
    /// renaming resolved indices in trace actions).
    id_channels: Vec<bool>,
    /// Number of valid orbit groups detected (the largest is used).
    orbit_count: usize,
}

/// Upper bound on unpinned orbit members: `7! = 5040` permutations per
/// canonicalization is the largest enumeration we accept; further
/// members beyond this are pinned.
const MAX_FREE: usize = 7;

/// Candidate orbit member before pinning: automaton index, identity
/// constant (when the template is id-carrying) and its private clocks.
type Candidate = (usize, Option<i64>, Vec<usize>);

/// Coarse edge shape used by [`near_miss_orbits`]: source and target
/// location indices plus the channel endpoint (channel, is-send).
type ShapeEdge = (usize, usize, Option<(usize, bool)>);

impl Symmetry {
    /// Detects a usable orbit in `net`, with `formulas` (goal, prune, …)
    /// constraining which identities stay permutable. Returns `None`
    /// when no sound non-trivial group exists.
    #[must_use]
    pub fn detect(net: &Network, formulas: &[&StateFormula]) -> Option<Symmetry> {
        let marked: Vec<VarId> = net.id_vars().to_vec();
        let clock_users = clock_usage(net);

        // 1. Group structurally identical templates.
        #[allow(clippy::type_complexity)]
        let mut groups: BTreeMap<
            Fingerprint,
            Vec<(usize, Option<i64>, Vec<usize>, Automaton)>,
        > = BTreeMap::new();
        for (ai, a) in net.automata.iter().enumerate() {
            let Some(own_id) = own_id_constant(a) else {
                continue;
            };
            let clocks = member_clocks(a);
            let normalized = normalized_template(a, own_id, &clocks);
            groups
                .entry(Fingerprint::of(&normalized))
                .or_default()
                .push((ai, own_id, clocks, normalized));
        }

        let mut valid: Vec<Vec<Candidate>> = Vec::new();
        'group: for (_, g) in groups {
            if g.len() < 2 {
                continue;
            }
            let (_, _, _, first) = &g[0];
            let anonymous = g[0].1.is_none();
            let mut ids = BTreeSet::new();
            for (ai, own, clocks, norm) in &g {
                // Exact structural equality, not just a digest match.
                if norm != first || own.is_none() != anonymous {
                    continue 'group;
                }
                if let Some(id) = own {
                    if !ids.insert(*id) {
                        continue 'group;
                    }
                }
                // Member clocks must be private to the member.
                for &c in clocks {
                    if clock_users[c].iter().any(|&u| u != *ai) {
                        continue 'group;
                    }
                }
            }
            // Anonymous orbits cannot honor a marked-variable contract:
            // there is no identity value to rename in the store.
            if anonymous && !marked.is_empty() {
                continue 'group;
            }
            valid.push(g.into_iter().map(|(ai, own, c, _)| (ai, own, c)).collect());
        }
        let orbit_count = valid.len();
        let group = valid.into_iter().max_by_key(Vec::len)?;

        let members: Vec<Member> = group
            .iter()
            .enumerate()
            .map(|(ord, (ai, own, clocks))| Member {
                aut: *ai,
                id: own.unwrap_or(ord as i64),
                clocks: clocks.clone(),
            })
            .collect();
        let anonymous = group[0].1.is_none();
        let ids: BTreeSet<i64> = members.iter().map(|m| m.id).collect();
        let own_by_aut: BTreeMap<usize, i64> = members.iter().map(|m| (m.aut, m.id)).collect();

        let mut id_channels = vec![false; net.channels.len()];
        for m in &members {
            for e in &net.automata[m.aut].edges {
                if let Some(sync) = &e.sync {
                    id_channels[sync.channel.index()] = true;
                }
            }
        }

        // 2.–3. Data-flow scan: pin singled-out identities, bail on any
        // untrackable identity flow.
        let mut pins: BTreeSet<i64> = BTreeSet::new();
        if !anonymous {
            // Renamed identities must stay storable in every marked slot.
            for &v in &marked {
                let info = net.decls.info(v);
                if ids.first().is_some_and(|&min| min < info.lo)
                    || ids.last().is_some_and(|&max| max > info.hi)
                {
                    return None;
                }
            }
            let mut scan = Scan {
                marked: &marked,
                ids: &ids,
                pins: &mut pins,
                own: None,
            };
            for (ai, a) in net.automata.iter().enumerate() {
                // Inside a member, its own identity constant transforms
                // covariantly with the automaton itself.
                scan.own = own_by_aut.get(&ai).copied();
                for e in &a.edges {
                    scan.guard(&e.guard_data, &e.selects)?;
                    scan.stmt(&e.update, &e.selects)?;
                    for (_, v) in &e.resets {
                        if scan.classify(v, &e.selects)? == Kind::Id {
                            return None;
                        }
                    }
                    if let Some(sync) = &e.sync {
                        scan.sync_index(
                            &sync.index,
                            &e.selects,
                            id_channels[sync.channel.index()],
                        )?;
                    }
                }
            }
            // Initial values of marked variables single out identities.
            let init = net.decls.initial_store();
            for &v in &marked {
                let info = net.decls.info(v);
                for k in 0..info.len {
                    let w = init.get_index(&net.decls, v, k as i64).ok()?;
                    if ids.contains(&w) {
                        pins.insert(w);
                    }
                }
            }
        }

        // Property invariance: bail on untrackable marked-variable reads,
        // then pin identities the formulas distinguish.
        for f in formulas {
            if !formula_tracks_ids(f, &marked) {
                return None;
            }
        }
        let mut free: Vec<i64> = ids.iter().copied().filter(|v| !pins.contains(v)).collect();
        loop {
            let mut breaks: BTreeMap<i64, usize> = BTreeMap::new();
            for i in 0..free.len() {
                for j in i + 1..free.len() {
                    let (a, b) = (free[i], free[j]);
                    if formulas
                        .iter()
                        .any(|f| !transposition_invariant(f, &members, a, b))
                    {
                        *breaks.entry(a).or_default() += 1;
                        *breaks.entry(b).or_default() += 1;
                    }
                }
            }
            let Some((&worst, _)) = breaks.iter().max_by_key(|&(_, &c)| c) else {
                break;
            };
            free.retain(|&v| v != worst);
        }
        free.truncate(MAX_FREE);
        if free.len() < 2 {
            return None;
        }

        // 4. Enumerate the group Sym(free) as explicit automorphisms.
        let sym = Symmetry {
            perms: Vec::new(),
            members,
            marked,
            id_channels,
            orbit_count,
        };
        let mut perms = Vec::new();
        let mut images = free.clone();
        permutations(&mut images, 0, &mut |img| {
            let id_map: Vec<(i64, i64)> = free.iter().copied().zip(img.iter().copied()).collect();
            perms.push(sym.perm_from_id_map(net, id_map));
        });
        // The identity first, then a deterministic order.
        perms.sort_by(|a, b| (!a.is_identity(), &a.id_map).cmp(&(!b.is_identity(), &b.id_map)));
        Some(Symmetry { perms, ..sym })
    }

    /// Number of valid orbit groups detected in the network.
    #[must_use]
    pub fn orbit_count(&self) -> usize {
        self.orbit_count
    }

    /// Number of group elements (including the identity).
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.perms.len()
    }

    /// The group element at `idx` (`0` is the identity).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn perm(&self, idx: usize) -> &Perm {
        &self.perms[idx]
    }

    fn perm_from_id_map(&self, net: &Network, mut id_map: Vec<(i64, i64)>) -> Perm {
        id_map.sort_unstable();
        let mut aut_map: Vec<usize> = (0..net.automata.len()).collect();
        let mut clock_map: Vec<usize> = (0..net.dim()).collect();
        let by_id: BTreeMap<i64, &Member> = self.members.iter().map(|m| (m.id, m)).collect();
        for m in &self.members {
            let target = match id_map.binary_search_by_key(&m.id, |&(from, _)| from) {
                Ok(i) => by_id[&id_map[i].1],
                Err(_) => continue,
            };
            aut_map[m.aut] = target.aut;
            for (old, new) in m.clocks.iter().zip(&target.clocks) {
                clock_map[*old] = *new;
            }
        }
        Perm {
            aut_map,
            clock_map,
            id_map,
        }
    }

    /// Applies a group element to a symbolic state.
    ///
    /// # Panics
    ///
    /// Panics if the state does not belong to the network the symmetry
    /// was detected on.
    #[must_use]
    pub fn apply(&self, net: &Network, p: &Perm, s: &SymState) -> SymState {
        let mut locs = s.locs.clone();
        for (old, &new) in p.aut_map.iter().enumerate() {
            locs[new] = s.locs[old];
        }
        let mut store = s.store.clone();
        for &v in &self.marked {
            let info = net.decls.info(v);
            for k in 0..info.len {
                let w = store
                    .get_index(&net.decls, v, k as i64)
                    .expect("index within declared length");
                let mapped = p.map_id(w);
                if mapped != w {
                    store
                        .set_index(&net.decls, v, k as i64, mapped)
                        .expect("detect() checked ids fit the declared range");
                }
            }
        }
        SymState {
            locs,
            store,
            zone: s.zone.permute(&p.clock_map),
        }
    }

    /// Applies a group element to a trace action (automaton ids, and the
    /// resolved channel index when the channel is identity-indexed).
    #[must_use]
    pub fn apply_action(&self, net: &Network, p: &Perm, a: &Action) -> Action {
        match a {
            Action::Internal { automaton, edge } => Action::Internal {
                automaton: AutomatonId(p.aut_map[automaton.index()]),
                edge: *edge,
            },
            Action::Sync {
                label,
                sender,
                receivers,
            } => {
                let id_indexed = net.automata[sender.0.index()].edges[sender.1]
                    .sync
                    .as_ref()
                    .is_some_and(|sy| self.id_channels[sy.channel.index()]);
                Action::Sync {
                    label: if id_indexed {
                        remap_label(label, |idx| p.map_id(idx))
                    } else {
                        label.clone()
                    },
                    sender: (AutomatonId(p.aut_map[sender.0.index()]), sender.1),
                    receivers: receivers
                        .iter()
                        .map(|(r, e)| (AutomatonId(p.aut_map[r.index()]), *e))
                        .collect(),
                }
            }
        }
    }

    /// The composition `a ∘ b` (apply `b`, then `a`).
    #[must_use]
    pub fn compose(&self, net: &Network, a: &Perm, b: &Perm) -> Perm {
        let mut id_map: Vec<(i64, i64)> = b
            .id_map
            .iter()
            .map(|&(from, mid)| (from, a.map_id(mid)))
            .collect();
        // Ids moved by `a` but fixed by `b` must still move.
        for &(from, to) in &a.id_map {
            if !id_map.iter().any(|&(f, _)| f == from) {
                id_map.push((from, to));
            }
        }
        self.perm_from_id_map(net, id_map)
    }

    /// The inverse group element.
    #[must_use]
    pub fn invert(&self, net: &Network, p: &Perm) -> Perm {
        let id_map = p.id_map.iter().map(|&(from, to)| (to, from)).collect();
        self.perm_from_id_map(net, id_map)
    }

    /// Canonicalizes a state: the lexicographically smallest image of
    /// `s` under the group, together with the index of the permutation
    /// that produced it.
    #[must_use]
    pub fn canonicalize(&self, net: &Network, s: &SymState) -> (SymState, usize) {
        let mut best = s.clone();
        let mut best_idx = 0;
        for (i, p) in self.perms.iter().enumerate().skip(1) {
            let cand = self.apply(net, p, s);
            if state_key(&cand) < state_key(&best) {
                best = cand;
                best_idx = i;
            }
        }
        (best, best_idx)
    }
}

/// Comparison key of a state for canonical-representative selection.
fn state_key(s: &SymState) -> (&[crate::model::LocationId], &tempo_expr::Store, Vec<i64>) {
    (
        &s.locs,
        &s.store,
        s.zone.as_slice().iter().map(|b| b.raw()).collect(),
    )
}

/// Rewrites the resolved index inside a sync label `chan[idx]` /
/// `chan[idx]!!`.
fn remap_label(label: &str, map: impl Fn(i64) -> i64) -> String {
    let (Some(open), Some(close)) = (label.find('['), label.rfind(']')) else {
        return label.to_owned();
    };
    let Ok(idx) = label[open + 1..close].parse::<i64>() else {
        return label.to_owned();
    };
    format!("{}[{}]{}", &label[..open], map(idx), &label[close + 1..])
}

/// Realizes a canonicalized trace as a concrete run of the original
/// network: `steps` are `(state, action-into-state, perm-index)` from
/// the initial state to the witness, as stored by the search; the
/// returned states and actions form an actual (symmetric) execution.
#[must_use]
pub fn realize(
    sym: &Symmetry,
    net: &Network,
    steps: &[(SymState, Option<Action>, usize)],
) -> Vec<(SymState, Option<Action>)> {
    let mut out = Vec::with_capacity(steps.len());
    let mut q: Option<Perm> = None;
    for (state, action, pidx) in steps {
        let p_inv = sym.invert(net, sym.perm(*pidx));
        let action = action.as_ref().map(|a| {
            q.as_ref()
                .map_or_else(|| a.clone(), |q| sym.apply_action(net, q, a))
        });
        let q_next = match &q {
            None => p_inv,
            Some(q) => sym.compose(net, q, &p_inv),
        };
        out.push((sym.apply(net, &q_next, state), action));
        q = Some(q_next);
    }
    out
}

/// A group of automata that look like replicated instances of one
/// template but cannot form a symmetry orbit, with the structural
/// obstacle that makes the reduction reject them.
///
/// Produced by [`near_miss_orbits`] for lint-level feedback: a modeller
/// who intended the components to be interchangeable gets told exactly
/// what breaks the symmetry, instead of silently losing the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NearMiss {
    /// Names of the automata in the would-be orbit.
    pub automata: Vec<String>,
    /// Human-readable description of the obstacle.
    pub reason: String,
}

/// Finds groups of automata that coarsely match (same location count and
/// edge graph shape, including channel usage) but fail the *structural*
/// orbit checks of [`Symmetry::detect`]: unequal normalized templates,
/// shared member clocks, duplicate or ambiguous identity constants, or a
/// mix of identified and anonymous members.
///
/// Groups that pass every structural check are **not** reported — they
/// are genuine orbit candidates (whether the reduction ultimately
/// applies also depends on the query formulas and the identity data
/// flow, which is per-analysis information a static lint cannot see).
#[must_use]
pub fn near_miss_orbits(net: &Network) -> Vec<NearMiss> {
    // Coarse shape: location count plus the edge graph with channel
    // endpoints — what stays identical across instances of one template
    // even when a guard constant or a reset was edited on one copy.
    type Shape = (usize, Vec<ShapeEdge>);
    let clock_users = clock_usage(net);
    let mut groups: BTreeMap<Shape, Vec<usize>> = BTreeMap::new();
    for (ai, a) in net.automata.iter().enumerate() {
        let mut edges: Vec<ShapeEdge> = a
            .edges
            .iter()
            .map(|e| {
                (
                    e.from.index(),
                    e.to.index(),
                    e.sync.as_ref().map(|s| {
                        (
                            s.channel.index(),
                            matches!(s.dir, crate::model::SyncDir::Send),
                        )
                    }),
                )
            })
            .collect();
        edges.sort_unstable();
        groups
            .entry((a.locations.len(), edges))
            .or_default()
            .push(ai);
    }

    let mut out = Vec::new();
    for (_, group) in groups {
        if group.len() < 2 {
            continue;
        }
        let names = |idxs: &[usize]| -> Vec<String> {
            idxs.iter()
                .map(|&ai| net.automata[ai].name.clone())
                .collect()
        };
        let report = |reason: &str, out: &mut Vec<NearMiss>| {
            out.push(NearMiss {
                automata: names(&group),
                reason: reason.to_owned(),
            });
        };
        // Identity constants: each member must mention at most one.
        let ids: Vec<Option<Option<i64>>> = group
            .iter()
            .map(|&ai| own_id_constant(&net.automata[ai]))
            .collect();
        if ids.iter().any(Option::is_none) {
            report(
                "a member mentions several distinct constants in its channel \
                 indices, so it has no single identity to permute",
                &mut out,
            );
            continue;
        }
        let ids: Vec<Option<i64>> = ids.into_iter().flatten().collect();
        if ids.iter().any(Option::is_some) && ids.iter().any(Option::is_none) {
            report(
                "some members carry an identity constant in their channel \
                 indices and some do not",
                &mut out,
            );
            continue;
        }
        let mut seen = BTreeSet::new();
        if ids.iter().flatten().any(|&id| !seen.insert(id)) {
            // Scalar channels carry an implicit `[0]` index; members that
            // only sync on scalars share that "identity" vacuously, which
            // calls for a different hint than a genuine id collision.
            let any_array = group.iter().any(|&ai| {
                net.automata[ai].edges.iter().any(|e| {
                    e.sync
                        .as_ref()
                        .is_some_and(|s| net.channels[s.channel.index()].size > 1)
                })
            });
            report(
                if any_array {
                    "two members use the same identity constant, so permuting \
                     them would not be injective"
                } else {
                    "members synchronize only on scalar channels and carry no \
                     per-member identity; give each instance its own \
                     channel-array slot to enable the reduction"
                },
                &mut out,
            );
            continue;
        }
        // Structural equality of the normalized templates.
        let norms: Vec<Automaton> = group
            .iter()
            .zip(&ids)
            .map(|(&ai, &own)| {
                let a = &net.automata[ai];
                normalized_template(a, own, &member_clocks(a))
            })
            .collect();
        if let Some(k) = (1..norms.len()).find(|&k| norms[k] != norms[0]) {
            out.push(NearMiss {
                automata: names(&group),
                reason: format!(
                    "{} and {} have the same shape but differ in guards, \
                     invariants, resets or updates; symmetry reduction only \
                     folds exactly identical templates",
                    net.automata[group[0]].name, net.automata[group[k]].name
                ),
            });
            continue;
        }
        // Clock privacy: a member clock read or reset elsewhere couples
        // the members and defeats the clock renaming.
        let shared = group.iter().find_map(|&ai| {
            member_clocks(&net.automata[ai])
                .into_iter()
                .find(|&c| clock_users[c].iter().any(|&u| u != ai))
                .map(|c| (ai, c))
        });
        if let Some((ai, c)) = shared {
            out.push(NearMiss {
                automata: names(&group),
                reason: format!(
                    "clock '{}' of {} is also used by another automaton; \
                     member clocks must be private for the orbit to permute",
                    net.clock_names()
                        .get(c.saturating_sub(1))
                        .map_or("?", String::as_str),
                    net.automata[ai].name
                ),
            });
        }
        // Otherwise: a genuine candidate orbit — nothing to report.
    }
    out
}

/// Which automata use each clock column (guards, invariants, resets).
fn clock_usage(net: &Network) -> Vec<Vec<usize>> {
    let mut users = vec![Vec::new(); net.dim()];
    let note = |col: usize, ai: usize, users: &mut Vec<Vec<usize>>| {
        if col != 0 && !users[col].contains(&ai) {
            users[col].push(ai);
        }
    };
    for (ai, a) in net.automata.iter().enumerate() {
        for l in &a.locations {
            for atom in &l.invariant {
                note(atom.i.index(), ai, &mut users);
                note(atom.j.index(), ai, &mut users);
            }
        }
        for e in &a.edges {
            for atom in &e.guard_clocks {
                note(atom.i.index(), ai, &mut users);
                note(atom.j.index(), ai, &mut users);
            }
            for (c, _) in &e.resets {
                note(c.index(), ai, &mut users);
            }
        }
    }
    users
}

/// The clock columns an automaton uses, in first-use order (the
/// alignment the structural isomorphism maps between members).
fn member_clocks(a: &Automaton) -> Vec<usize> {
    let mut clocks = Vec::new();
    let note = |col: usize, clocks: &mut Vec<usize>| {
        if col != 0 && !clocks.contains(&col) {
            clocks.push(col);
        }
    };
    for l in &a.locations {
        for atom in &l.invariant {
            note(atom.i.index(), &mut clocks);
            note(atom.j.index(), &mut clocks);
        }
    }
    for e in &a.edges {
        for atom in &e.guard_clocks {
            note(atom.i.index(), &mut clocks);
            note(atom.j.index(), &mut clocks);
        }
        for (c, _) in &e.resets {
            note(c.index(), &mut clocks);
        }
    }
    clocks
}

/// The single constant used in the automaton's sync-index expressions
/// (its identity); `Some(None)` if it syncs without any constant or not
/// at all (an anonymous candidate); `None` if several distinct constants
/// appear (not a template instance we can handle).
fn own_id_constant(a: &Automaton) -> Option<Option<i64>> {
    let mut consts = BTreeSet::new();
    for e in &a.edges {
        if let Some(sync) = &e.sync {
            collect_consts(&sync.index, &mut consts);
        }
    }
    match consts.len() {
        0 => Some(None),
        1 => Some(consts.into_iter().next()),
        _ => None,
    }
}

fn collect_consts(e: &Expr, out: &mut BTreeSet<i64>) {
    match e {
        Expr::Const(c) => {
            out.insert(*c);
        }
        Expr::Var(_) | Expr::Select(_) => {}
        Expr::Index(_, i) => collect_consts(i, out),
        Expr::Unary(_, a) => collect_consts(a, out),
        Expr::Binary(_, a, b) => {
            collect_consts(a, out);
            collect_consts(b, out);
        }
    }
}

/// A copy of the automaton with its name cleared, private clocks
/// renumbered to `1..` in first-use order and its identity constant
/// replaced by a placeholder in sync indices — equal normalized
/// templates are exactly the symmetric ones.
fn normalized_template(a: &Automaton, own_id: Option<i64>, clocks: &[usize]) -> Automaton {
    let map_clock = |c: Clock| -> Clock {
        match clocks.iter().position(|&k| k == c.index()) {
            Some(pos) => Clock(pos + 1),
            None => c,
        }
    };
    let map_atom = |atom: &ClockAtom| ClockAtom {
        i: map_clock(atom.i),
        j: map_clock(atom.j),
        bound: atom.bound,
    };
    let mut norm = a.clone();
    norm.name = String::new();
    for l in &mut norm.locations {
        for atom in &mut l.invariant {
            *atom = map_atom(atom);
        }
    }
    for e in &mut norm.edges {
        for atom in &mut e.guard_clocks {
            *atom = map_atom(atom);
        }
        for (c, _) in &mut e.resets {
            *c = map_clock(*c);
        }
        if let Some(sync) = &mut e.sync {
            if let Some(id) = own_id {
                sync.index = substitute_const(&sync.index, id, i64::MIN);
            }
        }
    }
    norm
}

fn substitute_const(e: &Expr, from: i64, to: i64) -> Expr {
    match e {
        Expr::Const(c) if *c == from => Expr::Const(to),
        Expr::Const(_) | Expr::Var(_) | Expr::Select(_) => e.clone(),
        Expr::Index(v, i) => Expr::Index(*v, Box::new(substitute_const(i, from, to))),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(substitute_const(a, from, to))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute_const(a, from, to)),
            Box::new(substitute_const(b, from, to)),
        ),
    }
}

/// What an expression denotes with respect to component identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Definitely an identity value (marked variable, covering select).
    Id,
    /// A literal constant.
    Const(i64),
    /// Ordinary data, provably identity-free.
    Plain,
}

/// The identity data-flow scan. Every method returns `None` to signal
/// "identity flow we cannot track — disable symmetry".
struct Scan<'a> {
    marked: &'a [VarId],
    ids: &'a BTreeSet<i64>,
    pins: &'a mut BTreeSet<i64>,
    /// When scanning a member's edges, that member's own identity
    /// constant (it transforms covariantly with the automaton).
    own: Option<i64>,
}

impl Scan<'_> {
    fn is_marked(&self, v: VarId) -> bool {
        self.marked.contains(&v)
    }

    /// Whether a select binding ranges over (at least) every identity,
    /// making it identity-shaped: the set of instances it quantifies is
    /// closed under the orbit permutations.
    fn select_covers(&self, k: usize, selects: &[(i64, i64)]) -> bool {
        selects.get(k).is_some_and(|&(lo, hi)| {
            self.ids.first().is_some_and(|&min| lo <= min)
                && self.ids.last().is_some_and(|&max| hi >= max)
        })
    }

    fn pin(&mut self, c: i64) {
        if self.ids.contains(&c) {
            self.pins.insert(c);
        }
    }

    fn classify(&mut self, e: &Expr, selects: &[(i64, i64)]) -> Option<Kind> {
        Some(match e {
            Expr::Const(c) => Kind::Const(*c),
            Expr::Var(v) => {
                if self.is_marked(*v) {
                    Kind::Id
                } else {
                    Kind::Plain
                }
            }
            Expr::Index(v, idx) => {
                let ki = self.classify(idx, selects)?;
                if self.is_marked(*v) {
                    // Subscripts of marked arrays are positions; an
                    // identity-valued subscript would couple position
                    // and identity.
                    if ki == Kind::Id {
                        return None;
                    }
                    Kind::Id
                } else {
                    if ki == Kind::Id {
                        return None; // data array subscripted by an id
                    }
                    Kind::Plain
                }
            }
            Expr::Select(k) => {
                if self.select_covers(*k, selects) {
                    Kind::Id
                } else {
                    Kind::Plain
                }
            }
            Expr::Unary(op, a) => {
                let ka = self.classify(a, selects)?;
                match (op, ka) {
                    (_, Kind::Id) => return None,
                    (UnOp::Neg, Kind::Const(c)) => Kind::Const(-c),
                    _ => Kind::Plain,
                }
            }
            Expr::Binary(op, a, b) => {
                let ka = self.classify(a, selects)?;
                let kb = self.classify(b, selects)?;
                match op {
                    BinOp::Eq | BinOp::Ne => match (ka, kb) {
                        (Kind::Id, Kind::Const(c)) | (Kind::Const(c), Kind::Id) => {
                            self.pin(c);
                            Kind::Plain
                        }
                        (Kind::Id, Kind::Id) => Kind::Plain,
                        (Kind::Id, Kind::Plain) | (Kind::Plain, Kind::Id) => return None,
                        _ => Kind::Plain,
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        // Orderings are not permutation-invariant.
                        if ka == Kind::Id || kb == Kind::Id {
                            return None;
                        }
                        Kind::Plain
                    }
                    _ => {
                        // Arithmetic/boolean ops on identities break the
                        // bijection.
                        if ka == Kind::Id || kb == Kind::Id {
                            return None;
                        }
                        match (ka, kb, op) {
                            (Kind::Const(x), Kind::Const(y), BinOp::Add) => Kind::Const(x + y),
                            (Kind::Const(x), Kind::Const(y), BinOp::Sub) => Kind::Const(x - y),
                            (Kind::Const(x), Kind::Const(y), BinOp::Mul) => Kind::Const(x * y),
                            _ => Kind::Plain,
                        }
                    }
                }
            }
        })
    }

    fn guard(&mut self, e: &Expr, selects: &[(i64, i64)]) -> Option<()> {
        (self.classify(e, selects)? != Kind::Id).then_some(())
    }

    fn stmt(&mut self, s: &Stmt, selects: &[(i64, i64)]) -> Option<()> {
        match s {
            Stmt::Skip => Some(()),
            Stmt::Assign(v, e) => self.assignment(*v, e, selects),
            Stmt::AssignIndex(v, idx, e) => {
                if self.classify(idx, selects)? == Kind::Id {
                    return None; // position ↔ identity coupling
                }
                self.assignment(*v, e, selects)
            }
            Stmt::Seq(ss) => {
                for s in ss {
                    self.stmt(s, selects)?;
                }
                Some(())
            }
            Stmt::If(c, t, e) => {
                self.guard(c, selects)?;
                self.stmt(t, selects)?;
                self.stmt(e, selects)
            }
            Stmt::While(c, b) => {
                self.guard(c, selects)?;
                self.stmt(b, selects)
            }
        }
    }

    fn assignment(&mut self, v: VarId, e: &Expr, selects: &[(i64, i64)]) -> Option<()> {
        let k = self.classify(e, selects)?;
        if self.is_marked(v) {
            match k {
                Kind::Id => Some(()),
                Kind::Const(c) => {
                    self.pin(c);
                    Some(())
                }
                Kind::Plain => None, // untracked value flows into an id slot
            }
        } else {
            (k != Kind::Id).then_some(()) // an id escapes into plain data
        }
    }

    /// A sync-index expression. On an identity-indexed channel the index
    /// names a component: constants pin (unless they are the scanning
    /// member's own id, which transforms covariantly with the automaton
    /// itself — the `chan[my_id]` idiom, the one spot where template
    /// normalization substitutes the constant away), plain variables are
    /// untrackable.
    fn sync_index(&mut self, e: &Expr, selects: &[(i64, i64)], id_indexed: bool) -> Option<()> {
        if id_indexed {
            if let (Expr::Const(c), Some(own)) = (e, self.own) {
                if *c == own {
                    return Some(());
                }
            }
        }
        let k = self.classify(e, selects)?;
        if !id_indexed {
            return (k != Kind::Id).then_some(());
        }
        match k {
            Kind::Id => Some(()),
            Kind::Const(c) => {
                self.pin(c);
                Some(())
            }
            Kind::Plain => None,
        }
    }
}

/// Whether the formula is free of untrackable identity references: a
/// [`StateFormula::Data`] atom reading a marked variable can compare
/// identities in ways the transposition check cannot rewrite, so any
/// such read disables symmetry outright.
fn formula_tracks_ids(f: &StateFormula, marked: &[VarId]) -> bool {
    match f {
        StateFormula::True
        | StateFormula::False
        | StateFormula::At(_, _)
        | StateFormula::Clock(_) => true,
        StateFormula::Data(e) => !expr_reads_marked(e, marked),
        StateFormula::Not(g) => formula_tracks_ids(g, marked),
        StateFormula::And(gs) | StateFormula::Or(gs) => {
            gs.iter().all(|g| formula_tracks_ids(g, marked))
        }
    }
}

fn expr_reads_marked(e: &Expr, marked: &[VarId]) -> bool {
    match e {
        Expr::Const(_) | Expr::Select(_) => false,
        Expr::Var(v) => marked.contains(v),
        Expr::Index(v, i) => marked.contains(v) || expr_reads_marked(i, marked),
        Expr::Unary(_, a) => expr_reads_marked(a, marked),
        Expr::Binary(_, a, b) => expr_reads_marked(a, marked) || expr_reads_marked(b, marked),
    }
}

/// Whether `f` is invariant under swapping members with identities `a`
/// and `b`, comparing normalized forms so that commutative `And`/`Or`
/// reorderings do not count as differences.
fn transposition_invariant(f: &StateFormula, members: &[Member], a: i64, b: i64) -> bool {
    let ma = members.iter().find(|m| m.id == a).expect("member by id");
    let mb = members.iter().find(|m| m.id == b).expect("member by id");
    let swapped = swap_formula(f, ma, mb);
    Fingerprint::of(&normalize_formula(&swapped)) == Fingerprint::of(&normalize_formula(f))
}

fn swap_formula(f: &StateFormula, a: &Member, b: &Member) -> StateFormula {
    let swap_aut = |x: AutomatonId| -> AutomatonId {
        if x.index() == a.aut {
            AutomatonId(b.aut)
        } else if x.index() == b.aut {
            AutomatonId(a.aut)
        } else {
            x
        }
    };
    let swap_clock = |c: Clock| -> Clock {
        if let Some(pos) = a.clocks.iter().position(|&k| k == c.index()) {
            Clock(b.clocks[pos])
        } else if let Some(pos) = b.clocks.iter().position(|&k| k == c.index()) {
            Clock(a.clocks[pos])
        } else {
            c
        }
    };
    match f {
        StateFormula::True => StateFormula::True,
        StateFormula::False => StateFormula::False,
        StateFormula::At(aut, loc) => StateFormula::At(swap_aut(*aut), *loc),
        StateFormula::Data(e) => StateFormula::Data(e.clone()),
        StateFormula::Clock(atom) => StateFormula::Clock(ClockAtom {
            i: swap_clock(atom.i),
            j: swap_clock(atom.j),
            bound: atom.bound,
        }),
        StateFormula::Not(g) => StateFormula::Not(Box::new(swap_formula(g, a, b))),
        StateFormula::And(gs) => {
            StateFormula::And(gs.iter().map(|g| swap_formula(g, a, b)).collect())
        }
        StateFormula::Or(gs) => {
            StateFormula::Or(gs.iter().map(|g| swap_formula(g, a, b)).collect())
        }
    }
}

fn normalize_formula(f: &StateFormula) -> StateFormula {
    match f {
        StateFormula::And(gs) => {
            let mut norm: Vec<StateFormula> = gs.iter().map(normalize_formula).collect();
            norm.sort_by_key(Fingerprint::of);
            StateFormula::And(norm)
        }
        StateFormula::Or(gs) => {
            let mut norm: Vec<StateFormula> = gs.iter().map(normalize_formula).collect();
            norm.sort_by_key(Fingerprint::of);
            StateFormula::Or(norm)
        }
        StateFormula::Not(g) => StateFormula::Not(Box::new(normalize_formula(g))),
        other => other.clone(),
    }
}

/// Enumeration of all permutations of `v[k..]`, invoking `f` on the
/// whole slice for each.
fn permutations(v: &mut [i64], k: usize, f: &mut impl FnMut(&[i64])) {
    if k + 1 >= v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permutations(v, k + 1, f);
        v.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LocationId, NetworkBuilder};

    /// `n` identical lamps (no channels, no data): an anonymous orbit.
    fn lamps(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let clocks: Vec<_> = (0..n).map(|i| b.clock(&format!("x{i}"))).collect();
        for (i, &x) in clocks.iter().enumerate() {
            let mut a = b.automaton(&format!("Lamp{i}"));
            let off = a.location("Off");
            let on = a.location_with_invariant("On", vec![ClockAtom::le(x, 10)]);
            a.edge(off, on).reset(x, 0).done();
            a.edge(on, off).guard_clock(ClockAtom::ge(x, 1)).done();
            a.done();
        }
        b.build()
    }

    #[test]
    fn detects_anonymous_orbit() {
        let net = lamps(3);
        let sym = Symmetry::detect(&net, &[&StateFormula::True]).expect("orbit");
        assert_eq!(sym.members.len(), 3);
        assert_eq!(sym.group_size(), 6);
        assert!(sym.perm(0).is_identity());
        assert_eq!(sym.orbit_count(), 1);
    }

    #[test]
    fn at_formula_pins_the_named_member() {
        let net = lamps(4);
        let goal = StateFormula::At(AutomatonId(0), LocationId(1));
        let sym = Symmetry::detect(&net, &[&goal]).expect("orbit");
        // Lamp 0 is pinned; lamps 1–3 stay permutable: 3! elements.
        assert_eq!(sym.group_size(), 6);
    }

    #[test]
    fn symmetric_states_share_a_representative() {
        let net = lamps(3);
        let sym = Symmetry::detect(&net, &[&StateFormula::True]).expect("orbit");
        let exp = crate::Explorer::new(&net);
        let init = exp.initial_state();
        // The three "lamp i switches on" successors form one orbit.
        let succs = exp.successors(&init);
        assert_eq!(succs.len(), 3);
        let reps: Vec<_> = succs
            .iter()
            .map(|(_, s)| sym.canonicalize(&net, s).0)
            .collect();
        assert_eq!(reps[0], reps[1]);
        assert_eq!(reps[1], reps[2]);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let net = lamps(3);
        let sym = Symmetry::detect(&net, &[&StateFormula::True]).expect("orbit");
        let exp = crate::Explorer::new(&net);
        for (_, s) in exp.successors(&exp.initial_state()) {
            let (c1, _) = sym.canonicalize(&net, &s);
            let (c2, idx) = sym.canonicalize(&net, &c1);
            assert_eq!(c1, c2);
            assert_eq!(idx, 0, "a representative maps to itself");
        }
    }

    #[test]
    fn compose_and_invert_round_trip() {
        let net = lamps(3);
        let sym = Symmetry::detect(&net, &[&StateFormula::True]).expect("orbit");
        let exp = crate::Explorer::new(&net);
        let (_, s) = exp.successors(&exp.initial_state()).remove(0);
        for i in 0..sym.group_size() {
            let p = sym.perm(i).clone();
            let inv = sym.invert(&net, &p);
            let round = sym.compose(&net, &inv, &p);
            assert!(round.is_identity());
            let back = sym.apply(&net, &inv, &sym.apply(&net, &p, &s));
            assert_eq!(back, s);
        }
    }
}
