//! Query-directed network slicing: disabling edges that provably never
//! fire.
//!
//! Two classes of edges are removed, both justified against the exact
//! joint-transition semantics of [`crate::Explorer`]:
//!
//! * **Empty guards** — the data guard's abstract [`truth`] under the
//!   global range fixpoint is [`Truth::False`] (or a `select` range is
//!   empty). The fixpoint over-approximates every reachable store, so
//!   the concrete guard fails in every reachable state: the edge never
//!   fires and never witnesses an urgent synchronization
//!   (`urgent_sync_enabled` re-checks the same data guard).
//! * **Synchronization-dead edges** — a binary sender or any receiver
//!   whose channel has no live opposite-direction edge in a *different*
//!   automaton. Binary pairs, broadcast receiver sets and the urgent
//!   delay-block check all require a partner with `bi != ai`, so such an
//!   edge can neither fire nor block delay. Broadcast senders fire
//!   alone and are never synchronization-dead. Disabling is iterated to
//!   a fixpoint: removing the last receiver of a channel kills its
//!   senders too.
//!
//! Disabled edges are rewritten in place — guard `false`, no
//! synchronization, no resets, no update, retargeted to their source —
//! so that **edge indices stay stable**. Recorded traces never contain
//! a disabled edge (it never fires), which keeps witness realization
//! against the original network valid. The cleared clock guards and
//! resets let the subsequent active-clock reduction remove clocks that
//! only those edges observed.

use tempo_expr::{Expr, Stmt, VarId};
use tempo_flow::{truth, Interval, Truth};

use crate::flow::{dead_variables, network_ranges};
use crate::model::{ChannelKind, Network, SyncDir};

/// The result of slicing a network: the rewritten model plus the
/// run-report metrics that describe what was removed.
#[derive(Clone, Debug)]
pub struct Slice {
    /// The sliced network. Automaton, location and edge indices are
    /// identical to the input; disabled edges are inert self-loops with
    /// a `false` guard.
    pub net: Network,
    /// Number of edges disabled (`sliced_edges`).
    pub disabled_edges: u64,
    /// Variables whose range fixpoint is strictly tighter than their
    /// declared range (`vars_narrowed`).
    pub vars_narrowed: u64,
    /// Write-only variables outside the cone of influence of every
    /// observable expression (candidates for freezing in the digital
    /// engines; reported as `sliced_vars`).
    pub dead_vars: Vec<VarId>,
}

/// Slices `net`: runs the global range fixpoint, disables provably
/// dead edges to a fixpoint, and collects the dead-variable set.
#[must_use]
pub fn slice(net: &Network) -> Slice {
    let ranges = network_ranges(net);
    let vars_narrowed = ranges.narrowed(net.decls()) as u64;
    let env = ranges.env(net.decls());

    let mut disabled: Vec<Vec<bool>> = net
        .automata()
        .iter()
        .map(|a| vec![false; a.edges.len()])
        .collect();

    // Empty guards and empty select ranges.
    for (ai, a) in net.automata().iter().enumerate() {
        for (ei, e) in a.edges.iter().enumerate() {
            if e.selects.iter().any(|&(lo, hi)| lo > hi) {
                disabled[ai][ei] = true;
                continue;
            }
            let selects: Vec<Interval> = e
                .selects
                .iter()
                .map(|&(lo, hi)| Interval::new(lo, hi))
                .collect();
            if truth(&e.guard_data, net.decls(), &env, &selects) == Truth::False {
                disabled[ai][ei] = true;
            }
        }
    }

    // Synchronization-dead edges, iterated: a disabled edge no longer
    // counts as a partner.
    loop {
        let mut changed = false;
        for (ai, a) in net.automata().iter().enumerate() {
            for (ei, e) in a.edges.iter().enumerate() {
                if disabled[ai][ei] {
                    continue;
                }
                let Some(sync) = &e.sync else { continue };
                let kind = net.channels()[sync.channel.index()].kind;
                if kind == ChannelKind::Broadcast && sync.dir == SyncDir::Send {
                    continue;
                }
                let want = match sync.dir {
                    SyncDir::Send => SyncDir::Recv,
                    SyncDir::Recv => SyncDir::Send,
                };
                let has_partner = net.automata().iter().enumerate().any(|(bi, b)| {
                    bi != ai
                        && b.edges.iter().enumerate().any(|(ri, r)| {
                            !disabled[bi][ri]
                                && r.sync
                                    .as_ref()
                                    .is_some_and(|rs| rs.channel == sync.channel && rs.dir == want)
                        })
                });
                if !has_partner {
                    disabled[ai][ei] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = net.clone();
    let mut count = 0u64;
    for (ai, a) in out.automata.iter_mut().enumerate() {
        for (ei, e) in a.edges.iter_mut().enumerate() {
            if disabled[ai][ei] {
                count += 1;
                e.to = e.from;
                e.selects.clear();
                e.guard_clocks.clear();
                e.guard_data = Expr::konst(0);
                e.sync = None;
                e.resets.clear();
                e.update = Stmt::Skip;
            }
        }
    }

    Slice {
        net: out,
        disabled_edges: count,
        vars_narrowed,
        dead_vars: dead_variables(net),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockAtom, NetworkBuilder};
    use crate::reach::ModelChecker;
    use crate::StateFormula;

    #[test]
    fn provably_false_guards_are_disabled() {
        let mut b = NetworkBuilder::new();
        let x = b.decls_mut().int("x", 0, 5);
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        // x stays in [0, 5]: the guard x > 100 can never fire.
        a.edge(l0, l1)
            .guard_data(tempo_expr::Expr::var(x).gt(tempo_expr::Expr::konst(100)))
            .done();
        a.edge(l0, l0)
            .update(tempo_expr::Stmt::assign(
                x,
                tempo_expr::Expr::var(x).bin(tempo_expr::BinOp::Min, tempo_expr::Expr::konst(5))
                    + tempo_expr::Expr::konst(0),
            ))
            .done();
        a.done();
        let net = b.build();
        let s = slice(&net);
        assert_eq!(s.disabled_edges, 1);
        let a_id = crate::model::AutomatonId(0);
        let mut mc = ModelChecker::new(&s.net);
        assert!(!mc.reachable(&StateFormula::at(a_id, l1)).reachable);
    }

    #[test]
    fn partnerless_syncs_are_disabled_transitively() {
        let mut b = NetworkBuilder::new();
        let c = b.channel("c");
        let d = b.channel("d");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        // c! has a receiver, but only in the same automaton: dead.
        a.edge(l0, l1).send(c).done();
        a.edge(l0, l1).recv(c).done();
        // d! pairs with B's d? — live.
        a.edge(l0, l1).send(d).done();
        a.done();
        let mut bb = b.automaton("B");
        let m0 = bb.location("M0");
        let m1 = bb.location("M1");
        bb.edge(m0, m1).recv(d).done();
        bb.done();
        let net = b.build();
        let s = slice(&net);
        assert_eq!(s.disabled_edges, 2, "both c edges die, both d edges live");
        let mut mc = ModelChecker::new(&s.net);
        assert!(
            mc.reachable(&StateFormula::at(crate::model::AutomatonId(1), m1))
                .reachable
        );
        assert!(
            mc.reachable(&StateFormula::at(crate::model::AutomatonId(0), l1))
                .reachable
        );
    }

    #[test]
    fn sliced_edges_free_clocks_for_reduction() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let dead = b.decls_mut().int("dead", 0, 0);
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        // The only observation of clock x sits on an edge whose guard
        // is provably false (dead == 1 while dead is always 0).
        a.edge(l0, l1)
            .guard_data(tempo_expr::Expr::var(dead).eq(tempo_expr::Expr::konst(1)))
            .guard_clock(ClockAtom::ge(x, 10))
            .done();
        a.edge(l0, l1).done();
        a.done();
        let net = b.build();
        let s = slice(&net);
        assert_eq!(s.disabled_edges, 1);
        let reduced = s.net.reduced();
        assert!(
            reduced.removed().contains(&"x".to_owned()),
            "clock x is only read by the dead edge and must be removable"
        );
        assert_eq!(net.reduced().removed().len(), 0, "unsliced keeps x");
    }
}
