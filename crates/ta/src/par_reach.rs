//! Parallel zone-graph exploration: N workers pulling from a shared waiting
//! list with a mutex-striped passed list keyed on the discrete part of each
//! symbolic state.
//!
//! The algorithm preserves the sequential engine's inclusion-reduction
//! semantics exactly: a successor zone is discarded iff some stored zone for
//! the same discrete state already contains it, and stored zones strictly
//! contained in a new zone are evicted. Because the explored set is a
//! fixpoint that does not depend on exploration order, the *verdict* is
//! identical to the sequential engine's at any thread count; the witness
//! trace may differ between runs (any valid trace to a goal state), which is
//! why the sequential path (`threads = 1`) remains the reference oracle for
//! trace-sensitive uses.

use crate::explore::{Action, Explorer, SymState};
use crate::formula::StateFormula;
use crate::model::{LocationId, Network};
use crate::reach::{Stats, Trace, TraceStep};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tempo_conc::{ShardedMap, WorkQueue};
use tempo_dbm::Dbm;
use tempo_expr::Store;
use tempo_obs::Governor;

/// Arena-crossing node handle: worker index + index in that worker's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeId {
    worker: u32,
    index: u32,
}

/// One node of a worker-local exploration arena.
struct Node {
    state: SymState,
    parent: Option<(NodeId, Action)>,
}

type DiscreteKey = (Vec<LocationId>, Store);

/// Explore the zone graph with `threads` workers until a state satisfying
/// `hit` is popped, the inclusion-reduced fixpoint is exhausted, or the
/// governor trips a budget limit (workers then drain cooperatively via
/// [`WorkQueue::stop_exhausted`]).
///
/// Returns the witness trace (if a hit was found), exploration statistics
/// aggregated across workers, and the waiting-list high-water mark.
/// States where `prune` holds everywhere are not expanded, mirroring the
/// sequential engine.
pub(crate) fn parallel_search<H>(
    net: &Network,
    explorer: &Explorer<'_>,
    threads: usize,
    hit: H,
    prune: Option<&StateFormula>,
    gov: &Governor,
) -> (Option<Trace>, Stats, usize)
where
    H: Fn(&SymState) -> bool + std::marker::Sync,
{
    let threads = threads.max(2);
    let queue: WorkQueue<(NodeId, SymState)> = WorkQueue::new(threads);
    let passed: ShardedMap<DiscreteKey, Vec<(NodeId, Dbm)>> = ShardedMap::for_threads(threads);
    let explored = AtomicUsize::new(0);
    let transitions = AtomicUsize::new(0);
    let goal_cell: Mutex<Option<NodeId>> = Mutex::new(None);

    let init = explorer.initial_state();
    let init_id = NodeId {
        worker: 0,
        index: 0,
    };
    let mut arenas: Vec<Vec<Node>> = (0..threads).map(|_| Vec::new()).collect();
    if gov.charge_state() {
        let key = init.discrete();
        let mut shard = passed.lock_shard(&key);
        shard.insert(key, vec![(init_id, init.zone.clone())]);
        drop(shard);
        arenas[0].push(Node {
            state: init.clone(),
            parent: None,
        });
        queue.push((init_id, init));

        std::thread::scope(|scope| {
            let (queue, passed) = (&queue, &passed);
            let (explored, transitions, goal_cell) = (&explored, &transitions, &goal_cell);
            let hit = &hit;
            for (w, arena) in arenas.iter_mut().enumerate() {
                scope.spawn(move || {
                    worker(
                        w as u32,
                        arena,
                        queue,
                        passed,
                        explored,
                        transitions,
                        goal_cell,
                        net,
                        explorer,
                        hit,
                        prune,
                        gov,
                    )
                });
            }
        });
    }

    let peak = queue.peak_len();
    let stats = Stats {
        explored: explored.load(Ordering::Relaxed),
        transitions: transitions.load(Ordering::Relaxed),
        stored: passed
            .into_inner()
            .map(|m| m.values().map(Vec::len).sum::<usize>())
            .sum(),
    };
    let trace = goal_cell
        .into_inner()
        .expect("goal cell poisoned")
        .map(|goal| build_trace(&arenas, goal));
    (trace, stats, peak)
}

#[allow(clippy::too_many_arguments)]
fn worker<H>(
    w: u32,
    arena: &mut Vec<Node>,
    queue: &WorkQueue<(NodeId, SymState)>,
    passed: &ShardedMap<DiscreteKey, Vec<(NodeId, Dbm)>>,
    explored: &AtomicUsize,
    transitions: &AtomicUsize,
    goal_cell: &Mutex<Option<NodeId>>,
    net: &Network,
    explorer: &Explorer<'_>,
    hit: &H,
    prune: Option<&StateFormula>,
    gov: &Governor,
) where
    H: Fn(&SymState) -> bool + std::marker::Sync,
{
    while let Some((id, state)) = queue.pop() {
        if !gov.check_time() {
            queue.stop_exhausted();
            return;
        }
        explored.fetch_add(1, Ordering::Relaxed);
        if hit(&state) {
            let mut goal = goal_cell.lock().expect("goal cell poisoned");
            if goal.is_none() {
                *goal = Some(id);
            }
            drop(goal);
            queue.stop();
            return;
        }
        if let Some(p) = prune {
            if p.holds_everywhere(net, &state) {
                continue;
            }
        }
        for (action, succ) in explorer.successors(&state) {
            if queue.is_stopped() {
                return;
            }
            transitions.fetch_add(1, Ordering::Relaxed);
            let key = succ.discrete();
            let mut shard = passed.lock_shard(&key);
            let entry = shard.entry(key).or_default();
            if entry.iter().any(|(_, zone)| succ.zone.is_subset_of(zone)) {
                continue;
            }
            if !gov.charge_state() {
                drop(shard);
                queue.stop_exhausted();
                return;
            }
            entry.retain(|(_, zone)| !zone.is_subset_of(&succ.zone));
            let nid = NodeId {
                worker: w,
                index: u32::try_from(arena.len()).expect("arena exceeds u32 indices"),
            };
            entry.push((nid, succ.zone.clone()));
            drop(shard);
            arena.push(Node {
                state: succ.clone(),
                parent: Some((id, action)),
            });
            queue.push((nid, succ));
        }
    }
}

/// Rebuild the witness by following parent pointers across worker arenas.
/// Runs strictly after all workers have joined, so every arena is complete.
fn build_trace(arenas: &[Vec<Node>], goal: NodeId) -> Trace {
    let mut rev = Vec::new();
    let mut cur = goal;
    loop {
        let node = &arenas[cur.worker as usize][cur.index as usize];
        match &node.parent {
            Some((parent, action)) => {
                rev.push(TraceStep {
                    action: Some(action.clone()),
                    state: node.state.clone(),
                });
                cur = *parent;
            }
            None => {
                rev.push(TraceStep {
                    action: None,
                    state: node.state.clone(),
                });
                break;
            }
        }
    }
    rev.reverse();
    Trace { steps: rev }
}
