//! Parallel zone-graph exploration: N workers pulling from a shared waiting
//! list with a mutex-striped passed list keyed on the discrete part of each
//! symbolic state.
//!
//! The algorithm preserves the sequential engine's inclusion-reduction
//! semantics exactly: a successor zone is discarded iff some stored zone for
//! the same discrete state already contains it, and stored zones strictly
//! contained in a new zone are evicted. Because the explored set is a
//! fixpoint that does not depend on exploration order, the *verdict* is
//! identical to the sequential engine's at any thread count; the witness
//! trace may differ between runs (any valid trace to a goal state), which is
//! why the sequential path (`threads = 1`) remains the reference oracle for
//! trace-sensitive uses.
//!
//! Partial-order and symmetry reduction are applied per successor
//! computation exactly as in the sequential engine ([`crate::por`],
//! [`crate::symmetry`]): states are canonicalized *before* the passed-list
//! probe, and the C3 cycle proviso re-expands a state fully whenever any of
//! its ample successors was subsumed. Both analyses are order-independent,
//! so verdicts stay identical at any thread count.
//!
//! When a [`SpillConfig`] is active, states beyond the resident budget are
//! serialized into a shared append-only [`StateLog`] and only a
//! [`ZoneSummary`] plus content fingerprint stays resident, mirroring the
//! sequential [`tempo_obs::SpillStore`]. Lock order is shard → log: a
//! worker may fault a record while holding a passed-list shard, and the
//! log's reader/writer mutexes are leaves, so no cycle is possible. Any
//! I/O failure or corrupt record stops every worker and surfaces as a
//! typed [`SpillError`] — never a wrong verdict.

use crate::codec::{decode_state, encode_state, ZoneSummary};
use crate::explore::{Action, Explorer, SymState};
use crate::formula::StateFormula;
use crate::model::{LocationId, Network};
use crate::por::Por;
use crate::reach::{Stats, Trace, TraceStep};
use crate::symmetry::Symmetry;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use tempo_conc::{RecordRef, ShardedMap, SpillError, StateLog, WorkQueue};
use tempo_dbm::Dbm;
use tempo_expr::Store;
use tempo_obs::{
    create_state_log, payload_digest, Fingerprint, Governor, SpillConfig, SpillMetrics,
};

/// Arena-crossing node handle: worker index + index in that worker's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeId {
    worker: u32,
    index: u32,
}

/// One node of a worker-local exploration arena. `perm` is the index of
/// the symmetry permutation that canonicalized the state (`0` when
/// symmetry is off).
struct Node {
    place: NodePlace,
    parent: Option<(NodeId, Action)>,
    perm: usize,
}

/// Where an arena node's full state lives.
enum NodePlace {
    /// Fully in memory.
    Resident(SymState),
    /// In the shared spill log; faulted back for trace reconstruction.
    Spilled(RecordRef, Fingerprint),
}

/// A passed-list entry: the zone of a stored state, resident or spilled
/// behind its summary.
enum Stored {
    Resident(Dbm),
    Spilled(ZoneSummary, RecordRef, Fingerprint),
}

/// A waiting-list item: the full state, or a spill-log reference faulted
/// on pop.
enum Payload {
    Full(SymState),
    Ref(RecordRef, Fingerprint),
}

type DiscreteKey = (Vec<LocationId>, Store);

/// Shared atomic counters for the reduction statistics.
struct Reductions {
    por_ample: AtomicUsize,
    por_fallback: AtomicUsize,
    sym_avoided: AtomicUsize,
}

/// Shared out-of-core context: the spill log plus residency accounting.
struct SpillCtx {
    log: StateLog,
    resident_budget: usize,
    resident: AtomicUsize,
    spilled: AtomicU64,
    faults: AtomicU64,
}

impl SpillCtx {
    fn create(config: &SpillConfig) -> Result<Self, SpillError> {
        Ok(SpillCtx {
            log: create_state_log(config)?,
            resident_budget: config.resident_budget,
            resident: AtomicUsize::new(0),
            spilled: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        })
    }

    /// Faults one record back from the shared log, verifying checksum and
    /// content fingerprint before decoding.
    fn fault(&self, rec: RecordRef, digest: Fingerprint) -> Result<SymState, SpillError> {
        self.faults.fetch_add(1, Ordering::Relaxed);
        let payload = self.log.read(rec)?;
        if payload_digest(&payload) != digest {
            return Err(SpillError::Corrupt {
                offset: rec.offset,
                detail: "payload fingerprint mismatch".to_owned(),
            });
        }
        decode_state(&payload).map_err(|detail| SpillError::Corrupt {
            offset: rec.offset,
            detail,
        })
    }

    fn metrics(&self) -> SpillMetrics {
        SpillMetrics {
            spilled_states: self.spilled.load(Ordering::Relaxed),
            spill_bytes: self.log.bytes_written(),
            spill_faults: self.faults.load(Ordering::Relaxed),
        }
    }
}

/// Builds the three representations of a newly stored state: its
/// passed-list entry, its arena place, and its waiting-list payload —
/// resident within the budget, spilled to the shared log beyond it.
fn place_state(
    spill: Option<&SpillCtx>,
    state: &SymState,
) -> Result<(Stored, NodePlace, Payload), SpillError> {
    if let Some(ctx) = spill {
        // fetch_add hands out exactly `resident_budget` residency slots.
        if ctx.resident.fetch_add(1, Ordering::Relaxed) >= ctx.resident_budget {
            let payload = encode_state(state);
            let rec = ctx.log.append(&payload)?;
            let digest = payload_digest(&payload);
            ctx.spilled.fetch_add(1, Ordering::Relaxed);
            return Ok((
                Stored::Spilled(ZoneSummary::of(&state.zone), rec, digest),
                NodePlace::Spilled(rec, digest),
                Payload::Ref(rec, digest),
            ));
        }
    }
    Ok((
        Stored::Resident(state.zone.clone()),
        NodePlace::Resident(state.clone()),
        Payload::Full(state.clone()),
    ))
}

/// Explore the zone graph with `threads` workers until a state satisfying
/// `hit` is popped, the inclusion-reduced fixpoint is exhausted, or the
/// governor trips a budget limit (workers then drain cooperatively via
/// [`WorkQueue::stop_exhausted`]).
///
/// Returns the witness trace (if a hit was found), exploration statistics
/// aggregated across workers, the waiting-list high-water mark, and the
/// out-of-core accounting. States where `prune` holds everywhere are not
/// expanded, mirroring the sequential engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_search<H>(
    net: &Network,
    explorer: &Explorer<'_>,
    threads: usize,
    hit: H,
    prune: Option<&StateFormula>,
    por: Option<&Por>,
    sym: Option<&Symmetry>,
    spill: Option<&SpillConfig>,
    gov: &Governor,
) -> Result<(Option<Trace>, Stats, usize, SpillMetrics), SpillError>
where
    H: Fn(&SymState) -> bool + std::marker::Sync,
{
    let threads = threads.max(2);
    let spill = spill.map(SpillCtx::create).transpose()?;
    let spill = spill.as_ref();
    let queue: WorkQueue<(NodeId, Payload)> = WorkQueue::new(threads);
    let passed: ShardedMap<DiscreteKey, Vec<(NodeId, Stored)>> = ShardedMap::for_threads(threads);
    let explored = AtomicUsize::new(0);
    let transitions = AtomicUsize::new(0);
    let reductions = Reductions {
        por_ample: AtomicUsize::new(0),
        por_fallback: AtomicUsize::new(0),
        sym_avoided: AtomicUsize::new(0),
    };
    let goal_cell: Mutex<Option<NodeId>> = Mutex::new(None);
    let error_cell: Mutex<Option<SpillError>> = Mutex::new(None);

    let init = explorer.initial_state();
    let (init, init_perm) = match sym {
        Some(s) => s.canonicalize(net, &init),
        None => (init, 0),
    };
    let init_id = NodeId {
        worker: 0,
        index: 0,
    };
    let mut arenas: Vec<Vec<Node>> = (0..threads).map(|_| Vec::new()).collect();
    if gov.charge_state() {
        let (stored, node_place, payload) = place_state(spill, &init)?;
        let key = init.discrete();
        let mut shard = passed.lock_shard(&key);
        shard.insert(key, vec![(init_id, stored)]);
        drop(shard);
        arenas[0].push(Node {
            place: node_place,
            parent: None,
            perm: init_perm,
        });
        queue.push((init_id, payload));

        std::thread::scope(|scope| {
            let (queue, passed) = (&queue, &passed);
            let (explored, transitions, goal_cell) = (&explored, &transitions, &goal_cell);
            let (reductions, error_cell) = (&reductions, &error_cell);
            let hit = &hit;
            for (w, arena) in arenas.iter_mut().enumerate() {
                scope.spawn(move || {
                    worker(
                        w as u32,
                        arena,
                        queue,
                        passed,
                        explored,
                        transitions,
                        reductions,
                        goal_cell,
                        error_cell,
                        net,
                        explorer,
                        hit,
                        prune,
                        por,
                        sym,
                        spill,
                        gov,
                    )
                });
            }
        });
    }

    if let Some(err) = error_cell.into_inner().expect("error cell poisoned") {
        return Err(err);
    }
    let peak = queue.peak_len();
    let stats = Stats {
        explored: explored.load(Ordering::Relaxed),
        transitions: transitions.load(Ordering::Relaxed),
        stored: passed
            .into_inner()
            .map(|m| m.values().map(Vec::len).sum::<usize>())
            .sum(),
        por_ample: reductions.por_ample.load(Ordering::Relaxed),
        por_fallback: reductions.por_fallback.load(Ordering::Relaxed),
        sym_orbits: sym.map_or(0, Symmetry::orbit_count),
        sym_avoided: reductions.sym_avoided.load(Ordering::Relaxed),
    };
    let metrics = spill.map(SpillCtx::metrics).unwrap_or_default();
    let trace = goal_cell
        .into_inner()
        .expect("goal cell poisoned")
        .map(|goal| build_trace(&arenas, goal, net, sym, spill))
        .transpose()?;
    Ok((trace, stats, peak, metrics))
}

/// Records the first spill failure and stops every worker: a torn or
/// corrupt record must abort the whole query, never skew its verdict.
fn fail(
    error_cell: &Mutex<Option<SpillError>>,
    queue: &WorkQueue<(NodeId, Payload)>,
    err: SpillError,
) {
    let mut cell = error_cell.lock().expect("error cell poisoned");
    if cell.is_none() {
        *cell = Some(err);
    }
    drop(cell);
    queue.stop();
}

#[allow(clippy::too_many_arguments)]
fn worker<H>(
    w: u32,
    arena: &mut Vec<Node>,
    queue: &WorkQueue<(NodeId, Payload)>,
    passed: &ShardedMap<DiscreteKey, Vec<(NodeId, Stored)>>,
    explored: &AtomicUsize,
    transitions: &AtomicUsize,
    reductions: &Reductions,
    goal_cell: &Mutex<Option<NodeId>>,
    error_cell: &Mutex<Option<SpillError>>,
    net: &Network,
    explorer: &Explorer<'_>,
    hit: &H,
    prune: Option<&StateFormula>,
    por: Option<&Por>,
    sym: Option<&Symmetry>,
    spill: Option<&SpillCtx>,
    gov: &Governor,
) where
    H: Fn(&SymState) -> bool + std::marker::Sync,
{
    while let Some((id, payload)) = queue.pop() {
        if !gov.check_time() {
            queue.stop_exhausted();
            return;
        }
        let state = match payload {
            Payload::Full(s) => s,
            Payload::Ref(rec, digest) => {
                let ctx = spill.expect("spilled payload without spill context");
                match ctx.fault(rec, digest) {
                    Ok(s) => s,
                    Err(e) => {
                        fail(error_cell, queue, e);
                        return;
                    }
                }
            }
        };
        explored.fetch_add(1, Ordering::Relaxed);
        if hit(&state) {
            let mut goal = goal_cell.lock().expect("goal cell poisoned");
            if goal.is_none() {
                *goal = Some(id);
            }
            drop(goal);
            queue.stop();
            return;
        }
        if let Some(p) = prune {
            if p.holds_everywhere(net, &state) {
                continue;
            }
        }
        let (mut pending, mut used_ample) = match por {
            Some(p) => match p.ample(explorer, &state) {
                Some(s) => (s, true),
                None => (explorer.successors(&state), false),
            },
            None => (explorer.successors(&state), false),
        };
        if por.is_some() {
            if used_ample {
                reductions.por_ample.fetch_add(1, Ordering::Relaxed);
            } else {
                reductions.por_fallback.fetch_add(1, Ordering::Relaxed);
            }
        }
        loop {
            let mut any_subsumed = false;
            for (action, succ) in pending {
                if queue.is_stopped() {
                    return;
                }
                transitions.fetch_add(1, Ordering::Relaxed);
                let (succ, perm) = match sym {
                    Some(s) => s.canonicalize(net, &succ),
                    None => (succ, 0),
                };
                let key = succ.discrete();
                let mut shard = passed.lock_shard(&key);
                let entry = shard.entry(key).or_default();
                // Inclusion probe: succ ⊆ some stored zone? Spilled
                // entries answer from the summary when they can and
                // fault the full record only on a possible hit.
                let mut subsumed = false;
                for (_, stored) in entry.iter() {
                    let covers = match stored {
                        Stored::Resident(zone) => succ.zone.is_subset_of(zone),
                        Stored::Spilled(summary, rec, digest) => {
                            if !summary.may_contain(&succ.zone) {
                                continue;
                            }
                            let ctx = spill.expect("spilled entry without spill context");
                            match ctx.fault(*rec, *digest) {
                                Ok(full) => succ.zone.is_subset_of(&full.zone),
                                Err(e) => {
                                    drop(shard);
                                    fail(error_cell, queue, e);
                                    return;
                                }
                            }
                        }
                    };
                    if covers {
                        subsumed = true;
                        break;
                    }
                }
                if subsumed {
                    any_subsumed = true;
                    if perm != 0 {
                        reductions.sym_avoided.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                if !gov.charge_state() {
                    drop(shard);
                    queue.stop_exhausted();
                    return;
                }
                // Evict stored zones strictly contained in the new one.
                let old = std::mem::take(entry);
                let mut kept = Vec::with_capacity(old.len() + 1);
                let mut fault_err = None;
                for item in old {
                    let evict = match &item.1 {
                        Stored::Resident(zone) => zone.is_subset_of(&succ.zone),
                        Stored::Spilled(summary, rec, digest) => {
                            if !summary.may_be_contained_in(&succ.zone) {
                                false
                            } else {
                                let ctx = spill.expect("spilled entry without spill context");
                                match ctx.fault(*rec, *digest) {
                                    Ok(full) => full.zone.is_subset_of(&succ.zone),
                                    Err(e) => {
                                        fault_err = Some(e);
                                        break;
                                    }
                                }
                            }
                        }
                    };
                    if !evict {
                        kept.push(item);
                    }
                }
                if let Some(e) = fault_err {
                    drop(shard);
                    fail(error_cell, queue, e);
                    return;
                }
                let nid = NodeId {
                    worker: w,
                    index: u32::try_from(arena.len()).expect("arena exceeds u32 indices"),
                };
                let (stored, node_place, queue_payload) = match place_state(spill, &succ) {
                    Ok(triple) => triple,
                    Err(e) => {
                        drop(shard);
                        fail(error_cell, queue, e);
                        return;
                    }
                };
                kept.push((nid, stored));
                *entry = kept;
                drop(shard);
                arena.push(Node {
                    place: node_place,
                    parent: Some((id, action)),
                    perm,
                });
                queue.push((nid, queue_payload));
            }
            // C3 cycle proviso — same rule as the sequential engine: an
            // ample successor was subsumed by a stored state, so the
            // reduced expansion may close a cycle that starves the
            // deferred transitions. Re-expand fully; already-inserted
            // ample successors dedup via the inclusion check.
            if used_ample && any_subsumed {
                pending = explorer.successors(&state);
                used_ample = false;
                reductions.por_ample.fetch_sub(1, Ordering::Relaxed);
                reductions.por_fallback.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            break;
        }
    }
}

/// Rebuild the witness by following parent pointers across worker arenas,
/// faulting spilled states back from the shared log, then realize it into
/// a concrete run of the original network when symmetry reduction
/// canonicalized the stored states.
/// Runs strictly after all workers have joined, so every arena is complete.
fn build_trace(
    arenas: &[Vec<Node>],
    goal: NodeId,
    net: &Network,
    sym: Option<&Symmetry>,
    spill: Option<&SpillCtx>,
) -> Result<Trace, SpillError> {
    let mut rev = Vec::new();
    let mut cur = goal;
    loop {
        let node = &arenas[cur.worker as usize][cur.index as usize];
        let state = match &node.place {
            NodePlace::Resident(s) => s.clone(),
            NodePlace::Spilled(rec, digest) => spill
                .expect("spilled node without spill context")
                .fault(*rec, *digest)?,
        };
        match &node.parent {
            Some((parent, action)) => {
                rev.push((state, Some(action.clone()), node.perm));
                cur = *parent;
            }
            None => {
                rev.push((state, None, node.perm));
                break;
            }
        }
    }
    rev.reverse();
    let steps = match sym {
        Some(s) => crate::symmetry::realize(s, net, &rev),
        None => rev
            .into_iter()
            .map(|(state, action, _)| (state, action))
            .collect(),
    };
    Ok(Trace {
        steps: steps
            .into_iter()
            .map(|(state, action)| TraceStep { action, state })
            .collect(),
    })
}
