//! Parallel zone-graph exploration: N workers pulling from a shared waiting
//! list with a mutex-striped passed list keyed on the discrete part of each
//! symbolic state.
//!
//! The algorithm preserves the sequential engine's inclusion-reduction
//! semantics exactly: a successor zone is discarded iff some stored zone for
//! the same discrete state already contains it, and stored zones strictly
//! contained in a new zone are evicted. Because the explored set is a
//! fixpoint that does not depend on exploration order, the *verdict* is
//! identical to the sequential engine's at any thread count; the witness
//! trace may differ between runs (any valid trace to a goal state), which is
//! why the sequential path (`threads = 1`) remains the reference oracle for
//! trace-sensitive uses.
//!
//! Partial-order and symmetry reduction are applied per successor
//! computation exactly as in the sequential engine ([`crate::por`],
//! [`crate::symmetry`]): states are canonicalized *before* the passed-list
//! probe, and the C3 cycle proviso re-expands a state fully whenever any of
//! its ample successors was subsumed. Both analyses are order-independent,
//! so verdicts stay identical at any thread count.

use crate::explore::{Action, Explorer, SymState};
use crate::formula::StateFormula;
use crate::model::{LocationId, Network};
use crate::por::Por;
use crate::reach::{Stats, Trace, TraceStep};
use crate::symmetry::Symmetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tempo_conc::{ShardedMap, WorkQueue};
use tempo_dbm::Dbm;
use tempo_expr::Store;
use tempo_obs::Governor;

/// Arena-crossing node handle: worker index + index in that worker's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeId {
    worker: u32,
    index: u32,
}

/// One node of a worker-local exploration arena. `perm` is the index of
/// the symmetry permutation that canonicalized the state (`0` when
/// symmetry is off).
struct Node {
    state: SymState,
    parent: Option<(NodeId, Action)>,
    perm: usize,
}

type DiscreteKey = (Vec<LocationId>, Store);

/// Shared atomic counters for the reduction statistics.
struct Reductions {
    por_ample: AtomicUsize,
    por_fallback: AtomicUsize,
    sym_avoided: AtomicUsize,
}

/// Explore the zone graph with `threads` workers until a state satisfying
/// `hit` is popped, the inclusion-reduced fixpoint is exhausted, or the
/// governor trips a budget limit (workers then drain cooperatively via
/// [`WorkQueue::stop_exhausted`]).
///
/// Returns the witness trace (if a hit was found), exploration statistics
/// aggregated across workers, and the waiting-list high-water mark.
/// States where `prune` holds everywhere are not expanded, mirroring the
/// sequential engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_search<H>(
    net: &Network,
    explorer: &Explorer<'_>,
    threads: usize,
    hit: H,
    prune: Option<&StateFormula>,
    por: Option<&Por>,
    sym: Option<&Symmetry>,
    gov: &Governor,
) -> (Option<Trace>, Stats, usize)
where
    H: Fn(&SymState) -> bool + std::marker::Sync,
{
    let threads = threads.max(2);
    let queue: WorkQueue<(NodeId, SymState)> = WorkQueue::new(threads);
    let passed: ShardedMap<DiscreteKey, Vec<(NodeId, Dbm)>> = ShardedMap::for_threads(threads);
    let explored = AtomicUsize::new(0);
    let transitions = AtomicUsize::new(0);
    let reductions = Reductions {
        por_ample: AtomicUsize::new(0),
        por_fallback: AtomicUsize::new(0),
        sym_avoided: AtomicUsize::new(0),
    };
    let goal_cell: Mutex<Option<NodeId>> = Mutex::new(None);

    let init = explorer.initial_state();
    let (init, init_perm) = match sym {
        Some(s) => s.canonicalize(net, &init),
        None => (init, 0),
    };
    let init_id = NodeId {
        worker: 0,
        index: 0,
    };
    let mut arenas: Vec<Vec<Node>> = (0..threads).map(|_| Vec::new()).collect();
    if gov.charge_state() {
        let key = init.discrete();
        let mut shard = passed.lock_shard(&key);
        shard.insert(key, vec![(init_id, init.zone.clone())]);
        drop(shard);
        arenas[0].push(Node {
            state: init.clone(),
            parent: None,
            perm: init_perm,
        });
        queue.push((init_id, init));

        std::thread::scope(|scope| {
            let (queue, passed) = (&queue, &passed);
            let (explored, transitions, goal_cell) = (&explored, &transitions, &goal_cell);
            let reductions = &reductions;
            let hit = &hit;
            for (w, arena) in arenas.iter_mut().enumerate() {
                scope.spawn(move || {
                    worker(
                        w as u32,
                        arena,
                        queue,
                        passed,
                        explored,
                        transitions,
                        reductions,
                        goal_cell,
                        net,
                        explorer,
                        hit,
                        prune,
                        por,
                        sym,
                        gov,
                    )
                });
            }
        });
    }

    let peak = queue.peak_len();
    let stats = Stats {
        explored: explored.load(Ordering::Relaxed),
        transitions: transitions.load(Ordering::Relaxed),
        stored: passed
            .into_inner()
            .map(|m| m.values().map(Vec::len).sum::<usize>())
            .sum(),
        por_ample: reductions.por_ample.load(Ordering::Relaxed),
        por_fallback: reductions.por_fallback.load(Ordering::Relaxed),
        sym_orbits: sym.map_or(0, Symmetry::orbit_count),
        sym_avoided: reductions.sym_avoided.load(Ordering::Relaxed),
    };
    let trace = goal_cell
        .into_inner()
        .expect("goal cell poisoned")
        .map(|goal| build_trace(&arenas, goal, net, sym));
    (trace, stats, peak)
}

#[allow(clippy::too_many_arguments)]
fn worker<H>(
    w: u32,
    arena: &mut Vec<Node>,
    queue: &WorkQueue<(NodeId, SymState)>,
    passed: &ShardedMap<DiscreteKey, Vec<(NodeId, Dbm)>>,
    explored: &AtomicUsize,
    transitions: &AtomicUsize,
    reductions: &Reductions,
    goal_cell: &Mutex<Option<NodeId>>,
    net: &Network,
    explorer: &Explorer<'_>,
    hit: &H,
    prune: Option<&StateFormula>,
    por: Option<&Por>,
    sym: Option<&Symmetry>,
    gov: &Governor,
) where
    H: Fn(&SymState) -> bool + std::marker::Sync,
{
    while let Some((id, state)) = queue.pop() {
        if !gov.check_time() {
            queue.stop_exhausted();
            return;
        }
        explored.fetch_add(1, Ordering::Relaxed);
        if hit(&state) {
            let mut goal = goal_cell.lock().expect("goal cell poisoned");
            if goal.is_none() {
                *goal = Some(id);
            }
            drop(goal);
            queue.stop();
            return;
        }
        if let Some(p) = prune {
            if p.holds_everywhere(net, &state) {
                continue;
            }
        }
        let (mut pending, mut used_ample) = match por {
            Some(p) => match p.ample(explorer, &state) {
                Some(s) => (s, true),
                None => (explorer.successors(&state), false),
            },
            None => (explorer.successors(&state), false),
        };
        if por.is_some() {
            if used_ample {
                reductions.por_ample.fetch_add(1, Ordering::Relaxed);
            } else {
                reductions.por_fallback.fetch_add(1, Ordering::Relaxed);
            }
        }
        loop {
            let mut any_subsumed = false;
            for (action, succ) in pending {
                if queue.is_stopped() {
                    return;
                }
                transitions.fetch_add(1, Ordering::Relaxed);
                let (succ, perm) = match sym {
                    Some(s) => s.canonicalize(net, &succ),
                    None => (succ, 0),
                };
                let key = succ.discrete();
                let mut shard = passed.lock_shard(&key);
                let entry = shard.entry(key).or_default();
                if entry.iter().any(|(_, zone)| succ.zone.is_subset_of(zone)) {
                    any_subsumed = true;
                    if perm != 0 {
                        reductions.sym_avoided.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                if !gov.charge_state() {
                    drop(shard);
                    queue.stop_exhausted();
                    return;
                }
                entry.retain(|(_, zone)| !zone.is_subset_of(&succ.zone));
                let nid = NodeId {
                    worker: w,
                    index: u32::try_from(arena.len()).expect("arena exceeds u32 indices"),
                };
                entry.push((nid, succ.zone.clone()));
                drop(shard);
                arena.push(Node {
                    state: succ.clone(),
                    parent: Some((id, action)),
                    perm,
                });
                queue.push((nid, succ));
            }
            // C3 cycle proviso — same rule as the sequential engine: an
            // ample successor was subsumed by a stored state, so the
            // reduced expansion may close a cycle that starves the
            // deferred transitions. Re-expand fully; already-inserted
            // ample successors dedup via the inclusion check.
            if used_ample && any_subsumed {
                pending = explorer.successors(&state);
                used_ample = false;
                reductions.por_ample.fetch_sub(1, Ordering::Relaxed);
                reductions.por_fallback.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            break;
        }
    }
}

/// Rebuild the witness by following parent pointers across worker arenas,
/// then realize it into a concrete run of the original network when
/// symmetry reduction canonicalized the stored states.
/// Runs strictly after all workers have joined, so every arena is complete.
fn build_trace(arenas: &[Vec<Node>], goal: NodeId, net: &Network, sym: Option<&Symmetry>) -> Trace {
    let mut rev = Vec::new();
    let mut cur = goal;
    loop {
        let node = &arenas[cur.worker as usize][cur.index as usize];
        match &node.parent {
            Some((parent, action)) => {
                rev.push((node.state.clone(), Some(action.clone()), node.perm));
                cur = *parent;
            }
            None => {
                rev.push((node.state.clone(), None, node.perm));
                break;
            }
        }
    }
    rev.reverse();
    let steps = match sym {
        Some(s) => crate::symmetry::realize(s, net, &rev),
        None => rev
            .into_iter()
            .map(|(state, action, _)| (state, action))
            .collect(),
    };
    Trace {
        steps: steps
            .into_iter()
            .map(|(state, action)| TraceStep { action, state })
            .collect(),
    }
}
