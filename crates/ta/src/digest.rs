//! Stable structural fingerprints for networks and state formulas.
//!
//! These [`StableDigest`] implementations let the analysis service key
//! its verdict cache by model content: two builds of the same network
//! fingerprint identically, and renaming automata, locations, clocks or
//! channels does not change the fingerprint (names are diagnostics; the
//! verdict depends only on structure). Where the semantics are
//! order-independent — the atoms of a guard or invariant conjunction,
//! the operands of `And`/`Or` formulas — the digest folds commutatively,
//! so syntactic reordering also shares cache entries. Everything indexed
//! (automata, locations, edges, channels) hashes in order, because
//! indices are the identity the model refers to.

use crate::model::{
    Automaton, Channel, ChannelKind, ClockAtom, Edge, Location, LocationKind, Network, Sync,
    SyncDir,
};
use crate::StateFormula;
use tempo_obs::{Fingerprint, StableDigest, StableHasher};

impl StableDigest for ClockAtom {
    fn digest(&self, h: &mut StableHasher) {
        h.write_usize(self.i.index());
        h.write_usize(self.j.index());
        h.write_i64(self.bound.raw());
    }
}

impl StableDigest for Sync {
    fn digest(&self, h: &mut StableHasher) {
        h.write_usize(self.channel.index());
        self.index.digest(h);
        h.write_u8(match self.dir {
            SyncDir::Send => 0,
            SyncDir::Recv => 1,
        });
    }
}

impl StableDigest for Edge {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("edge");
        h.write_usize(self.from.index());
        h.write_usize(self.to.index());
        h.write_usize(self.selects.len());
        for (lo, hi) in &self.selects {
            h.write_i64(*lo);
            h.write_i64(*hi);
        }
        // A guard is a conjunction: reordering its atoms preserves the
        // edge's semantics.
        h.write_unordered(self.guard_clocks.iter().map(Fingerprint::of));
        self.guard_data.digest(h);
        self.sync.digest(h);
        // Resets stay ordered: duplicate targets resolve last-wins.
        h.write_usize(self.resets.len());
        for (clock, e) in &self.resets {
            h.write_usize(clock.index());
            e.digest(h);
        }
        self.update.digest(h);
        h.write_bool(self.controllable);
    }
}

impl StableDigest for Location {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("location");
        h.write_u8(match self.kind {
            LocationKind::Normal => 0,
            LocationKind::Urgent => 1,
            LocationKind::Committed => 2,
        });
        h.write_unordered(self.invariant.iter().map(Fingerprint::of));
    }
}

impl StableDigest for Automaton {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("automaton");
        self.locations.digest(h);
        self.edges.digest(h);
        h.write_usize(self.initial.index());
    }
}

impl StableDigest for Channel {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("channel");
        h.write_usize(self.size);
        h.write_u8(match self.kind {
            ChannelKind::Binary => 0,
            ChannelKind::Broadcast => 1,
        });
        h.write_bool(self.urgent);
    }
}

impl StableDigest for Network {
    fn digest(&self, h: &mut StableHasher) {
        h.write_tag("network");
        self.decls().digest(h);
        // Clocks are identified by index; only their count is structure.
        h.write_usize(self.dim());
        self.channels().digest(h);
        self.automata().digest(h);
    }
}

impl StableDigest for StateFormula {
    fn digest(&self, h: &mut StableHasher) {
        match self {
            StateFormula::True => h.write_u8(0),
            StateFormula::False => h.write_u8(1),
            StateFormula::At(a, l) => {
                h.write_u8(2);
                h.write_usize(a.index());
                h.write_usize(l.index());
            }
            StateFormula::Data(e) => {
                h.write_u8(3);
                e.digest(h);
            }
            StateFormula::Clock(atom) => {
                h.write_u8(4);
                atom.digest(h);
            }
            StateFormula::Not(f) => {
                h.write_u8(5);
                f.digest(h);
            }
            StateFormula::And(fs) => {
                h.write_u8(6);
                h.write_unordered(fs.iter().map(Fingerprint::of));
            }
            StateFormula::Or(fs) => {
                h.write_u8(7);
                h.write_unordered(fs.iter().map(Fingerprint::of));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkBuilder;
    use tempo_obs::Fingerprint;

    fn lamp(name: &str, bound: i64) -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton(name);
        let off = a.location("Off");
        let on = a.location_with_invariant("On", vec![ClockAtom::le(x, bound)]);
        a.edge(off, on).reset(x, 0).done();
        a.edge(on, off).guard_clock(ClockAtom::ge(x, 1)).done();
        a.done();
        b.build()
    }

    #[test]
    fn rebuilding_and_renaming_preserve_fingerprint() {
        assert_eq!(
            Fingerprint::of(&lamp("Lamp", 10)),
            Fingerprint::of(&lamp("Lamp", 10))
        );
        assert_eq!(
            Fingerprint::of(&lamp("Lamp", 10)),
            Fingerprint::of(&lamp("Renamed", 10))
        );
        assert_ne!(
            Fingerprint::of(&lamp("Lamp", 10)),
            Fingerprint::of(&lamp("Lamp", 11))
        );
    }

    #[test]
    fn guard_atom_order_is_irrelevant() {
        let build = |swap: bool| {
            let mut b = NetworkBuilder::new();
            let x = b.clock("x");
            let y = b.clock("y");
            let mut a = b.automaton("A");
            let l0 = a.location("L0");
            let (g1, g2) = (ClockAtom::ge(x, 2), ClockAtom::le(y, 7));
            let e = a.edge(l0, l0);
            let e = if swap {
                e.guard_clock(g2).guard_clock(g1)
            } else {
                e.guard_clock(g1).guard_clock(g2)
            };
            e.done();
            a.done();
            b.build()
        };
        assert_eq!(
            Fingerprint::of(&build(false)),
            Fingerprint::of(&build(true))
        );
    }

    #[test]
    fn formula_conjunction_order_is_irrelevant() {
        let net = lamp("Lamp", 10);
        let x = net.clock_by_name("x").unwrap();
        let f1 = StateFormula::and(vec![
            StateFormula::clock(ClockAtom::ge(x, 2)),
            StateFormula::clock(ClockAtom::le(x, 4)),
        ]);
        let f2 = StateFormula::and(vec![
            StateFormula::clock(ClockAtom::le(x, 4)),
            StateFormula::clock(ClockAtom::ge(x, 2)),
        ]);
        assert_eq!(Fingerprint::of(&f1), Fingerprint::of(&f2));
        // And vs Or with the same operands must differ.
        let g = StateFormula::or(vec![
            StateFormula::clock(ClockAtom::le(x, 4)),
            StateFormula::clock(ClockAtom::ge(x, 2)),
        ]);
        assert_ne!(Fingerprint::of(&f1), Fingerprint::of(&g));
    }
}
