//! Ample-set partial-order reduction for explicit-state exploration.
//!
//! When several components interleave independent internal steps, plain
//! breadth-first search enumerates every interleaving even though all of
//! them reach the same states. Ample-set reduction (Peled; Clarke,
//! Grumberg & Peled, ch. 10) expands, at selected states, only the
//! transitions of *one* process whose behaviour is provably independent
//! of everything else, and defers the rest.
//!
//! The conditions here are deliberately conservative — chosen so that
//! they are sound for *timed* reachability without a fine-grained
//! dependency analysis:
//!
//! - **C0/C1 (non-emptiness, dependence)**: an automaton is *eligible*
//!   only if every edge is internal (no synchronization), carries no
//!   clock guard and no reset, all its locations are `Normal` with empty
//!   invariants, and the variables it reads or writes are disjoint from
//!   the variables accessed by every other automaton. Such an
//!   automaton's transitions commute with every other transition *and*
//!   with delay (it never touches a clock), so firing them first loses
//!   no behaviour.
//! - **C2 (invisibility)**: the goal and prune formulas must not name
//!   the eligible automaton's locations or variables.
//! - **C3 (cycle proviso)**: enforced by the caller — whenever a state
//!   whose expansion was reduced has an ample successor that closes a
//!   cycle in the reduced graph (detected conservatively: the successor
//!   was subsumed by an already-passed state), the caller re-expands the
//!   state fully. See `reach.rs`/`par_reach.rs`.
//!
//! Committed locations restrict which automata may fire at all, so the
//! reduction additionally falls back to full expansion whenever any
//! committed location is active. Broadcast/urgent channels never involve
//! an eligible automaton (it has no synchronizations), and states whose
//! eligible automata have no enabled transition fall back as well —
//! making the reduction conservative by construction.

use crate::explore::{Action, Explorer, SymState};
use crate::formula::StateFormula;
use crate::model::{AutomatonId, LocationKind, Network};
use std::collections::BTreeSet;
use tempo_expr::{Expr, Stmt, VarId};

/// The statically computed ample-set oracle for one network + property.
#[derive(Debug, Clone)]
pub struct Por {
    /// Automata whose full internal successor set is a valid ample set
    /// at any non-committed state where it is non-empty.
    eligible: Vec<usize>,
}

impl Por {
    /// Statically analyzes the network: which automata are safe ample
    /// candidates for a search driven by `formulas` (goal, prune, …)?
    #[must_use]
    pub fn analyze(net: &Network, formulas: &[&StateFormula]) -> Por {
        let vars: Vec<BTreeSet<VarId>> = net.automata().iter().map(automaton_vars).collect();
        let formula_vars: BTreeSet<VarId> =
            formulas.iter().flat_map(|f| formula_data_vars(f)).collect();

        let mut eligible = Vec::new();
        'aut: for (ai, a) in net.automata().iter().enumerate() {
            // Purely discrete and asynchronous: no syncs, no clocks, no
            // invariants, only Normal locations.
            for l in &a.locations {
                if l.kind != LocationKind::Normal || !l.invariant.is_empty() {
                    continue 'aut;
                }
            }
            for e in &a.edges {
                if e.sync.is_some() || !e.guard_clocks.is_empty() || !e.resets.is_empty() {
                    continue 'aut;
                }
            }
            // Variable-disjoint from every other automaton.
            for (bi, bv) in vars.iter().enumerate() {
                if bi != ai && !vars[ai].is_disjoint(bv) {
                    continue 'aut;
                }
            }
            // Invisible to the property.
            if !vars[ai].is_disjoint(&formula_vars) {
                continue 'aut;
            }
            if formulas
                .iter()
                .any(|f| formula_mentions_automaton(f, AutomatonId(ai)))
            {
                continue 'aut;
            }
            eligible.push(ai);
        }
        Por { eligible }
    }

    /// Whether any automaton qualified (if not, `ample` never fires and
    /// the search runs unreduced).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.eligible.is_empty()
    }

    /// The ample set at `state`: all enabled internal successors of the
    /// first eligible automaton that has any, or `None` to signal full
    /// expansion (no candidate enabled, or committed semantics active).
    #[must_use]
    pub fn ample(&self, exp: &Explorer<'_>, state: &SymState) -> Option<Vec<(Action, SymState)>> {
        if self.eligible.is_empty() || exp.any_committed(state) {
            return None;
        }
        for &ai in &self.eligible {
            let succs = exp.internal_successors(state, ai);
            if !succs.is_empty() {
                return Some(succs);
            }
        }
        None
    }
}

/// All variables an automaton reads or writes (guards, updates, sync
/// indices, reset expressions).
fn automaton_vars(a: &crate::model::Automaton) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    for e in &a.edges {
        expr_vars(&e.guard_data, &mut out);
        stmt_vars(&e.update, &mut out);
        if let Some(sync) = &e.sync {
            expr_vars(&sync.index, &mut out);
        }
        for (_, v) in &e.resets {
            expr_vars(v, &mut out);
        }
    }
    out
}

fn expr_vars(e: &Expr, out: &mut BTreeSet<VarId>) {
    match e {
        Expr::Const(_) | Expr::Select(_) => {}
        Expr::Var(v) => {
            out.insert(*v);
        }
        Expr::Index(v, i) => {
            out.insert(*v);
            expr_vars(i, out);
        }
        Expr::Unary(_, a) => expr_vars(a, out),
        Expr::Binary(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
    }
}

fn stmt_vars(s: &Stmt, out: &mut BTreeSet<VarId>) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(v, e) => {
            out.insert(*v);
            expr_vars(e, out);
        }
        Stmt::AssignIndex(v, i, e) => {
            out.insert(*v);
            expr_vars(i, out);
            expr_vars(e, out);
        }
        Stmt::Seq(ss) => {
            for s in ss {
                stmt_vars(s, out);
            }
        }
        Stmt::If(c, t, e) => {
            expr_vars(c, out);
            stmt_vars(t, out);
            stmt_vars(e, out);
        }
        Stmt::While(c, b) => {
            expr_vars(c, out);
            stmt_vars(b, out);
        }
    }
}

fn formula_data_vars(f: &StateFormula) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    collect_formula_vars(f, &mut out);
    out
}

fn collect_formula_vars(f: &StateFormula, out: &mut BTreeSet<VarId>) {
    match f {
        StateFormula::True | StateFormula::False | StateFormula::At(_, _) => {}
        StateFormula::Clock(_) => {}
        StateFormula::Data(e) => expr_vars(e, out),
        StateFormula::Not(g) => collect_formula_vars(g, out),
        StateFormula::And(gs) | StateFormula::Or(gs) => {
            for g in gs {
                collect_formula_vars(g, out);
            }
        }
    }
}

fn formula_mentions_automaton(f: &StateFormula, a: AutomatonId) -> bool {
    match f {
        StateFormula::True
        | StateFormula::False
        | StateFormula::Data(_)
        | StateFormula::Clock(_) => false,
        StateFormula::At(x, _) => *x == a,
        StateFormula::Not(g) => formula_mentions_automaton(g, a),
        StateFormula::And(gs) | StateFormula::Or(gs) => {
            gs.iter().any(|g| formula_mentions_automaton(g, a))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockAtom, NetworkBuilder};

    /// A network with one timed automaton and two independent counters
    /// (internal, clock-free, variable-disjoint).
    fn counters() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let c1 = b.decls_mut().int_init("c1", 0, 3, 0);
        let c2 = b.decls_mut().int_init("c2", 0, 3, 0);
        for (name, var) in [("C1", c1), ("C2", c2)] {
            let mut a = b.automaton(name);
            let l = a.location("L");
            a.edge(l, l)
                .guard_data(Expr::var(var).lt(Expr::konst(3)))
                .update(Stmt::Assign(var, Expr::var(var) + Expr::konst(1)))
                .done();
            a.done();
        }
        let mut t = b.automaton("Timed");
        let l0 = t.location("L0");
        let l1 = t.location("L1");
        t.edge(l0, l1).guard_clock(ClockAtom::ge(x, 5)).done();
        t.done();
        b.build()
    }

    #[test]
    fn counters_are_eligible_and_timed_is_not() {
        let net = counters();
        let por = Por::analyze(&net, &[&StateFormula::True]);
        assert_eq!(por.eligible, vec![0, 1]);
        assert!(por.is_active());
    }

    #[test]
    fn property_visibility_disqualifies() {
        let net = counters();
        let c1 = net.decls().lookup("c1").unwrap();
        let goal = StateFormula::Data(Expr::var(c1).eq(Expr::konst(3)));
        let por = Por::analyze(&net, &[&goal]);
        assert_eq!(por.eligible, vec![1], "only the c2 counter stays ample");
        let at = StateFormula::At(AutomatonId(1), crate::model::LocationId(0));
        let por = Por::analyze(&net, &[&goal, &at]);
        assert!(por.eligible.is_empty());
        assert!(!por.is_active());
    }

    #[test]
    fn ample_returns_single_process_expansion() {
        let net = counters();
        let por = Por::analyze(&net, &[&StateFormula::True]);
        let exp = Explorer::new(&net);
        let init = exp.initial_state();
        let full = exp.successors(&init);
        assert_eq!(full.len(), 3, "both counters and the timed edge can step");
        let ample = por.ample(&exp, &init).expect("ample set");
        assert_eq!(ample.len(), 1, "only the first counter is expanded");
        match &ample[0].0 {
            Action::Internal { automaton, .. } => assert_eq!(automaton.index(), 0),
            Action::Sync { .. } => panic!("ample sets contain internal actions only"),
        }
    }

    #[test]
    fn shared_variables_disqualify() {
        let mut b = NetworkBuilder::new();
        let v = b.decls_mut().int_init("shared", 0, 3, 0);
        for name in ["A", "B"] {
            let mut a = b.automaton(name);
            let l = a.location("L");
            a.edge(l, l)
                .guard_data(Expr::var(v).lt(Expr::konst(3)))
                .update(Stmt::Assign(v, Expr::var(v) + Expr::konst(1)))
                .done();
            a.done();
        }
        let net = b.build();
        let por = Por::analyze(&net, &[&StateFormula::True]);
        assert!(!por.is_active());
    }
}
