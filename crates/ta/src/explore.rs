//! Symbolic (zone-based) semantics of networks of timed automata.
//!
//! States pair a discrete part (location vector + variable store) with a
//! zone; successor computation implements UPPAAL's semantics for binary
//! and broadcast channels, urgent channels, and urgent/committed
//! locations. Explored zones are kept delay-closed (`up ∧ invariant`) and
//! extrapolated with per-clock maximal constants so the zone graph is
//! finite.

use crate::model::{
    AutomatonId, ChannelKind, ClockAtom, Edge, LocationId, LocationKind, Network, Sync, SyncDir,
};
use tempo_dbm::{Dbm, Federation};
use tempo_expr::Store;

/// A symbolic state of a network: one location per automaton, a variable
/// store, and a clock zone.
#[derive(Debug, Clone, PartialEq)]
pub struct SymState {
    /// Current location of each automaton, indexed by automaton id.
    pub locs: Vec<LocationId>,
    /// Values of all discrete variables.
    pub store: Store,
    /// The clock zone (delay-closed and extrapolated during exploration).
    pub zone: Dbm,
}

impl SymState {
    /// The discrete part, used as a hash key in passed/waiting lists.
    #[must_use]
    pub fn discrete(&self) -> (Vec<LocationId>, Store) {
        (self.locs.clone(), self.store.clone())
    }

    /// Whether automaton `a` is at location `l`.
    #[must_use]
    pub fn is_at(&self, a: AutomatonId, l: LocationId) -> bool {
        self.locs[a.index()] == l
    }
}

/// How a successor state was produced (for traces and diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// An internal (unsynchronized) edge of one automaton.
    Internal {
        /// The moving automaton.
        automaton: AutomatonId,
        /// Index of the taken edge in that automaton's edge list.
        edge: usize,
    },
    /// A binary or broadcast synchronization.
    Sync {
        /// Channel name with resolved index, e.g. `appr[2]`.
        label: String,
        /// The sending automaton and edge index.
        sender: (AutomatonId, usize),
        /// The receiving automata and edge indices.
        receivers: Vec<(AutomatonId, usize)>,
    },
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Internal { automaton, edge } => {
                write!(f, "tau(a{}, e{})", automaton.index(), edge)
            }
            Action::Sync { label, .. } => write!(f, "{label}"),
        }
    }
}

/// Per receiving automaton: the enabled receiving edges as
/// (edge index, selected binding) pairs.
type ReceiverChoices = Vec<(usize, Vec<i64>)>;

/// The symbolic successor generator for a network.
///
/// ```
/// use tempo_ta::{NetworkBuilder, Explorer};
/// let mut b = NetworkBuilder::new();
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// let l1 = a.location("L1");
/// a.edge(l0, l1).done();
/// a.done();
/// let net = b.build();
/// let exp = Explorer::new(&net);
/// let init = exp.initial_state();
/// assert_eq!(exp.successors(&init).len(), 1);
/// ```
#[derive(Debug)]
pub struct Explorer<'n> {
    net: &'n Network,
    max_consts: Vec<i64>,
    /// When `false`, zones are not extrapolated (for the extrapolation
    /// ablation bench; termination is then not guaranteed in general).
    extrapolate: bool,
    /// Per-location LU bounds; when present, zones are widened with
    /// `Extra_LU` over the state's location vector instead of the
    /// global maximal-constant `Extra_M`.
    lu: Option<crate::flow::NetworkLu>,
}

impl<'n> Explorer<'n> {
    /// Creates an explorer with extrapolation constants derived from the
    /// network's guards and invariants.
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        Explorer {
            max_consts: net.max_constants(),
            net,
            extrapolate: true,
            lu: None,
        }
    }

    /// Creates an explorer whose extrapolation constants additionally
    /// cover clock constants appearing in properties.
    #[must_use]
    pub fn with_extra_constants(net: &'n Network, extra: &[ClockAtom]) -> Self {
        let mut max_consts = net.max_constants();
        for atom in extra {
            if atom.bound.is_inf() {
                continue;
            }
            let c = atom.bound.constant().abs();
            if !atom.i.is_ref() {
                max_consts[atom.i.index()] = max_consts[atom.i.index()].max(c);
            }
            if !atom.j.is_ref() {
                max_consts[atom.j.index()] = max_consts[atom.j.index()].max(c);
            }
        }
        Explorer {
            max_consts,
            net,
            extrapolate: true,
            lu: None,
        }
    }

    /// Disables maximal-constant extrapolation (ablation only).
    #[must_use]
    pub fn without_extrapolation(mut self) -> Self {
        self.extrapolate = false;
        self
    }

    /// Switches extrapolation to per-location `Extra_LU` with the given
    /// solved bound tables. Sound for reachability: the LU abstraction
    /// preserves reachability of every location/data configuration and
    /// of all protected clock constraints, but coarsens zones — do not
    /// combine with exact-zone analyses (deadlock federations,
    /// liveness).
    #[must_use]
    pub fn with_lu(mut self, lu: crate::flow::NetworkLu) -> Self {
        self.lu = Some(lu);
        self
    }

    /// The network being explored.
    #[must_use]
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The initial symbolic state (all clocks `0`, delay-closed).
    ///
    /// # Panics
    ///
    /// Panics if the initial invariant is unsatisfiable.
    #[must_use]
    pub fn initial_state(&self) -> SymState {
        let locs: Vec<LocationId> = self.net.automata.iter().map(|a| a.initial).collect();
        let store = self.net.decls.initial_store();
        let mut zone = Dbm::zero(self.net.dim());
        assert!(
            self.apply_invariants(&locs, &mut zone),
            "initial state violates invariants"
        );
        let mut state = SymState { locs, store, zone };
        self.delay_close(&mut state);
        state
    }

    /// Conjoins the invariants of all current locations onto the zone.
    /// Returns `false` if the zone became empty.
    fn apply_invariants(&self, locs: &[LocationId], zone: &mut Dbm) -> bool {
        for (a, &l) in self.net.automata.iter().zip(locs) {
            for atom in &a.locations[l.index()].invariant {
                if !zone.constrain(atom.i, atom.j, atom.bound) {
                    return false;
                }
            }
        }
        true
    }

    /// The invariant zone of a location vector (starting from universe).
    #[must_use]
    pub fn invariant_zone(&self, locs: &[LocationId]) -> Dbm {
        let mut z = Dbm::universe(self.net.dim());
        self.apply_invariants(locs, &mut z);
        z
    }

    /// Whether delay is permitted in this discrete configuration: no
    /// automaton is in an urgent or committed location and no urgent
    /// synchronization is enabled.
    #[must_use]
    pub fn delay_allowed(&self, state: &SymState) -> bool {
        for (a, &l) in self.net.automata.iter().zip(&state.locs) {
            if a.locations[l.index()].kind != LocationKind::Normal {
                return false;
            }
        }
        !self.urgent_sync_enabled(state)
    }

    /// Whether some urgent-channel synchronization is enabled (urgent
    /// edges carry no clock guards, so enabledness is data-only).
    fn urgent_sync_enabled(&self, state: &SymState) -> bool {
        for (ai, a) in self.net.automata.iter().enumerate() {
            for e in a.edges.iter().filter(|e| e.from == state.locs[ai]) {
                let Some(sync) = &e.sync else { continue };
                if sync.dir != SyncDir::Send || !self.net.channels[sync.channel.index()].urgent {
                    continue;
                }
                for sel in SelectIter::new(&e.selects) {
                    let Some(idx) = self.resolve_index(sync, state, &sel) else {
                        continue;
                    };
                    if !self.data_guard_holds(e, state, &sel) {
                        continue;
                    }
                    // Find a matching enabled receiver.
                    for (bi, b) in self.net.automata.iter().enumerate() {
                        if bi == ai {
                            continue;
                        }
                        for r in b.edges.iter().filter(|r| r.from == state.locs[bi]) {
                            let Some(rs) = &r.sync else { continue };
                            if rs.dir != SyncDir::Recv || rs.channel != sync.channel {
                                continue;
                            }
                            for rsel in SelectIter::new(&r.selects) {
                                if self.resolve_index(rs, state, &rsel) == Some(idx)
                                    && self.data_guard_holds(r, state, &rsel)
                                {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
        }
        false
    }

    fn resolve_index(&self, sync: &Sync, state: &SymState, sel: &[i64]) -> Option<i64> {
        let idx = sync.index.eval(&self.net.decls, &state.store, sel).ok()?;
        let size = self.net.channels[sync.channel.index()].size as i64;
        (0..size).contains(&idx).then_some(idx)
    }

    fn data_guard_holds(&self, e: &Edge, state: &SymState, sel: &[i64]) -> bool {
        e.guard_data
            .eval_bool(&self.net.decls, &state.store, sel)
            .unwrap_or(false)
    }

    /// Applies `up ∧ invariant` (if delay is allowed) and extrapolation.
    fn delay_close(&self, state: &mut SymState) {
        if self.delay_allowed(state) {
            state.zone.up();
            self.apply_invariants(&state.locs, &mut state.zone);
        }
        if self.extrapolate {
            match &self.lu {
                Some(lu) => {
                    let mut lower = Vec::new();
                    let mut upper = Vec::new();
                    lu.state_bounds(&state.locs, &mut lower, &mut upper);
                    state.zone.extrapolate_lu(&lower, &upper);
                }
                None => state.zone.extrapolate(&self.max_consts),
            }
        }
    }

    /// When any automaton is in a committed location, only transitions
    /// involving a committed automaton may fire.
    fn committed_set(&self, state: &SymState) -> Vec<bool> {
        self.net
            .automata
            .iter()
            .zip(&state.locs)
            .map(|(a, &l)| a.locations[l.index()].kind == LocationKind::Committed)
            .collect()
    }

    /// Whether any automaton currently occupies a committed location
    /// (used by partial-order reduction to fall back to full expansion:
    /// committed semantics restricts which automata may fire).
    pub(crate) fn any_committed(&self, state: &SymState) -> bool {
        self.committed_set(state).iter().any(|&c| c)
    }

    /// Successors produced by the internal (unsynchronized) edges of a
    /// single automaton. Used by ample-set partial-order reduction; the
    /// caller guarantees no committed location is active.
    pub(crate) fn internal_successors(
        &self,
        state: &SymState,
        ai: usize,
    ) -> Vec<(Action, SymState)> {
        let a = &self.net.automata[ai];
        let mut out = Vec::new();
        for (ei, e) in a.edges.iter().enumerate() {
            if e.from != state.locs[ai] || e.sync.is_some() {
                continue;
            }
            for sel in SelectIter::new(&e.selects) {
                if let Some(next) = self.fire(state, &[(AutomatonId(ai), e, sel.clone())]) {
                    out.push((
                        Action::Internal {
                            automaton: AutomatonId(ai),
                            edge: ei,
                        },
                        next,
                    ));
                }
            }
        }
        out
    }

    /// Computes all symbolic successors with their actions. Successor
    /// zones are delay-closed and extrapolated; empty successors are
    /// dropped.
    #[must_use]
    pub fn successors(&self, state: &SymState) -> Vec<(Action, SymState)> {
        let committed = self.committed_set(state);
        let any_committed = committed.iter().any(|&c| c);
        let mut out = Vec::new();

        for (ai, a) in self.net.automata.iter().enumerate() {
            for (ei, e) in a.edges.iter().enumerate() {
                if e.from != state.locs[ai] {
                    continue;
                }
                match &e.sync {
                    None => {
                        if any_committed && !committed[ai] {
                            continue;
                        }
                        for sel in SelectIter::new(&e.selects) {
                            if let Some(next) =
                                self.fire(state, &[(AutomatonId(ai), e, sel.clone())])
                            {
                                out.push((
                                    Action::Internal {
                                        automaton: AutomatonId(ai),
                                        edge: ei,
                                    },
                                    next,
                                ));
                            }
                        }
                    }
                    Some(sync) if sync.dir == SyncDir::Send => {
                        for sel in SelectIter::new(&e.selects) {
                            let Some(idx) = self.resolve_index(sync, state, &sel) else {
                                continue;
                            };
                            match self.net.channels[sync.channel.index()].kind {
                                ChannelKind::Binary => self.binary_syncs(
                                    state,
                                    &committed,
                                    any_committed,
                                    (ai, ei, e, &sel),
                                    sync,
                                    idx,
                                    &mut out,
                                ),
                                ChannelKind::Broadcast => self.broadcast_syncs(
                                    state,
                                    &committed,
                                    any_committed,
                                    (ai, ei, e, &sel),
                                    sync,
                                    idx,
                                    &mut out,
                                ),
                            }
                        }
                    }
                    Some(_) => {} // receivers are matched from the sender side
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn binary_syncs(
        &self,
        state: &SymState,
        committed: &[bool],
        any_committed: bool,
        sender: (usize, usize, &Edge, &Vec<i64>),
        sync: &Sync,
        idx: i64,
        out: &mut Vec<(Action, SymState)>,
    ) {
        let (ai, ei, e, sel) = sender;
        for (bi, b) in self.net.automata.iter().enumerate() {
            if bi == ai {
                continue;
            }
            if any_committed && !committed[ai] && !committed[bi] {
                continue;
            }
            for (ri, r) in b.edges.iter().enumerate() {
                if r.from != state.locs[bi] {
                    continue;
                }
                let Some(rs) = &r.sync else { continue };
                if rs.dir != SyncDir::Recv || rs.channel != sync.channel {
                    continue;
                }
                for rsel in SelectIter::new(&r.selects) {
                    if self.resolve_index(rs, state, &rsel) != Some(idx) {
                        continue;
                    }
                    let participants = [
                        (AutomatonId(ai), e, sel.clone()),
                        (AutomatonId(bi), r, rsel.clone()),
                    ];
                    if let Some(next) = self.fire(state, &participants) {
                        out.push((
                            Action::Sync {
                                label: format!(
                                    "{}[{}]",
                                    self.net.channels[sync.channel.index()].name,
                                    idx
                                ),
                                sender: (AutomatonId(ai), ei),
                                receivers: vec![(AutomatonId(bi), ri)],
                            },
                            next,
                        ));
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn broadcast_syncs(
        &self,
        state: &SymState,
        committed: &[bool],
        any_committed: bool,
        sender: (usize, usize, &Edge, &Vec<i64>),
        sync: &Sync,
        idx: i64,
        out: &mut Vec<(Action, SymState)>,
    ) {
        let (ai, ei, e, sel) = sender;
        // For each other automaton, collect its enabled receiving edges
        // (data guards only; validated at build time).
        let mut choices: Vec<(usize, ReceiverChoices)> = Vec::new();
        for (bi, b) in self.net.automata.iter().enumerate() {
            if bi == ai {
                continue;
            }
            let mut enabled = Vec::new();
            for (ri, r) in b.edges.iter().enumerate() {
                if r.from != state.locs[bi] {
                    continue;
                }
                let Some(rs) = &r.sync else { continue };
                if rs.dir != SyncDir::Recv || rs.channel != sync.channel {
                    continue;
                }
                for rsel in SelectIter::new(&r.selects) {
                    if self.resolve_index(rs, state, &rsel) == Some(idx)
                        && self.data_guard_holds(r, state, &rsel)
                    {
                        enabled.push((ri, rsel));
                    }
                }
            }
            if !enabled.is_empty() {
                choices.push((bi, enabled));
            }
        }
        if any_committed && !committed[ai] && !choices.iter().any(|(bi, _)| committed[*bi]) {
            return;
        }
        // Every automaton with an enabled receiver participates with one
        // nondeterministically chosen edge: enumerate the combinations.
        let mut combo = vec![0_usize; choices.len()];
        loop {
            let mut participants: Vec<(AutomatonId, &Edge, Vec<i64>)> =
                vec![(AutomatonId(ai), e, sel.clone())];
            let mut receivers = Vec::new();
            for (ci, (bi, enabled)) in choices.iter().enumerate() {
                let (ri, rsel) = &enabled[combo[ci]];
                participants.push((
                    AutomatonId(*bi),
                    &self.net.automata[*bi].edges[*ri],
                    rsel.clone(),
                ));
                receivers.push((AutomatonId(*bi), *ri));
            }
            if let Some(next) = self.fire(state, &participants) {
                out.push((
                    Action::Sync {
                        label: format!(
                            "{}[{}]!!",
                            self.net.channels[sync.channel.index()].name,
                            idx
                        ),
                        sender: (AutomatonId(ai), ei),
                        receivers,
                    },
                    next,
                ));
            }
            // Advance the combination counter.
            let mut pos = 0;
            loop {
                if pos == choices.len() {
                    return;
                }
                combo[pos] += 1;
                if combo[pos] < choices[pos].1.len() {
                    break;
                }
                combo[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Fires a joint transition of the given participants (in order:
    /// sender first). Returns the delay-closed successor, or `None` if any
    /// guard, update or invariant fails.
    fn fire(
        &self,
        state: &SymState,
        participants: &[(AutomatonId, &Edge, Vec<i64>)],
    ) -> Option<SymState> {
        // 1. Data guards (on the pre-store).
        for (_, e, sel) in participants {
            if !self.data_guard_holds(e, state, sel) {
                return None;
            }
        }
        // 2. Clock guards.
        let mut zone = state.zone.clone();
        for (_, e, _) in participants {
            for atom in &e.guard_clocks {
                if !zone.constrain(atom.i, atom.j, atom.bound) {
                    return None;
                }
            }
        }
        // 3. Updates (sender first, as in UPPAAL); reset values are
        //    evaluated over the evolving store at each participant's turn.
        let mut store = state.store.clone();
        let mut locs = state.locs.clone();
        let mut resets: Vec<(tempo_dbm::Clock, i64)> = Vec::new();
        for (aid, e, sel) in participants {
            for (clock, value) in &e.resets {
                let v = value.eval(&self.net.decls, &store, sel).ok()?;
                if v < 0 {
                    return None;
                }
                resets.push((*clock, v));
            }
            e.update.execute(&self.net.decls, &mut store, sel).ok()?;
            locs[aid.index()] = e.to;
        }
        for (clock, v) in resets {
            zone.reset(clock, v);
        }
        // 4. Target invariants.
        if !self.apply_invariants(&locs, &mut zone) {
            return None;
        }
        let mut next = SymState { locs, store, zone };
        self.delay_close(&mut next);
        if next.zone.is_empty() {
            return None;
        }
        Some(next)
    }

    /// The federation of valuations in `state.zone` from which **no**
    /// action transition is possible now or after any legal delay: the
    /// symbolic deadlock check of `A[] not deadlock`.
    ///
    /// The returned federation is empty iff the state is deadlock-free.
    #[must_use]
    pub fn deadlock_federation(&self, state: &SymState) -> Federation {
        let dim = self.net.dim();
        let mut escape = Federation::empty(dim);
        let delay = self.delay_allowed(state);
        for zone in self.enabled_guard_zones(state) {
            let mut fed = Federation::from_zones(dim, vec![zone]);
            if delay {
                // Points that can delay (within the state's delay-closed
                // zone) into the guard.
                fed.down();
            }
            fed = fed.intersection_zone(&state.zone);
            escape.union_with(&fed);
        }
        Federation::from_zones(dim, vec![state.zone.clone()]).subtract(&escape)
    }

    /// The guard zones (within `state.zone`) of every action transition
    /// enabled from the state's discrete part, with target-invariant
    /// feasibility folded in.
    fn enabled_guard_zones(&self, state: &SymState) -> Vec<Dbm> {
        let mut zones = Vec::new();
        let committed = self.committed_set(state);
        let any_committed = committed.iter().any(|&c| c);
        for (ai, a) in self.net.automata.iter().enumerate() {
            for e in a.edges.iter().filter(|e| e.from == state.locs[ai]) {
                match &e.sync {
                    None => {
                        if any_committed && !committed[ai] {
                            continue;
                        }
                        for sel in SelectIter::new(&e.selects) {
                            if let Some(z) =
                                self.edge_source_zone(state, &[(AutomatonId(ai), e, sel)])
                            {
                                zones.push(z);
                            }
                        }
                    }
                    Some(sync) if sync.dir == SyncDir::Send => {
                        for sel in SelectIter::new(&e.selects) {
                            let Some(idx) = self.resolve_index(sync, state, &sel) else {
                                continue;
                            };
                            match self.net.channels[sync.channel.index()].kind {
                                ChannelKind::Binary => {
                                    for (bi, b) in self.net.automata.iter().enumerate() {
                                        if bi == ai
                                            || (any_committed && !committed[ai] && !committed[bi])
                                        {
                                            continue;
                                        }
                                        for r in b.edges.iter().filter(|r| r.from == state.locs[bi])
                                        {
                                            let Some(rs) = &r.sync else { continue };
                                            if rs.dir != SyncDir::Recv || rs.channel != sync.channel
                                            {
                                                continue;
                                            }
                                            for rsel in SelectIter::new(&r.selects) {
                                                if self.resolve_index(rs, state, &rsel) != Some(idx)
                                                {
                                                    continue;
                                                }
                                                if let Some(z) = self.edge_source_zone(
                                                    state,
                                                    &[
                                                        (AutomatonId(ai), e, sel.clone()),
                                                        (AutomatonId(bi), r, rsel),
                                                    ],
                                                ) {
                                                    zones.push(z);
                                                }
                                            }
                                        }
                                    }
                                }
                                ChannelKind::Broadcast => {
                                    // A broadcast sender is never blocked;
                                    // receivers join dynamically.
                                    if any_committed && !committed[ai] {
                                        continue;
                                    }
                                    if let Some(z) = self.edge_source_zone(
                                        state,
                                        &[(AutomatonId(ai), e, sel.clone())],
                                    ) {
                                        zones.push(z);
                                    }
                                }
                            }
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        zones
    }

    /// The subset of `state.zone` from which the joint edge can be taken:
    /// guards conjoined and target-invariant satisfiability reflected back
    /// onto the source valuations (resets are to constants, so invariant
    /// atoms over reset clocks become constant checks and atoms over
    /// unreset clocks remain source constraints).
    fn edge_source_zone(
        &self,
        state: &SymState,
        participants: &[(AutomatonId, &Edge, Vec<i64>)],
    ) -> Option<Dbm> {
        for (_, e, sel) in participants {
            if !self.data_guard_holds(e, state, sel) {
                return None;
            }
        }
        let mut zone = state.zone.clone();
        for (_, e, _) in participants {
            for atom in &e.guard_clocks {
                if !zone.constrain(atom.i, atom.j, atom.bound) {
                    return None;
                }
            }
        }
        // Collect reset values (pre-store approximation for the data part;
        // exact for constant resets, which is all our models use).
        let mut reset_to: std::collections::HashMap<usize, i64> = std::collections::HashMap::new();
        let mut locs = state.locs.clone();
        for (aid, e, sel) in participants {
            for (clock, value) in &e.resets {
                let v = value.eval(&self.net.decls, &state.store, sel).ok()?;
                reset_to.insert(clock.index(), v);
            }
            locs[aid.index()] = e.to;
        }
        for (a, &l) in self.net.automata.iter().zip(&locs) {
            for atom in &a.locations[l.index()].invariant {
                let vi = reset_to.get(&atom.i.index()).copied();
                let vj = reset_to.get(&atom.j.index()).copied();
                match (vi, vj) {
                    (Some(vi), Some(vj)) => {
                        if !atom.bound.satisfied_by(vi - vj) {
                            return None;
                        }
                    }
                    (Some(vi), None) => {
                        // vi - x_j ≺ c  ⇒  0 - x_j ≺ c - vi
                        let b = atom.bound + tempo_dbm::Bound::le(-vi);
                        if !zone.constrain(tempo_dbm::Clock::REF, atom.j, b) {
                            return None;
                        }
                    }
                    (None, Some(vj)) => {
                        // x_i - vj ≺ c  ⇒  x_i - 0 ≺ c + vj
                        let b = atom.bound + tempo_dbm::Bound::le(vj);
                        if !zone.constrain(atom.i, tempo_dbm::Clock::REF, b) {
                            return None;
                        }
                    }
                    (None, None) => {
                        if !zone.constrain(atom.i, atom.j, atom.bound) {
                            return None;
                        }
                    }
                }
            }
        }
        (!zone.is_empty()).then_some(zone)
    }
}

/// Iterator over the cartesian product of `select` ranges.
struct SelectIter {
    ranges: Vec<(i64, i64)>,
    current: Option<Vec<i64>>,
}

impl SelectIter {
    fn new(ranges: &[(i64, i64)]) -> Self {
        let ok = ranges.iter().all(|(lo, hi)| lo <= hi);
        SelectIter {
            ranges: ranges.to_vec(),
            current: ok.then(|| ranges.iter().map(|(lo, _)| *lo).collect()),
        }
    }
}

impl Iterator for SelectIter {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let current = self.current.clone()?;
        // Advance.
        let mut next = current.clone();
        let mut pos = 0;
        loop {
            if pos == self.ranges.len() {
                self.current = None;
                break;
            }
            next[pos] += 1;
            if next[pos] <= self.ranges[pos].1 {
                self.current = Some(next);
                break;
            }
            next[pos] = self.ranges[pos].0;
            pos += 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkBuilder;
    use tempo_expr::Expr;

    #[test]
    fn select_iter_enumerates_product() {
        let items: Vec<_> = SelectIter::new(&[(0, 1), (5, 6)]).collect();
        assert_eq!(items, vec![vec![0, 5], vec![1, 5], vec![0, 6], vec![1, 6]]);
        let empty: Vec<_> = SelectIter::new(&[]).collect();
        assert_eq!(empty, vec![Vec::<i64>::new()]);
    }

    #[test]
    fn internal_edge_with_guard_and_reset() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location_with_invariant("L1", vec![ClockAtom::le(x, 3)]);
        a.edge(l0, l1)
            .guard_clock(ClockAtom::ge(x, 2))
            .reset(x, 0)
            .done();
        a.done();
        let net = b.build();
        let exp = Explorer::new(&net);
        let init = exp.initial_state();
        let succs = exp.successors(&init);
        assert_eq!(succs.len(), 1);
        let (_, next) = &succs[0];
        assert_eq!(next.locs[0], LocationId(1));
        // After reset and delay-closure with invariant x <= 3.
        assert!(next.zone.contains(&[0, 0]));
        assert!(next.zone.contains(&[0, 3]));
        assert!(!next.zone.contains(&[0, 4]));
    }

    #[test]
    fn binary_sync_requires_partner() {
        let mut b = NetworkBuilder::new();
        let c = b.channel("c");
        let mut a = b.automaton("Sender");
        let s0 = a.location("S0");
        let s1 = a.location("S1");
        a.edge(s0, s1).send(c).done();
        a.done();
        let net1 = b.build();
        let exp = Explorer::new(&net1);
        // No receiver: no successor.
        assert!(exp.successors(&exp.initial_state()).is_empty());

        let mut b = NetworkBuilder::new();
        let c = b.channel("c");
        let mut a = b.automaton("Sender");
        let s0 = a.location("S0");
        let s1 = a.location("S1");
        a.edge(s0, s1).send(c).done();
        a.done();
        let mut r = b.automaton("Receiver");
        let r0 = r.location("R0");
        let r1 = r.location("R1");
        r.edge(r0, r1).recv(c).done();
        r.done();
        let net2 = b.build();
        let exp = Explorer::new(&net2);
        let succs = exp.successors(&exp.initial_state());
        assert_eq!(succs.len(), 1);
        assert_eq!(succs[0].1.locs, vec![LocationId(1), LocationId(1)]);
    }

    #[test]
    fn committed_location_restricts_interleaving() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let a0 = a.location("A0");
        let ac = a.committed_location("AC");
        let a1 = a.location("A1");
        a.edge(a0, ac).done();
        a.edge(ac, a1).done();
        a.done();
        let mut o = b.automaton("Other");
        let o0 = o.location("O0");
        let o1 = o.location("O1");
        o.edge(o0, o1).done();
        o.done();
        let net = b.build();
        let exp = Explorer::new(&net);
        let init = exp.initial_state();
        // From (A0, O0): both A and Other can move.
        assert_eq!(exp.successors(&init).len(), 2);
        // Move A into the committed location.
        let committed_state = exp
            .successors(&init)
            .into_iter()
            .map(|(_, s)| s)
            .find(|s| s.locs[0] == ac)
            .expect("A can reach AC");
        // From (AC, O0): only A may move.
        let succs = exp.successors(&committed_state);
        assert_eq!(succs.len(), 1);
        assert_eq!(succs[0].1.locs[0], a1);
    }

    #[test]
    fn broadcast_reaches_all_enabled_receivers() {
        let mut b = NetworkBuilder::new();
        let bc = b.broadcast_channel("go");
        let flag = b.decls_mut().int("flag", 0, 1);
        let mut s = b.automaton("S");
        let s0 = s.location("S0");
        let s1 = s.location("S1");
        s.edge(s0, s1).send(bc).done();
        s.done();
        for (name, guard) in [
            ("R1", Expr::truth()),
            ("R2", Expr::var(flag).eq(Expr::konst(1))),
        ] {
            let mut r = b.automaton(name);
            let r0 = r.location("R0");
            let r1 = r.location("R1");
            r.edge(r0, r1).recv(bc).guard_data(guard).done();
            r.done();
        }
        let net = b.build();
        let exp = Explorer::new(&net);
        let succs = exp.successors(&exp.initial_state());
        // flag == 0: only R1 participates; sender still fires.
        assert_eq!(succs.len(), 1);
        let locs = &succs[0].1.locs;
        assert_eq!(locs[1], LocationId(1)); // R1 moved
        assert_eq!(locs[2], LocationId(0)); // R2 stayed
    }

    #[test]
    fn urgent_location_blocks_delay() {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let u = a.urgent_location("U");
        let l1 = a.location("L1");
        a.edge(u, l1).done();
        a.done();
        let net = b.build();
        let exp = Explorer::new(&net);
        let init = exp.initial_state();
        // No delay in urgent locations: x stays 0.
        let _ = x;
        assert!(init.zone.contains(&[0, 0]));
        assert!(!init.zone.contains(&[0, 1]));
    }

    #[test]
    fn deadlock_federation_detects_stuck_states() {
        // L0 --(x<=2)--> L1; from x>2 onward the state is dead.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.edge(l0, l1).guard_clock(ClockAtom::le(x, 2)).done();
        a.done();
        let net = b.build();
        let exp = Explorer::new(&net);
        let init = exp.initial_state();
        // The guard is reachable by delaying from every point <= 2, but the
        // zone is up-closed so points with x > 2 are present and stuck.
        let dead = exp.deadlock_federation(&init);
        assert!(!dead.is_empty());
        assert!(dead.contains(&[0, 3]));
        assert!(!dead.contains(&[0, 1]));
        // With an unbounded guard there is no deadlock.
        let mut b = NetworkBuilder::new();
        let _x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).done();
        a.done();
        let net = b.build();
        let exp = Explorer::new(&net);
        assert!(exp.deadlock_federation(&exp.initial_state()).is_empty());
    }

    #[test]
    fn sym_state_queries() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let aid = {
            a.edge(l0, l0).done();
            a.done()
        };
        let net = b.build();
        let exp = Explorer::new(&net);
        let init = exp.initial_state();
        assert!(init.is_at(aid, l0));
        let (locs, _) = init.discrete();
        assert_eq!(locs, vec![l0]);
    }
}
