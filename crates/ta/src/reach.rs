//! The symbolic model checker: reachability (`E<>`), safety (`A[]`),
//! deadlock-freedom, and exploration statistics.

use crate::explore::{Action, Explorer, SymState};
use crate::formula::StateFormula;
use crate::model::{LocationId, Network};
use crate::por::Por;
use crate::symmetry::Symmetry;
use std::collections::{HashMap, VecDeque};
use tempo_expr::Store;
use tempo_obs::{
    Budget, ExploreConfig, Governor, Outcome, ResidentStore, RunReport, SpillError, SpillMetrics,
    SpillStore, StateStore,
};

/// Resident per-node metadata kept by the exploration stores: the
/// parent edge (for trace reconstruction) and the index of the
/// symmetry permutation that canonicalized the state (`0` — the
/// identity — when symmetry is off).
pub(crate) type NodeMeta = (Option<(usize, Action)>, usize);

/// The [`StateStore`] behind a zone-graph exploration, chosen by the
/// spill knob of [`ExploreConfig`].
fn make_store(
    config: &ExploreConfig,
) -> Result<Box<dyn StateStore<SymState, NodeMeta>>, SpillError> {
    Ok(match &config.spill {
        Some(spill) => Box::new(SpillStore::create(spill)?),
        None => Box::new(ResidentStore::new()),
    })
}

/// Builds the [`RunReport`] of a zone-graph exploration from its
/// [`Stats`], the waiting-list high-water mark, the DBM dimensions
/// used (after active-clock reduction) and declared by the model, and
/// the out-of-core accounting of the state store.
pub(crate) fn exploration_report(
    gov: &Governor,
    stats: &Stats,
    peak_waiting: usize,
    dbm_dim: usize,
    dbm_dim_model: usize,
    spill: SpillMetrics,
) -> RunReport {
    RunReport {
        states_explored: stats.explored as u64,
        states_stored: stats.stored as u64,
        peak_waiting: peak_waiting as u64,
        sweeps: 0,
        runs_simulated: 0,
        dbm_dim: dbm_dim as u64,
        dbm_dim_model: dbm_dim_model as u64,
        wall_time: gov.elapsed(),
        por_ample_states: stats.por_ample as u64,
        por_fallback_states: stats.por_fallback as u64,
        sym_orbits: stats.sym_orbits as u64,
        sym_states_avoided: stats.sym_avoided as u64,
        spilled_states: spill.spilled_states,
        spill_bytes: spill.spill_bytes,
        spill_faults: spill.spill_faults,
        ..RunReport::default()
    }
}

/// A step of a symbolic diagnostic trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The action leading into `state` (`None` for the initial state).
    pub action: Option<Action>,
    /// The reached symbolic state.
    pub state: SymState,
}

/// A symbolic trace from the initial state to a witness state.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The steps, starting with the initial state.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Length in transitions (steps minus the initial state).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// Whether the trace is empty (no states at all).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// A multi-line human-readable rendering with location names.
    ///
    /// ```text
    /// (Safe, Safe, Free)
    ///   --appr[0]--> (Appr, Safe, Occ)
    /// ```
    #[must_use]
    pub fn render(&self, net: &crate::model::Network) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for step in &self.steps {
            let locs: Vec<&str> = step
                .state
                .locs
                .iter()
                .zip(net.automata())
                .map(|(&l, a)| a.locations[l.index()].name.as_str())
                .collect();
            match &step.action {
                None => {
                    let _ = writeln!(out, "({})", locs.join(", "));
                }
                Some(action) => {
                    let _ = writeln!(out, "  --{action}--> ({})", locs.join(", "));
                }
            }
        }
        out
    }

    /// A compact one-line rendering of the action sequence.
    #[must_use]
    pub fn action_summary(&self) -> String {
        self.steps
            .iter()
            .filter_map(|s| s.action.as_ref())
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// Network-independent rendering: location *indices* instead of names
/// (use [`Trace::render`] when the network is at hand).
impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            let locs: Vec<String> = step
                .state
                .locs
                .iter()
                .map(|l| l.index().to_string())
                .collect();
            match &step.action {
                None => writeln!(f, "({})", locs.join(", "))?,
                Some(action) => writeln!(f, "  --{action}--> ({})", locs.join(", "))?,
            }
        }
        Ok(())
    }
}

/// The verdict of a model-checking query, with witness/counterexample
/// trace where applicable.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The property is satisfied.
    Satisfied,
    /// The property is violated; the trace witnesses the violation (for
    /// `A[]`) or the reachability witness (for `E<>` this means
    /// *satisfied* and the trace leads to the witness).
    Violated(Trace),
}

impl Verdict {
    /// Whether the property holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Satisfied)
    }
}

/// Statistics of a symbolic exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Symbolic states popped from the waiting list.
    pub explored: usize,
    /// Zones stored in the passed list (after inclusion reduction).
    pub stored: usize,
    /// Successor computations.
    pub transitions: usize,
    /// States expanded with a reduced (ample) successor set.
    pub por_ample: usize,
    /// States expanded fully although partial-order reduction was active
    /// (committed locations, no enabled candidate, or the C3 cycle
    /// proviso re-expanded the state).
    pub por_fallback: usize,
    /// Orbit groups of replicated components detected by the symmetry
    /// analysis (`0` when the reduction is off or found nothing).
    pub sym_orbits: usize,
    /// Successor states that were folded into an already-stored orbit
    /// representative instead of being stored themselves.
    pub sym_avoided: usize,
}

/// Result of a reachability query: whether a goal state was found, the
/// witness trace if so, and exploration statistics.
#[derive(Debug, Clone)]
pub struct ReachResult {
    /// Whether a state satisfying the goal was reached.
    pub reachable: bool,
    /// A shortest (in transitions) symbolic witness trace, if reachable.
    pub trace: Option<Trace>,
    /// Exploration statistics.
    pub stats: Stats,
}

/// The symbolic model checker for a network of timed automata.
///
/// By default the checker runs its single-threaded reference engine. Call
/// [`ModelChecker::with_threads`] (or [`ModelChecker::with_parallelism`])
/// to explore the zone graph with a worker pool instead: verdicts are
/// identical at any thread count, while witness traces may be any valid
/// trace rather than the BFS-shortest one.
///
/// ```
/// use tempo_ta::{NetworkBuilder, ModelChecker, StateFormula};
/// let mut b = NetworkBuilder::new();
/// let mut a = b.automaton("A");
/// let l0 = a.location("L0");
/// let l1 = a.location("L1");
/// a.edge(l0, l1).done();
/// let aid = a.done();
/// let net = b.build();
/// let mut mc = ModelChecker::new(&net);
/// let goal = StateFormula::at(aid, l1);
/// assert!(mc.reachable(&goal).reachable);
/// ```
#[derive(Debug)]
pub struct ModelChecker<'n> {
    net: &'n Network,
    threads: usize,
    reduce: bool,
    config: ExploreConfig,
    last_flow: crate::flow::FlowMetrics,
}

impl<'n> ModelChecker<'n> {
    /// Creates a checker for the network (single-threaded reference
    /// engine; active-clock reduction, ample-set partial-order reduction
    /// and template-symmetry reduction enabled).
    #[must_use]
    pub fn new(net: &'n Network) -> Self {
        ModelChecker {
            net,
            threads: 1,
            reduce: true,
            config: ExploreConfig::default(),
            last_flow: crate::flow::FlowMetrics::default(),
        }
    }

    /// Disables active-clock reduction, exploring the network at its
    /// declared DBM dimension. Verdicts are identical either way; this
    /// knob exists for benchmarking and differential testing.
    #[must_use]
    pub fn without_reduction(mut self) -> Self {
        self.reduce = false;
        self
    }

    /// Sets the state-space reduction knobs (partial-order and symmetry
    /// reduction). Both are on by default and conservative: each
    /// switches itself off on any model/property where its soundness
    /// conditions are not met, so verdicts are identical at any setting.
    #[must_use]
    pub fn with_config(mut self, config: ExploreConfig) -> Self {
        self.config = config;
        self
    }

    /// The configured reduction knobs.
    #[must_use]
    pub fn config(&self) -> ExploreConfig {
        self.config.clone()
    }

    /// Use `threads` workers for zone-graph exploration (`<= 1` selects the
    /// sequential reference engine).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Use the worker count resolved from a [`tempo_conc::ParallelConfig`].
    #[must_use]
    pub fn with_parallelism(self, config: tempo_conc::ParallelConfig) -> Self {
        self.with_threads(config.threads())
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The network under analysis.
    #[must_use]
    pub fn network(&self) -> &Network {
        self.net
    }

    /// `E<> goal`: is some state satisfying `goal` reachable?
    #[must_use]
    pub fn reachable(&mut self, goal: &StateFormula) -> ReachResult {
        self.reachable_governed(goal, &Budget::unlimited())
            .into_value()
    }

    /// `E<> goal` under a resource [`Budget`].
    ///
    /// With [`Budget::unlimited`] this is exactly [`ModelChecker::reachable`].
    /// On exhaustion the partial result has `reachable == false`, to be
    /// read as "no witness found within the explored portion" — the
    /// `Exhausted` wrapper marks it non-definitive. A witness found in the
    /// same step the budget trips is still returned as `Complete`, because
    /// reachability witnesses are sound regardless of coverage.
    ///
    /// # Panics
    ///
    /// Panics on a spill-store failure, which is only possible when
    /// [`ExploreConfig::with_spill`] is set — use
    /// [`ModelChecker::try_reachable_governed`] then.
    pub fn reachable_governed(
        &mut self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Outcome<ReachResult> {
        self.try_reachable_governed(goal, budget)
            .expect("spill store failed; use try_reachable_governed with ExploreConfig::with_spill")
    }

    /// `E<> goal` under a resource [`Budget`], surfacing spill-store
    /// failures as typed errors.
    ///
    /// With the default in-memory store this never fails; with
    /// [`ExploreConfig::with_spill`] any I/O failure or torn/corrupt
    /// spill record aborts the query with a [`SpillError`] — never a
    /// wrong verdict.
    ///
    /// # Errors
    ///
    /// [`SpillError`] when the disk-backed state store fails.
    pub fn try_reachable_governed(
        &mut self,
        goal: &StateFormula,
        budget: &Budget,
    ) -> Result<Outcome<ReachResult>, SpillError> {
        let gov = budget.governor();
        let (res, peak, dim, spill) = self.search(goal, None, &gov)?;
        let report = self.last_flow.stamp(exploration_report(
            &gov,
            &res.stats,
            peak,
            dim,
            self.net.dim(),
            spill,
        ));
        Ok(if res.reachable {
            gov.finish_complete(res, report)
        } else {
            gov.finish(res, report)
        })
    }

    /// `A[] safe`: does `safe` hold in every reachable state (and every
    /// valuation of its zone)? Equivalent to `not E<> not safe`.
    #[must_use]
    pub fn always(&mut self, safe: &StateFormula) -> (Verdict, Stats) {
        self.always_governed(safe, &Budget::unlimited())
            .into_value()
    }

    /// `A[] safe` under a resource [`Budget`].
    ///
    /// A violation is definitive (`Complete`) even if found on the last
    /// budgeted state. On exhaustion the partial verdict is
    /// `Satisfied`, to be read as "no violation found within the explored
    /// portion" — never as a proof.
    ///
    /// # Panics
    ///
    /// Panics on a spill-store failure, which is only possible when
    /// [`ExploreConfig::with_spill`] is set — use
    /// [`ModelChecker::try_always_governed`] then.
    pub fn always_governed(
        &mut self,
        safe: &StateFormula,
        budget: &Budget,
    ) -> Outcome<(Verdict, Stats)> {
        self.try_always_governed(safe, budget)
            .expect("spill store failed; use try_always_governed with ExploreConfig::with_spill")
    }

    /// `A[] safe` under a resource [`Budget`], surfacing spill-store
    /// failures as typed errors (see
    /// [`ModelChecker::try_reachable_governed`]).
    ///
    /// # Errors
    ///
    /// [`SpillError`] when the disk-backed state store fails.
    pub fn try_always_governed(
        &mut self,
        safe: &StateFormula,
        budget: &Budget,
    ) -> Result<Outcome<(Verdict, Stats)>, SpillError> {
        let neg = StateFormula::not(safe.clone());
        let gov = budget.governor();
        let (res, peak, dim, spill) = self.search(&neg, None, &gov)?;
        let report = self.last_flow.stamp(exploration_report(
            &gov,
            &res.stats,
            peak,
            dim,
            self.net.dim(),
            spill,
        ));
        Ok(if res.reachable {
            let value = (Verdict::Violated(res.trace.unwrap_or_default()), res.stats);
            gov.finish_complete(value, report)
        } else {
            gov.finish((Verdict::Satisfied, res.stats), report)
        })
    }

    /// `A[] not deadlock`: no reachable state contains a valuation from
    /// which no action transition is possible now or after delay.
    #[must_use]
    pub fn deadlock_free(&mut self) -> (Verdict, Stats) {
        self.deadlock_free_governed(&Budget::unlimited())
            .into_value()
    }

    /// `A[] not deadlock` under a resource [`Budget`]. Same partial
    /// semantics as [`ModelChecker::always_governed`]: a deadlock found is
    /// definitive, exhaustion means "none found so far".
    ///
    /// # Panics
    ///
    /// Panics on a spill-store failure, which is only possible when
    /// [`ExploreConfig::with_spill`] is set — use
    /// [`ModelChecker::try_deadlock_free_governed`] then.
    pub fn deadlock_free_governed(&mut self, budget: &Budget) -> Outcome<(Verdict, Stats)> {
        self.try_deadlock_free_governed(budget).expect(
            "spill store failed; use try_deadlock_free_governed with ExploreConfig::with_spill",
        )
    }

    /// `A[] not deadlock` under a resource [`Budget`], surfacing
    /// spill-store failures as typed errors (see
    /// [`ModelChecker::try_reachable_governed`]).
    ///
    /// # Errors
    ///
    /// [`SpillError`] when the disk-backed state store fails.
    pub fn try_deadlock_free_governed(
        &mut self,
        budget: &Budget,
    ) -> Result<Outcome<(Verdict, Stats)>, SpillError> {
        let gov = budget.governor();
        let (verdict, stats, peak, dim, spill) = self.deadlock_search(&gov)?;
        let report = exploration_report(&gov, &stats, peak, dim, self.net.dim(), spill);
        Ok(if verdict.holds() {
            gov.finish((verdict, stats), report)
        } else {
            gov.finish_complete((verdict, stats), report)
        })
    }

    /// BFS over the zone graph with an inclusion-reduced passed list.
    /// Stops when a state intersecting `goal` is found. `prune`: states
    /// fully satisfying it are not expanded (used by bounded searches).
    /// Dispatches to the parallel engine when more than one worker is
    /// configured.
    fn search(
        &mut self,
        goal: &StateFormula,
        prune: Option<&StateFormula>,
        gov: &Governor,
    ) -> Result<(ReachResult, usize, usize, SpillMetrics), SpillError> {
        self.last_flow = crate::flow::FlowMetrics::default();
        let mut atoms = goal.clock_atoms();
        if let Some(p) = prune {
            atoms.extend(p.clock_atoms());
        }
        // Query-directed slicing: disable edges that provably never fire
        // (empty data guards under the range fixpoint, partnerless
        // synchronizations) before the clock analysis, so that clocks
        // only those edges observed can be dropped as well.
        let sliced = self.config.slice.then(|| crate::slice::slice(self.net));
        let base: &Network = sliced.as_ref().map_or(self.net, |s| &s.net);
        if let Some(s) = &sliced {
            self.last_flow.sliced_edges = s.disabled_edges;
            self.last_flow.vars_narrowed = s.vars_narrowed;
            self.last_flow.sliced_vars = s.dead_vars.len() as u64;
        }
        // Active-clock reduction: drop clocks that neither the model nor
        // the query reads, shrinking every DBM of the exploration. The
        // query's atoms are kept alive, so verdicts are unchanged.
        let reduction = self.reduce.then(|| base.reduced_with(&atoms));
        if let (Some(s), Some(r)) = (&sliced, &reduction) {
            if s.disabled_edges > 0 {
                let plain = self.net.reduced_with(&atoms).removed().len();
                self.last_flow.sliced_clocks = (r.removed().len().saturating_sub(plain)) as u64;
            }
        }
        // Graceful fallback: if a property atom's clock was dropped
        // anyway (a mapping bug or a degenerate model), explore the
        // unreduced network instead of panicking — verdicts only.
        let (net, goal, prune) = match &reduction {
            Some(r) if r.is_reduced() => {
                match (r.map_formula(goal), prune.map(|p| r.map_formula(p))) {
                    (Some(g), None) => (r.network(), g, None),
                    (Some(g), Some(Some(p))) => (r.network(), g, Some(p)),
                    _ => (base, goal.clone(), prune.cloned()),
                }
            }
            _ => (base, goal.clone(), prune.cloned()),
        };
        let (goal, prune) = (&goal, prune.as_ref());
        let dim = net.dim();

        // State-space reductions, each conservative by construction: the
        // analyses return nothing whenever their soundness conditions
        // are not met by this model + property.
        let mut formulas: Vec<&StateFormula> = vec![goal];
        if let Some(p) = prune {
            formulas.push(p);
        }
        let por = self
            .config
            .por
            .then(|| Por::analyze(net, &formulas))
            .filter(Por::is_active);
        let sym = if self.config.symmetry {
            Symmetry::detect(net, &formulas)
        } else {
            None
        };

        // Per-location LU extrapolation: strictly coarser than Extra_M
        // (so strictly fewer symbolic states), sound for reachability
        // with the property atoms protected at every location. Witness
        // traces are renormalized through a classic-extrapolation
        // explorer afterwards, so the trace contract (every step is a
        // literal state of the plain zone graph) survives the coarser
        // quotient.
        let replay = self
            .config
            .lu
            .then(|| Explorer::with_extra_constants(net, &goal.clock_atoms()));
        let mut explorer = Explorer::with_extra_constants(net, &goal.clock_atoms());
        if self.config.lu {
            let mut protect = goal.clock_atoms();
            if let Some(p) = prune {
                protect.extend(p.clock_atoms());
            }
            let lu = crate::flow::NetworkLu::analyze(net, &protect);
            self.last_flow.lu_tightened = lu.tightened(&net.max_constants());
            explorer = explorer.with_lu(lu);
        }
        if self.threads > 1 {
            let (trace, stats, peak, spill) = crate::par_reach::parallel_search(
                net,
                &explorer,
                self.threads,
                |state: &SymState| goal.holds_somewhere(net, state),
                prune,
                por.as_ref(),
                sym.as_ref(),
                self.config.spill.as_ref(),
                gov,
            )?;
            let trace = trace.map(|t| renormalize_trace(replay.as_ref(), t));
            return Ok((
                ReachResult {
                    reachable: trace.is_some(),
                    trace,
                    stats,
                },
                peak,
                dim,
                spill,
            ));
        }
        let mut stats = Stats {
            sym_orbits: sym.as_ref().map_or(0, Symmetry::orbit_count),
            ..Stats::default()
        };
        let mut peak = 0usize;
        let mut store = make_store(&self.config)?;

        let init = explorer.initial_state();
        let (init, init_perm) = match &sym {
            Some(s) => s.canonicalize(net, &init),
            None => (init, 0),
        };
        if gov.charge_state() {
            store.insert(init, (None, init_perm))?;
            peak = 1;
        }

        while let Some(idx) = store.pop_waiting() {
            if !gov.check_time() {
                break;
            }
            let state = store.load(idx)?;
            stats.explored += 1;
            if goal.holds_somewhere(net, &state) {
                stats.stored = store.stored();
                let trace = build_trace(store.as_mut(), idx, net, sym.as_ref())?;
                let trace = renormalize_trace(replay.as_ref(), trace);
                let spill = store.metrics();
                return Ok((
                    ReachResult {
                        reachable: true,
                        trace: Some(trace),
                        stats,
                    },
                    peak,
                    dim,
                    spill,
                ));
            }
            if let Some(p) = prune {
                if p.holds_everywhere(net, &state) {
                    continue;
                }
            }
            let (mut pending, mut used_ample) = match &por {
                Some(p) => match p.ample(&explorer, &state) {
                    Some(s) => (s, true),
                    None => (explorer.successors(&state), false),
                },
                None => (explorer.successors(&state), false),
            };
            if por.is_some() {
                if used_ample {
                    stats.por_ample += 1;
                } else {
                    stats.por_fallback += 1;
                }
            }
            let mut out_of_states = false;
            loop {
                let mut any_subsumed = false;
                for (action, succ) in pending {
                    stats.transitions += 1;
                    let (succ, perm) = match &sym {
                        Some(s) => s.canonicalize(net, &succ),
                        None => (succ, 0),
                    };
                    if store.is_subsumed(&succ)? {
                        any_subsumed = true;
                        if perm != 0 {
                            stats.sym_avoided += 1;
                        }
                        continue;
                    }
                    if !gov.charge_state() {
                        out_of_states = true;
                        break;
                    }
                    store.insert(succ, (Some((idx, action)), perm))?;
                    peak = peak.max(store.waiting_len());
                }
                // C3 cycle proviso: an ample successor was subsumed by an
                // already-stored state, i.e. the reduced expansion may
                // close a cycle along which the deferred transitions
                // would be ignored forever. Re-expand this state fully
                // (already-inserted ample successors dedup via the
                // inclusion check).
                if used_ample && any_subsumed && !out_of_states {
                    pending = explorer.successors(&state);
                    used_ample = false;
                    stats.por_ample -= 1;
                    stats.por_fallback += 1;
                    continue;
                }
                break;
            }
            if out_of_states {
                break;
            }
        }
        stats.stored = store.stored();
        let spill = store.metrics();
        Ok((
            ReachResult {
                reachable: false,
                trace: None,
                stats,
            },
            peak,
            dim,
            spill,
        ))
    }

    /// Full exploration checking the symbolic deadlock condition on every
    /// state. Dispatches to the parallel engine when more than one worker
    /// is configured.
    fn deadlock_search(
        &mut self,
        gov: &Governor,
    ) -> Result<(Verdict, Stats, usize, usize, SpillMetrics), SpillError> {
        // The deadlock condition only reads guards and invariants, so
        // active-clock reduction preserves it exactly.
        let reduction = self.reduce.then(|| self.net.reduced());
        let net = match &reduction {
            Some(r) if r.is_reduced() => r.network(),
            _ => self.net,
        };
        let dim = net.dim();
        // The deadlock predicate is invariant under template automorphisms
        // (permuting identical components maps enabled transitions to
        // enabled transitions), so symmetry reduction is sound here.
        // Partial-order reduction is not: ample automata are exactly the
        // ones that keep firing, and skipping interleavings could hide a
        // deadlock of the *other* components. Keep it off.
        let sym = if self.config.symmetry {
            Symmetry::detect(net, &[])
        } else {
            None
        };
        let explorer = Explorer::new(net);
        if self.threads > 1 {
            let (trace, stats, peak, spill) = crate::par_reach::parallel_search(
                net,
                &explorer,
                self.threads,
                |state: &SymState| !explorer.deadlock_federation(state).is_empty(),
                None,
                None,
                sym.as_ref(),
                self.config.spill.as_ref(),
                gov,
            )?;
            return Ok(match trace {
                Some(t) => (Verdict::Violated(t), stats, peak, dim, spill),
                None => (Verdict::Satisfied, stats, peak, dim, spill),
            });
        }
        let mut stats = Stats {
            sym_orbits: sym.as_ref().map_or(0, Symmetry::orbit_count),
            ..Stats::default()
        };
        let mut peak = 0usize;
        let mut store = make_store(&self.config)?;

        let init = explorer.initial_state();
        let (init, init_perm) = match &sym {
            Some(s) => s.canonicalize(net, &init),
            None => (init, 0),
        };
        if gov.charge_state() {
            store.insert(init, (None, init_perm))?;
            peak = 1;
        }

        while let Some(idx) = store.pop_waiting() {
            if !gov.check_time() {
                break;
            }
            let state = store.load(idx)?;
            stats.explored += 1;
            if !explorer.deadlock_federation(&state).is_empty() {
                stats.stored = store.stored();
                let trace = build_trace(store.as_mut(), idx, net, sym.as_ref())?;
                let spill = store.metrics();
                return Ok((Verdict::Violated(trace), stats, peak, dim, spill));
            }
            let mut out_of_states = false;
            for (action, succ) in explorer.successors(&state) {
                stats.transitions += 1;
                let (succ, perm) = match &sym {
                    Some(s) => s.canonicalize(net, &succ),
                    None => (succ, 0),
                };
                if store.is_subsumed(&succ)? {
                    if perm != 0 {
                        stats.sym_avoided += 1;
                    }
                    continue;
                }
                if !gov.charge_state() {
                    out_of_states = true;
                    break;
                }
                store.insert(succ, (Some((idx, action)), perm))?;
                peak = peak.max(store.waiting_len());
            }
            if out_of_states {
                break;
            }
        }
        stats.stored = store.stored();
        let spill = store.metrics();
        Ok((Verdict::Satisfied, stats, peak, dim, spill))
    }

    /// Enumerates all reachable symbolic states (inclusion-reduced).
    #[must_use]
    pub fn reachable_states(&mut self) -> (Vec<SymState>, Stats) {
        self.reachable_states_governed(&Budget::unlimited())
            .into_value()
    }

    /// Enumerates reachable symbolic states under a resource [`Budget`].
    /// On exhaustion the partial value is the (inclusion-reduced) set of
    /// states collected so far — a sound under-approximation of the
    /// reachable set.
    pub fn reachable_states_governed(
        &mut self,
        budget: &Budget,
    ) -> Outcome<(Vec<SymState>, Stats)> {
        let gov = budget.governor();
        let explorer = Explorer::new(self.net);
        let mut stats = Stats::default();
        let mut peak = 0usize;
        let mut states: Vec<SymState> = Vec::new();
        let mut passed: HashMap<(Vec<LocationId>, Store), Vec<usize>> = HashMap::new();
        let mut waiting: VecDeque<usize> = VecDeque::new();

        let init = explorer.initial_state();
        if gov.charge_state() {
            passed.insert(init.discrete(), vec![0]);
            states.push(init);
            waiting.push_back(0);
            peak = 1;
        }

        'explore: while let Some(idx) = waiting.pop_front() {
            if !gov.check_time() {
                break;
            }
            let state = states[idx].clone();
            stats.explored += 1;
            for (_, succ) in explorer.successors(&state) {
                stats.transitions += 1;
                let key = succ.discrete();
                let entry = passed.entry(key).or_default();
                if entry
                    .iter()
                    .any(|&i| succ.zone.is_subset_of(&states[i].zone))
                {
                    continue;
                }
                if !gov.charge_state() {
                    break 'explore;
                }
                entry.retain(|&i| !states[i].zone.is_subset_of(&succ.zone));
                states.push(succ);
                let new_idx = states.len() - 1;
                passed
                    .get_mut(&states[new_idx].discrete())
                    .expect("entry exists")
                    .push(new_idx);
                waiting.push_back(new_idx);
                peak = peak.max(waiting.len());
            }
        }
        stats.stored = passed.values().map(Vec::len).sum();
        let report = exploration_report(
            &gov,
            &stats,
            peak,
            self.net.dim(),
            self.net.dim(),
            SpillMetrics::default(),
        );
        gov.finish((states, stats), report)
    }
}

/// Replays a witness's action sequence through a classic-extrapolation
/// explorer. LU extrapolation stores coarser zones than the plain zone
/// graph, but the trace contract is that every step is literally a
/// state of that graph (independent replayers walk [`Explorer`]
/// successors). Soundness of the ⌈LU⌉ quotient guarantees the action
/// sequence is also a path of the classic graph; should it not be (a
/// bug), the stored trace is returned unchanged so the downstream
/// validators flag it instead of this pass masking it.
fn renormalize_trace(replay: Option<&Explorer>, trace: Trace) -> Trace {
    let Some(explorer) = replay else {
        return trace;
    };
    if trace.steps.is_empty() || trace.steps[0].action.is_some() {
        return trace;
    }
    let mut state = explorer.initial_state();
    let mut steps = vec![TraceStep {
        action: None,
        state: state.clone(),
    }];
    for step in &trace.steps[1..] {
        let Some(action) = &step.action else {
            return trace;
        };
        let Some((_, succ)) = explorer
            .successors(&state)
            .into_iter()
            .find(|(a, _)| a == action)
        else {
            return trace;
        };
        state = succ;
        steps.push(TraceStep {
            action: Some(action.clone()),
            state: state.clone(),
        });
    }
    Trace { steps }
}

/// Reconstructs the witness trace from the exploration store, faulting
/// spilled states back from disk as needed. When symmetry reduction
/// canonicalized states along the way, the stored chain mixes orbit
/// representatives from different permutations; the realization pass
/// maps every step back into one concrete execution of the original
/// network.
fn build_trace(
    store: &mut dyn StateStore<SymState, NodeMeta>,
    mut idx: usize,
    net: &Network,
    sym: Option<&Symmetry>,
) -> Result<Trace, SpillError> {
    let mut rev = Vec::new();
    loop {
        let state = store.load(idx)?;
        let (parent, perm) = store.meta(idx).clone();
        match parent {
            Some((p, action)) => {
                rev.push((state, Some(action), perm));
                idx = p;
            }
            None => {
                rev.push((state, None, perm));
                break;
            }
        }
    }
    rev.reverse();
    let steps = match sym {
        Some(s) => crate::symmetry::realize(s, net, &rev),
        None => rev
            .into_iter()
            .map(|(state, action, _)| (state, action))
            .collect(),
    };
    Ok(Trace {
        steps: steps
            .into_iter()
            .map(|(state, action)| TraceStep { action, state })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClockAtom, NetworkBuilder};

    #[test]
    fn simple_reachability_with_trace() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        let l2 = a.location("L2");
        a.edge(l0, l1).done();
        a.edge(l1, l2).done();
        let aid = a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        let res = mc.reachable(&StateFormula::at(aid, l2));
        assert!(res.reachable);
        let trace = res.trace.unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace.steps[0].action.is_none());
    }

    #[test]
    fn timed_reachability_respects_guards() {
        // L1 requires x >= 5 but the invariant of L0 is x <= 3: unreachable.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 3)]);
        let l1 = a.location("L1");
        a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 5)).done();
        let aid = a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        assert!(!mc.reachable(&StateFormula::at(aid, l1)).reachable);
    }

    #[test]
    fn safety_with_clock_bound() {
        // x is reset on the only cycle, so x <= 10 always holds in L1.
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("A");
        let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 10)]);
        let l1 = a.location_with_invariant("L1", vec![ClockAtom::le(x, 4)]);
        a.edge(l0, l1).reset(x, 0).done();
        a.edge(l1, l0).reset(x, 0).done();
        let aid = a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        let safe = StateFormula::or(vec![
            StateFormula::not(StateFormula::at(aid, l1)),
            StateFormula::clock(ClockAtom::le(x, 4)),
        ]);
        let (verdict, _) = mc.always(&safe);
        assert!(verdict.holds());
        // But x <= 3 in L1 is violated.
        let tight = StateFormula::or(vec![
            StateFormula::not(StateFormula::at(aid, l1)),
            StateFormula::clock(ClockAtom::le(x, 3)),
        ]);
        let (verdict, _) = mc.always(&tight);
        assert!(!verdict.holds());
    }

    #[test]
    fn deadlock_detection() {
        // Sink location with no edges: deadlock.
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let sink = a.location("Sink");
        a.edge(l0, sink).done();
        a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        let (verdict, _) = mc.deadlock_free();
        assert!(!verdict.holds());
        // Self-loop: deadlock-free.
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        a.edge(l0, l0).done();
        a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        let (verdict, _) = mc.deadlock_free();
        assert!(verdict.holds());
    }

    #[test]
    fn reachable_states_enumeration() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        a.edge(l0, l1).done();
        a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        let (states, stats) = mc.reachable_states();
        assert_eq!(states.len(), 2);
        assert!(stats.explored >= 2);
    }

    #[test]
    fn trace_rendering_uses_location_names() {
        let mut b = NetworkBuilder::new();
        let mut a = b.automaton("A");
        let l0 = a.location("Start");
        let l1 = a.location("Goal");
        a.edge(l0, l1).done();
        let aid = a.done();
        let net = b.build();
        let mut mc = ModelChecker::new(&net);
        let res = mc.reachable(&StateFormula::at(aid, l1));
        let rendered = res.trace.unwrap().render(&net);
        assert!(rendered.contains("(Start)"));
        assert!(rendered.contains("(Goal)"));
        assert!(rendered.contains("-->"));
    }

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Satisfied.holds());
        assert!(!Verdict::Violated(Trace::default()).holds());
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
