//! Network-level adapters for the `tempo-flow` abstract-interpretation
//! passes.
//!
//! Three analyses are lifted from the generic solvers in `tempo-flow`
//! to [`Network`]s:
//!
//! * [`NetworkLu`] — per-location lower/upper clock-bound tables, one
//!   [`LuBounds`] per component automaton. The per-state bounds handed
//!   to `Dbm::extrapolate_lu` are the pointwise maxima over the
//!   automata, which is sound because each component solution is
//!   non-increasing along its own reset-free edges and unchanged for
//!   non-participants of a product transition.
//! * [`network_ranges`] — a flow-insensitive interval fixpoint over the
//!   shared variable store, treating every edge as one guarded command.
//! * [`dead_variables`] — the complement of the cone-of-influence
//!   closure seeded by every observable expression: variables that are
//!   written but never read on any path to a guard, synchronization
//!   index or clock reset.

use std::collections::BTreeSet;

use tempo_dbm::Clock;
use tempo_expr::VarId;
use tempo_flow::{
    expr_vars, relevant_vars, stmt_assignments, Command, LuAutomaton, LuBounds, LuEdge,
    RangeAnalysis, NO_BOUND,
};

use crate::model::{ClockAtom, LocationId, Network};
use tempo_obs::RunReport;

/// The run-report metrics produced by the dataflow passes for one
/// search: how much the static analyses actually removed or tightened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowMetrics {
    /// `(location, clock)` pairs with an LU bound strictly tighter than
    /// the clock's global maximal constant.
    pub lu_tightened: u64,
    /// Variables whose range fixpoint is strictly inside their declared
    /// range.
    pub vars_narrowed: u64,
    /// Clocks removed by active-clock reduction *beyond* what it removes
    /// without slicing.
    pub sliced_clocks: u64,
    /// Write-only variables outside the cone of influence of every
    /// observable expression.
    pub sliced_vars: u64,
    /// Edges disabled by slicing.
    pub sliced_edges: u64,
}

impl FlowMetrics {
    /// Stamps the metrics into a run report.
    #[must_use]
    pub fn stamp(&self, mut report: RunReport) -> RunReport {
        report.lu_tightened = self.lu_tightened;
        report.vars_narrowed = self.vars_narrowed;
        report.sliced_clocks = self.sliced_clocks;
        report.sliced_vars = self.sliced_vars;
        report.sliced_edges = self.sliced_edges;
        report
    }
}

/// Splits one clock constraint into LU solver atoms. Diagonal
/// constraints fold `|c|` into both polarities of both clocks, matching
/// the conservative treatment of `Network::max_constants`.
fn atom_bounds(atom: &ClockAtom, lower: &mut Vec<(usize, i64)>, upper: &mut Vec<(usize, i64)>) {
    let c = atom.bound.constant();
    match (atom.i == Clock::REF, atom.j == Clock::REF) {
        (false, true) => upper.push((atom.i.index(), c)),
        (true, false) => lower.push((atom.j.index(), -c)),
        (false, false) => {
            let m = c.saturating_abs();
            for x in [atom.i.index(), atom.j.index()] {
                lower.push((x, m));
                upper.push((x, m));
            }
        }
        (true, true) => {}
    }
}

/// Per-location LU clock bounds for a whole network: one solved
/// [`LuBounds`] table per automaton, combined per state by pointwise
/// maximum.
#[derive(Clone, Debug)]
pub struct NetworkLu {
    per_automaton: Vec<LuBounds>,
    dim: usize,
}

impl NetworkLu {
    /// Solves the LU fixpoint of every automaton of `net` and folds the
    /// `protect` atoms (property bounds, which are observable in every
    /// location) into the tables.
    #[must_use]
    pub fn analyze(net: &Network, protect: &[ClockAtom]) -> NetworkLu {
        let dim = net.dim();
        let mut per_automaton: Vec<LuBounds> = net
            .automata()
            .iter()
            .map(|a| {
                let lu = LuAutomaton {
                    locations: a.locations.len(),
                    edges: a
                        .edges
                        .iter()
                        .map(|e| {
                            let mut lower = Vec::new();
                            let mut upper = Vec::new();
                            for atom in &e.guard_clocks {
                                atom_bounds(atom, &mut lower, &mut upper);
                            }
                            LuEdge {
                                from: e.from.index(),
                                to: e.to.index(),
                                resets: e.resets.iter().map(|(x, _)| x.index()).collect(),
                                lower,
                                upper,
                            }
                        })
                        .collect(),
                    invariants: a
                        .locations
                        .iter()
                        .map(|l| {
                            let mut lower = Vec::new();
                            let mut upper = Vec::new();
                            for atom in &l.invariant {
                                atom_bounds(atom, &mut lower, &mut upper);
                            }
                            (lower, upper)
                        })
                        .collect(),
                };
                LuBounds::solve(&lu, dim)
            })
            .collect();
        // The combined per-state bound is a maximum over components, so
        // folding the property atoms into one component protects them
        // in every state.
        if let Some(first) = per_automaton.first_mut() {
            let mut lower = Vec::new();
            let mut upper = Vec::new();
            for atom in protect {
                atom_bounds(atom, &mut lower, &mut upper);
            }
            for (x, c) in lower.into_iter().chain(upper) {
                first.protect(x, c);
            }
        }
        NetworkLu { per_automaton, dim }
    }

    /// The DBM dimension the tables were solved for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes the LU vectors of the discrete configuration `locs` into
    /// `lower`/`upper` (resized to the DBM dimension): pointwise maxima
    /// of the component tables. The reference entry is pinned to `0`,
    /// every other unobserved clock to [`NO_BOUND`] (treated as −∞ by
    /// `Dbm::extrapolate_lu`).
    pub fn state_bounds(&self, locs: &[LocationId], lower: &mut Vec<i64>, upper: &mut Vec<i64>) {
        lower.clear();
        lower.resize(self.dim, NO_BOUND);
        upper.clear();
        upper.resize(self.dim, NO_BOUND);
        lower[0] = 0;
        upper[0] = 0;
        for (b, &l) in self.per_automaton.iter().zip(locs) {
            let lo = &b.lower[l.index()];
            let up = &b.upper[l.index()];
            for x in 1..self.dim {
                if lo[x] > lower[x] {
                    lower[x] = lo[x];
                }
                if up[x] > upper[x] {
                    upper[x] = up[x];
                }
            }
        }
    }

    /// How many `(location, clock)` pairs have an LU bound strictly
    /// tighter than the clock's global maximal constant — the
    /// `lu_tightened` run-report metric.
    #[must_use]
    pub fn tightened(&self, max_consts: &[i64]) -> u64 {
        let mut n = 0;
        for b in &self.per_automaton {
            for l in 0..b.lower.len() {
                for (x, &m) in max_consts.iter().enumerate().take(self.dim).skip(1) {
                    if b.lower[l][x] < m || b.upper[l][x] < m {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

/// Every edge of the network as one guarded command of the global range
/// fixpoint.
#[must_use]
pub fn network_commands(net: &Network) -> Vec<Command> {
    let mut out = Vec::new();
    for a in net.automata() {
        for e in &a.edges {
            out.push(Command {
                guard: e.guard_data.clone(),
                update: e.update.clone(),
                selects: e.selects.clone(),
            });
        }
    }
    out
}

/// Runs the flow-insensitive interval range fixpoint over all edges of
/// `net` from its initial store.
#[must_use]
pub fn network_ranges(net: &Network) -> RangeAnalysis {
    RangeAnalysis::run(net.decls(), &network_commands(net))
}

/// Variables read by any observable expression of the network: data
/// guards, synchronization index expressions and clock-reset values.
#[must_use]
pub fn observable_vars(net: &Network) -> BTreeSet<VarId> {
    let mut seeds = BTreeSet::new();
    for a in net.automata() {
        for e in &a.edges {
            expr_vars(&e.guard_data, &mut seeds);
            if let Some(sync) = &e.sync {
                expr_vars(&sync.index, &mut seeds);
            }
            for (_, value) in &e.resets {
                expr_vars(value, &mut seeds);
            }
        }
    }
    seeds
}

/// Variables that are written somewhere but lie outside the
/// cone-of-influence closure of the observable expressions: no value
/// they ever take can reach a guard, synchronization index or clock
/// reset. Feeds the `TA008` lint and the digital engines' variable
/// freezing.
#[must_use]
pub fn dead_variables(net: &Network) -> Vec<VarId> {
    let mut assigns = Vec::new();
    for a in net.automata() {
        for e in &a.edges {
            stmt_assignments(&e.update, &mut assigns);
        }
    }
    let relevant = relevant_vars(observable_vars(net), &assigns);
    let written: BTreeSet<VarId> = assigns.iter().map(|a| a.target).collect();
    written
        .into_iter()
        .filter(|v| !relevant.contains(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkBuilder;
    use crate::StateFormula;
    use tempo_expr::{Expr, Stmt};

    /// L0 --(x ≥ 4, reset x)--> L1 --(x ≤ 2)--> L2, plus a second clock
    /// `y` only compared in L2's invariant.
    fn net() -> (Network, Clock, Clock) {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let y = b.clock("y");
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        let l2 = a.location_with_invariant("L2", vec![ClockAtom::le(y, 9)]);
        a.edge(l0, l1)
            .guard_clock(ClockAtom::ge(x, 4))
            .reset(x, 0)
            .done();
        a.edge(l1, l2).guard_clock(ClockAtom::le(x, 2)).done();
        a.done();
        (b.build(), x, y)
    }

    #[test]
    fn per_location_bounds_split_polarity_and_stop_at_resets() {
        let (net, x, y) = net();
        let lu = NetworkLu::analyze(&net, &[]);
        let mut lo = Vec::new();
        let mut up = Vec::new();
        // In L0 only the lower guard x ≥ 4 is observable: the upper
        // bound 2 sits behind the reset.
        lu.state_bounds(&[LocationId(0)], &mut lo, &mut up);
        assert_eq!(lo[x.index()], 4);
        assert_eq!(up[x.index()], NO_BOUND);
        // y's only observation is L2's invariant, visible from L0 along
        // reset-free edges.
        assert_eq!(up[y.index()], 9);
        // In L2 nothing about x remains observable.
        lu.state_bounds(&[LocationId(2)], &mut lo, &mut up);
        assert_eq!(lo[x.index()], NO_BOUND);
        assert_eq!(up[x.index()], NO_BOUND);
        assert!(lu.tightened(&net.max_constants()) > 0);
    }

    #[test]
    fn protected_atoms_are_observable_everywhere() {
        let (net, x, _) = net();
        let goal = StateFormula::clock(ClockAtom::ge(x, 7));
        let lu = NetworkLu::analyze(&net, &goal.clock_atoms());
        let mut lo = Vec::new();
        let mut up = Vec::new();
        lu.state_bounds(&[LocationId(2)], &mut lo, &mut up);
        assert_eq!(lo[x.index()], 7);
        assert_eq!(up[x.index()], 7);
    }

    #[test]
    fn dead_variables_are_write_only_outside_the_cone() {
        let mut b = NetworkBuilder::new();
        let obs = b.decls_mut().int("obs", 0, 9);
        let ghost = b.decls_mut().int("ghost", 0, 100);
        let mut a = b.automaton("A");
        let l0 = a.location("L0");
        let l1 = a.location("L1");
        // `obs` guards an edge; `ghost` is only ever written.
        a.edge(l0, l1)
            .guard_data(Expr::var(obs).lt(Expr::konst(5)))
            .update(Stmt::assign(ghost, Expr::var(obs) + Expr::konst(1)))
            .done();
        a.done();
        let net = b.build();
        assert_eq!(dead_variables(&net), vec![ghost]);
        assert!(observable_vars(&net).contains(&obs));
    }
}
