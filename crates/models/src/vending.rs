//! Specifications and (mutated) implementations for the model-based
//! testing experiments (Bozga et al., DATE 2012, §V).
//!
//! The untimed models are a drinks dispenser in the style of the
//! ioco-literature examples; the timed model is a request/response
//! controller with a deadline, matching UPPAAL-TRON's target domain
//! ("embedded software commonly found in various controllers").

use tempo_ioco::{Label, Lts, TimedIut};
use tempo_ta::{ClockAtom, Network, NetworkBuilder};

/// The drinks-dispenser specification: `coin?` then `coffee!`; a second
/// coin buys a `tea!` upgrade path.
#[must_use]
pub fn dispenser_spec() -> Lts {
    let mut l = Lts::new();
    let idle = l.state("idle");
    let paid = l.state("paid");
    let double = l.state("double");
    l.transition(idle, Label::input("coin"), paid);
    l.transition(paid, Label::input("coin"), double);
    l.transition(paid, Label::output("coffee"), idle);
    l.transition(double, Label::output("tea"), idle);
    l
}

/// A conforming, input-enabled implementation of the dispenser.
#[must_use]
pub fn dispenser_good() -> Lts {
    let mut l = Lts::new();
    let idle = l.state("idle");
    let paid = l.state("paid");
    let double = l.state("double");
    l.transition(idle, Label::input("coin"), paid);
    l.transition(paid, Label::input("coin"), double);
    l.transition(double, Label::input("coin"), double); // swallow extras
    l.transition(paid, Label::output("coffee"), idle);
    l.transition(double, Label::output("tea"), idle);
    l
}

/// Mutant 1: produces `tea` already after one coin (an *output* fault).
#[must_use]
pub fn dispenser_mutant_output() -> Lts {
    let mut l = dispenser_good();
    let paid = tempo_ioco::LtsStateId(1);
    let idle = tempo_ioco::LtsStateId(0);
    l.transition(paid, Label::output("tea"), idle);
    l
}

/// Mutant 2: may swallow the coin and stay silent (a *quiescence*
/// fault).
#[must_use]
pub fn dispenser_mutant_silent() -> Lts {
    let mut l = Lts::new();
    let idle = l.state("idle");
    let paid = l.state("paid");
    let double = l.state("double");
    let dead = l.state("dead");
    l.transition(idle, Label::input("coin"), paid);
    l.transition(idle, Label::input("coin"), dead);
    l.transition(dead, Label::input("coin"), dead);
    l.transition(paid, Label::input("coin"), double);
    l.transition(double, Label::input("coin"), double);
    l.transition(paid, Label::output("coffee"), idle);
    l.transition(double, Label::output("tea"), idle);
    l
}

/// Mutant 3: refunds the coin with an undeclared output.
#[must_use]
pub fn dispenser_mutant_refund() -> Lts {
    let mut l = dispenser_good();
    let paid = tempo_ioco::LtsStateId(1);
    let idle = tempo_ioco::LtsStateId(0);
    l.transition(paid, Label::output("refund"), idle);
    l
}

/// The timed specification for rtioco testing: after `req`, the
/// controller must answer `resp` within `deadline` time units; the
/// environment model sends at most one outstanding request.
#[must_use]
pub fn controller_spec(deadline: i64) -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let req = b.channel("req");
    let resp = b.channel("resp");
    let mut env = b.automaton("Env");
    let e0 = env.location("E0");
    let e1 = env.location("E1");
    env.edge(e0, e1).send(req).done();
    env.edge(e1, e0).recv(resp).done();
    env.done();
    let mut sysm = b.automaton("Controller");
    let idle = sysm.location("Idle");
    let busy = sysm.location_with_invariant("Busy", vec![ClockAtom::le(x, deadline)]);
    sysm.edge(idle, busy).recv(req).reset(x, 0).done();
    sysm.edge(busy, idle).send(resp).done();
    sysm.done();
    b.build()
}

/// A timed IUT that answers `req` after a fixed `delay` — conforming to
/// [`controller_spec`] iff `delay <= deadline`.
#[derive(Debug)]
pub struct FixedDelayController {
    delay: i64,
    pending: Option<i64>,
}

impl FixedDelayController {
    /// Creates the controller implementation.
    #[must_use]
    pub fn new(delay: i64) -> Self {
        FixedDelayController {
            delay,
            pending: None,
        }
    }
}

impl TimedIut for FixedDelayController {
    fn reset(&mut self) {
        self.pending = None;
    }

    fn input(&mut self, action: &str) -> Vec<String> {
        if action == "req" && self.pending.is_none() {
            if self.delay == 0 {
                return vec!["resp".to_owned()];
            }
            self.pending = Some(self.delay);
        }
        Vec::new()
    }

    fn tick(&mut self) -> Vec<String> {
        match &mut self.pending {
            Some(d) => {
                *d -= 1;
                if *d <= 0 {
                    self.pending = None;
                    vec!["resp".to_owned()]
                } else {
                    Vec::new()
                }
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ioco::{check_ioco, TestGenerator, TimedTester};

    #[test]
    fn good_dispenser_conforms() {
        assert!(check_ioco(&dispenser_good(), &dispenser_spec()).is_ok());
    }

    #[test]
    fn all_mutants_violate_ioco() {
        let spec = dispenser_spec();
        assert!(check_ioco(&dispenser_mutant_output(), &spec).is_err());
        assert!(check_ioco(&dispenser_mutant_silent(), &spec).is_err());
        assert!(check_ioco(&dispenser_mutant_refund(), &spec).is_err());
    }

    #[test]
    fn campaign_catches_mutants() {
        let spec = dispenser_spec();
        for (name, mutant) in [
            ("output", dispenser_mutant_output()),
            ("silent", dispenser_mutant_silent()),
            ("refund", dispenser_mutant_refund()),
        ] {
            let mut gen = TestGenerator::new(&spec, 17);
            let mut iut = tempo_ioco::LtsIut::new(mutant, 23);
            let (failures, _) = gen.campaign(&mut iut, 200, 25);
            assert!(failures > 0, "mutant {name} evaded 200 tests");
        }
    }

    #[test]
    fn timed_controller_conformance() {
        let spec = controller_spec(3);
        let mut tester = TimedTester::new(&spec, &["req"], &["resp"], 5);
        let (failures, _) = tester.campaign(&mut FixedDelayController::new(2), 20, 30);
        assert_eq!(failures, 0, "2 <= 3 conforms");
        let (failures, _) = tester.campaign(&mut FixedDelayController::new(5), 20, 30);
        assert!(failures > 0, "5 > 3 must be caught");
    }
}
