//! The paper's train-gate example (Bozga et al., DATE 2012, §II.A,
//! Figs. 1–4): `n` trains approach a one-track bridge; a controller with
//! a FIFO queue stops and restarts them.
//!
//! Three variants are provided:
//!
//! * [`train_gate`] — the verification model of Fig. 1, including the
//!   C-like queue code of Fig. 1(c);
//! * [`train_gate_game`] — the timed game of Figs. 2–3: the environment
//!   decides arrivals and crossing times (dashed edges), the controller
//!   decides when to stop/restart trains via the unconstrained automaton;
//! * [`TrainGate::rates`] — the stochastic rates of §II.A(c) (rate
//!   `1 + id` for train `id`), for the Fig. 4 CDF experiment.

use tempo_expr::{Expr, Stmt};
use tempo_smc::RatePolicy;
use tempo_ta::{
    AutomatonId, ChannelKind, ClockAtom, LocationId, Network, NetworkBuilder, StateFormula,
};

/// Handles to the train-gate model's pieces.
#[derive(Debug)]
pub struct TrainGate {
    /// The network (trains + controller).
    pub net: Network,
    /// The train automata, indexed by train id.
    pub trains: Vec<AutomatonId>,
    /// The controller automaton.
    pub controller: AutomatonId,
    /// Location ids shared by all trains:
    /// `[Safe, Appr, Stop, Start, Cross]`.
    pub train_locs: TrainLocs,
}

/// The five locations of a train (Fig. 1(a)).
#[derive(Debug, Clone, Copy)]
pub struct TrainLocs {
    /// Not yet approaching.
    pub safe: LocationId,
    /// Approaching the bridge (invariant `x ≤ 20`).
    pub appr: LocationId,
    /// Stopped by the controller.
    pub stop: LocationId,
    /// Restarting (invariant `x ≤ 15`).
    pub start: LocationId,
    /// On the bridge (invariant `x ≤ 5`).
    pub cross: LocationId,
}

/// Builds the Fig. 1 train-gate model for `n` trains.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn train_gate(n: usize) -> TrainGate {
    assert!(n > 0, "at least one train");
    let mut b = NetworkBuilder::new();
    let n_i64 = n as i64;

    // Channels: one slot per train id (UPPAAL channel arrays).
    let appr_ch = b.channel_array("appr", n, ChannelKind::Binary, false);
    let go_ch = b.channel_array("go", n, ChannelKind::Binary, false);
    let stop_ch = b.channel_array("stop", n, ChannelKind::Binary, false);
    let leave_ch = b.channel_array("leave", n, ChannelKind::Binary, false);

    // Fig. 1(c): id_t list[N+1]; int[0,N] len;  (plus a loop counter for
    // the dequeue shift).
    let list = b.decls_mut().array("list", n + 1, 0, n_i64 - 1);
    let len = b.decls_mut().int("len", 0, n_i64);
    let idx = b.decls_mut().int("i", 0, n_i64);
    // `list` holds train *identities*: declaring that lets the symmetry
    // reduction permute queue contents along with the trains.
    b.mark_id_var(list);

    // Trains (Fig. 1(a)).
    let mut trains = Vec::new();
    let mut train_locs = None;
    for id in 0..n {
        let x = b.clock(&format!("x{id}"));
        let mut t = b.automaton(&format!("Train{id}"));
        let safe = t.location("Safe");
        let appr = t.location_with_invariant("Appr", vec![ClockAtom::le(x, 20)]);
        let stop = t.location("Stop");
        let start = t.location_with_invariant("Start", vec![ClockAtom::le(x, 15)]);
        let cross = t.location_with_invariant("Cross", vec![ClockAtom::le(x, 5)]);
        t.set_initial(safe);
        let id_e = id as i64;
        t.edge(safe, appr)
            .send_indexed(appr_ch, Expr::konst(id_e))
            .reset(x, 0)
            .done();
        t.edge(appr, cross)
            .guard_clock(ClockAtom::ge(x, 10))
            .reset(x, 0)
            .done();
        t.edge(appr, stop)
            .guard_clock(ClockAtom::le(x, 10))
            .recv_indexed(stop_ch, Expr::konst(id_e))
            .reset(x, 0)
            .done();
        t.edge(stop, start)
            .recv_indexed(go_ch, Expr::konst(id_e))
            .reset(x, 0)
            .done();
        t.edge(start, cross)
            .guard_clock(ClockAtom::ge(x, 7))
            .reset(x, 0)
            .done();
        t.edge(cross, safe)
            .guard_clock(ClockAtom::ge(x, 3))
            .send_indexed(leave_ch, Expr::konst(id_e))
            .done();
        trains.push(t.done());
        train_locs = Some(TrainLocs {
            safe,
            appr,
            stop,
            start,
            cross,
        });
    }

    // Fig. 1(c): the queue functions.
    let enqueue_sel = Stmt::seq(vec![
        Stmt::assign_index(list, Expr::var(len), Expr::select(0)),
        Stmt::assign(len, Expr::var(len) + Expr::konst(1)),
    ]);
    let front = Expr::index(list, Expr::konst(0));
    let tail = Expr::index(list, Expr::var(len) - Expr::konst(1));
    let dequeue = Stmt::seq(vec![
        Stmt::assign(idx, Expr::konst(0)),
        Stmt::assign(len, Expr::var(len) - Expr::konst(1)),
        Stmt::while_loop(
            Expr::var(idx).lt(Expr::var(len)),
            Stmt::seq(vec![
                Stmt::assign_index(
                    list,
                    Expr::var(idx),
                    Expr::index(list, Expr::var(idx) + Expr::konst(1)),
                ),
                Stmt::assign(idx, Expr::var(idx) + Expr::konst(1)),
            ]),
        ),
        Stmt::assign_index(list, Expr::var(idx), Expr::konst(0)),
    ]);

    // Controller (Fig. 1(b)).
    let mut c = b.automaton("Gate");
    let free = c.location("Free");
    let occ = c.location("Occ");
    let stopping = c.committed_location("Stopping");
    c.set_initial(free);
    // Free --(len == 0) appr[e]? / enqueue(e)--> Occ (the `len == 0`
    // guard of Fig. 1(b): with stopped trains waiting, the controller
    // restarts the front train before accepting new arrivals).
    c.edge(free, occ)
        .select(0, n_i64 - 1)
        .guard_data(Expr::var(len).eq(Expr::konst(0)))
        .recv_indexed(appr_ch, Expr::select(0))
        .update(enqueue_sel.clone())
        .done();
    // Free --len > 0 / go[front()]!--> Occ
    c.edge(free, occ)
        .guard_data(Expr::var(len).gt(Expr::konst(0)))
        .send_indexed(go_ch, front.clone())
        .done();
    // Occ --appr[e]? / enqueue(e)--> (committed) --stop[tail()]!--> Occ
    c.edge(occ, stopping)
        .select(0, n_i64 - 1)
        .recv_indexed(appr_ch, Expr::select(0))
        .update(enqueue_sel)
        .done();
    c.edge(stopping, occ).send_indexed(stop_ch, tail).done();
    // Occ --leave[e]? (e == front()) / dequeue()--> Free
    c.edge(occ, free)
        .select(0, n_i64 - 1)
        .guard_data(Expr::select(0).eq(front))
        .recv_indexed(leave_ch, Expr::select(0))
        .update(dequeue)
        .done();
    let controller = c.done();

    TrainGate {
        net: b.build(),
        trains,
        controller,
        train_locs: train_locs.expect("n > 0"),
    }
}

impl TrainGate {
    /// The paper's safety property: at most one train on the bridge
    /// (`A[] forall i forall j: Cross_i ∧ Cross_j ⇒ i == j`).
    #[must_use]
    pub fn safety(&self) -> StateFormula {
        let mut pair_violations = Vec::new();
        for (i, &ti) in self.trains.iter().enumerate() {
            for &tj in self.trains.iter().skip(i + 1) {
                pair_violations.push(StateFormula::and(vec![
                    StateFormula::at(ti, self.train_locs.cross),
                    StateFormula::at(tj, self.train_locs.cross),
                ]));
            }
        }
        StateFormula::not(StateFormula::or(pair_violations))
    }

    /// `Train(id).Appr` — the premise of the liveness query.
    #[must_use]
    pub fn appr(&self, id: usize) -> StateFormula {
        StateFormula::at(self.trains[id], self.train_locs.appr)
    }

    /// `Train(id).Cross` — the goal of the liveness and SMC queries.
    #[must_use]
    pub fn cross(&self, id: usize) -> StateFormula {
        StateFormula::at(self.trains[id], self.train_locs.cross)
    }

    /// The stochastic rates of §II.A(c): exponential rate `1 + id` for
    /// train `id` (in `Safe`, the only invariant-free train location).
    #[must_use]
    pub fn rates(&self) -> RatePolicy {
        let mut rates = RatePolicy::new();
        for (id, &t) in self.trains.iter().enumerate() {
            rates.set(t, self.train_locs.safe, 1.0 + id as f64);
        }
        rates
    }
}

/// Handles to the timed-game variant (Figs. 2–3).
#[derive(Debug)]
pub struct TrainGateGame {
    /// The game network: trains with uncontrollable arrivals/crossings +
    /// the unconstrained controller of Fig. 3.
    pub net: Network,
    /// The train automata.
    pub trains: Vec<AutomatonId>,
    /// Train location ids `[Safe, Appr, Stop, Start, Cross]`.
    pub train_locs: TrainLocs,
}

/// Builds the Figs. 2–3 timed game for `n` trains: the environment
/// (dashed/uncontrollable) decides when trains arrive, cross and leave;
/// the controller decides when to `stop` and `go` trains through the
/// unconstrained automaton of Fig. 3.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn train_gate_game(n: usize) -> TrainGateGame {
    assert!(n > 0, "at least one train");
    let mut b = NetworkBuilder::new();
    let n_i64 = n as i64;
    let appr_ch = b.channel_array("appr", n, ChannelKind::Binary, false);
    let go_ch = b.channel_array("go", n, ChannelKind::Binary, false);
    let stop_ch = b.channel_array("stop", n, ChannelKind::Binary, false);
    let leave_ch = b.channel_array("leave", n, ChannelKind::Binary, false);

    let mut trains = Vec::new();
    let mut train_locs = None;
    for id in 0..n {
        let x = b.clock(&format!("x{id}"));
        let mut t = b.automaton(&format!("Train{id}"));
        let safe = t.location("Safe");
        // Fig. 2 uses a wider Appr bound (x <= 30) than Fig. 1.
        let appr = t.location_with_invariant("Appr", vec![ClockAtom::le(x, 30)]);
        let stop = t.location("Stop");
        let start = t.location_with_invariant("Start", vec![ClockAtom::le(x, 15)]);
        let cross = t.location_with_invariant("Cross", vec![ClockAtom::le(x, 5)]);
        t.set_initial(safe);
        let id_e = id as i64;
        // Environment decides arrivals (dashed in Fig. 2).
        t.edge(safe, appr)
            .send_indexed(appr_ch, Expr::konst(id_e))
            .reset(x, 0)
            .uncontrollable()
            .done();
        // Environment decides when the train enters the bridge.
        t.edge(appr, cross)
            .guard_clock(ClockAtom::ge(x, 10))
            .reset(x, 0)
            .uncontrollable()
            .done();
        // Controllable via the controller's stop!/go! (the train's
        // receiving edges stay controllable so the sync is controllable).
        t.edge(appr, stop)
            .guard_clock(ClockAtom::le(x, 10))
            .recv_indexed(stop_ch, Expr::konst(id_e))
            .reset(x, 0)
            .done();
        t.edge(stop, start)
            .recv_indexed(go_ch, Expr::konst(id_e))
            .reset(x, 0)
            .done();
        t.edge(start, cross)
            .guard_clock(ClockAtom::ge(x, 7))
            .reset(x, 0)
            .uncontrollable()
            .done();
        t.edge(cross, safe)
            .guard_clock(ClockAtom::ge(x, 3))
            .send_indexed(leave_ch, Expr::konst(id_e))
            .uncontrollable()
            .done();
        trains.push(t.done());
        train_locs = Some(TrainLocs {
            safe,
            appr,
            stop,
            start,
            cross,
        });
    }

    // Fig. 3: the unconstrained controller — one location, it may always
    // listen to appr/leave and emit stop/go.
    let mut c = b.automaton("Controller");
    let hub = c.location("Hub");
    c.edge(hub, hub)
        .select(0, n_i64 - 1)
        .recv_indexed(appr_ch, Expr::select(0))
        .uncontrollable()
        .done();
    c.edge(hub, hub)
        .select(0, n_i64 - 1)
        .recv_indexed(leave_ch, Expr::select(0))
        .uncontrollable()
        .done();
    c.edge(hub, hub)
        .select(0, n_i64 - 1)
        .send_indexed(stop_ch, Expr::select(0))
        .done();
    c.edge(hub, hub)
        .select(0, n_i64 - 1)
        .send_indexed(go_ch, Expr::select(0))
        .done();
    c.done();

    TrainGateGame {
        net: b.build(),
        trains,
        train_locs: train_locs.expect("n > 0"),
    }
}

impl TrainGateGame {
    /// The bad states of the safety game: two distinct trains on the
    /// bridge simultaneously.
    #[must_use]
    pub fn collision(&self) -> StateFormula {
        let mut pairs = Vec::new();
        for (i, &ti) in self.trains.iter().enumerate() {
            for &tj in self.trains.iter().skip(i + 1) {
                pairs.push(StateFormula::and(vec![
                    StateFormula::at(ti, self.train_locs.cross),
                    StateFormula::at(tj, self.train_locs.cross),
                ]));
            }
        }
        StateFormula::or(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_ta::ModelChecker;

    #[test]
    fn model_shape() {
        let tg = train_gate(3);
        assert_eq!(tg.trains.len(), 3);
        assert_eq!(tg.net.automata().len(), 4);
        assert_eq!(tg.net.dim(), 4); // 3 train clocks + reference
        let gate = tg.net.automaton(tg.controller);
        assert_eq!(gate.locations.len(), 3);
    }

    #[test]
    fn two_trains_safety_holds() {
        let tg = train_gate(2);
        let mut mc = ModelChecker::new(&tg.net);
        let (verdict, stats) = mc.always(&tg.safety());
        assert!(verdict.holds(), "at most one train crosses");
        assert!(stats.explored > 0);
    }

    #[test]
    fn a_train_can_cross() {
        let tg = train_gate(2);
        let mut mc = ModelChecker::new(&tg.net);
        assert!(mc.reachable(&tg.cross(0)).reachable);
        assert!(mc.reachable(&tg.cross(1)).reachable);
    }

    #[test]
    fn both_trains_can_be_queued() {
        let tg = train_gate(2);
        let mut mc = ModelChecker::new(&tg.net);
        let both_waiting = StateFormula::and(vec![
            StateFormula::at(tg.trains[0], tg.train_locs.stop),
            StateFormula::at(tg.trains[1], tg.train_locs.appr),
        ]);
        assert!(mc.reachable(&both_waiting).reachable);
    }

    #[test]
    fn symmetry_reduces_three_train_safety() {
        use tempo_ta::ExploreConfig;
        let tg = train_gate(3);
        let safety = tg.safety();
        let mut full = ModelChecker::new(&tg.net).with_config(ExploreConfig::unreduced());
        let (v_full, s_full) = full.always(&safety);
        let mut red = ModelChecker::new(&tg.net);
        let (v_red, s_red) = red.always(&safety);
        assert_eq!(v_full.holds(), v_red.holds());
        assert!(v_red.holds());
        assert!(s_red.sym_orbits > 0, "train orbit detected");
        assert!(
            s_red.explored < s_full.explored,
            "symmetry must shrink the exploration: {} vs {}",
            s_red.explored,
            s_full.explored
        );
    }

    #[test]
    fn game_model_shape() {
        let g = train_gate_game(2);
        assert_eq!(g.net.automata().len(), 3);
        // Environment edges are uncontrollable.
        let t0 = &g.net.automata()[0];
        let unctrl = t0.edges.iter().filter(|e| !e.controllable).count();
        assert_eq!(unctrl, 4);
    }
}
