//! The Bounded Retransmission Protocol (BRP) in MODEST
//! (Bozga et al., DATE 2012, §III.A and Table I).
//!
//! An alternating-bit-based protocol with an upper bound `MAX` on
//! retransmissions: the sender transfers `N` chunks over a lossy data
//! channel (2% loss, transmission delay up to `TD` — exactly the Fig. 5
//! channel process); the receiver acknowledges over an equally lossy
//! channel; timeouts trigger retransmissions.
//!
//! The properties of Table I:
//!
//! | name | meaning |
//! |------|---------|
//! | TA1  | no premature timeouts (the timer never expires while a message is in transit) |
//! | TA2  | correct handling of failures (`NOK` only before the last chunk, `DK` only on it) |
//! | PA   | probability that success is reported before the file is transferred (= 0) |
//! | PB   | probability that `NOK` is reported on the last chunk (= 0) |
//! | P1   | probability that the sender eventually reports *no* success |
//! | P2   | probability that the sender reports "uncertainty" (`DK`) |
//! | Dmax | probability of success within 64 time units |
//! | Emax | maximum expected time until the sender reports |

use tempo_dbm::Clock;
use tempo_expr::{Expr, VarId};
use tempo_modest::{
    compile, Assignment, Mcpta, McptaConfig, ModestModel, PaltBranch, Process, Pta,
};
use tempo_ta::{ClockAtom, StateFormula};

/// Sender report values.
pub mod report {
    /// No report yet.
    pub const NONE: i64 = 0;
    /// Successful transfer (`I_OK`).
    pub const OK: i64 = 1;
    /// Failure before the last chunk (`I_NOK`).
    pub const NOK: i64 = 2;
    /// Uncertainty: failure on the last chunk (`I_DK`).
    pub const DK: i64 = 3;
}

/// The BRP model with its parameters and property handles.
#[derive(Debug)]
pub struct Brp {
    /// Number of chunks `N`.
    pub n: i64,
    /// Maximum number of retransmissions `MAX`.
    pub max_retries: i64,
    /// Maximum channel transmission delay `TD`.
    pub td: i64,
    /// The compiled PTA network (Sender ∥ Receiver ∥ ChannelK ∥ ChannelL).
    pub pta: Pta,
    /// The MODEST source model the PTA was compiled from (for linting
    /// and inspection).
    pub model: ModestModel,
    /// Sender report variable (`report::*`).
    pub srep: VarId,
    /// Chunks successfully acknowledged so far.
    pub i: VarId,
    /// Flag raised if a timeout ever fires while a message is in transit.
    pub premature: VarId,
    /// The global clock (never reset), for time-bounded properties.
    pub gt: Clock,
}

/// Builds the BRP with parameters `(N, MAX, TD)`; the paper's Table I
/// uses `(16, 2, 1)`.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
#[must_use]
pub fn brp(n: i64, max_retries: i64, td: i64) -> Brp {
    assert!(
        n > 0 && max_retries > 0 && td > 0,
        "parameters must be positive"
    );
    let mut m = ModestModel::new();
    // Timeout: strictly above the worst-case round trip
    // (data ≤ TD, receiver ack ≤ 1, ack ≤ TD).
    let to = 2 * td + 2;

    // Clocks.
    let sc = m.clock("sc"); // sender timer
    let kc = m.clock("kc"); // data-channel transit
    let lc = m.clock("lc"); // ack-channel transit
    let rv = m.clock("rv"); // receiver ack window
    let gt = m.clock("gt"); // global time (never reset)

    // Variables.
    let i = m.decls_mut().int("i", 0, n);
    let rc = m.decls_mut().int("rc", 0, max_retries);
    let srep = m.decls_mut().int("srep", 0, 3);
    let kfull = m.decls_mut().int("kfull", 0, 1);
    let lfull = m.decls_mut().int("lfull", 0, 1);
    let premature = m.decls_mut().int("premature", 0, 1);

    // Actions.
    let put = m.action("put");
    let get = m.action("get");
    let putack = m.action("putack");
    let getack = m.action("getack");
    let report_ok = m.action("report_ok");
    let timeout = m.action("timeout");
    let retry = m.action("retry");
    let report_nok = m.action("report_nok");
    let report_dk = m.action("report_dk");

    // Sender: send the next chunk or report success; urgency via the
    // `sc <= 0` entry invariant (sc is reset by every path into Sender).
    m.define(
        "Sender",
        Process::invariant(
            vec![ClockAtom::le(sc, 0)],
            Process::alt(vec![
                Process::when(
                    Expr::var(i).lt(Expr::konst(n)),
                    Process::act_with(put, vec![Assignment::Clock(sc, 0)], Process::call("Wait")),
                ),
                Process::when(
                    Expr::var(i).ge(Expr::konst(n)),
                    Process::act_with(
                        report_ok,
                        vec![Assignment::Var(srep, Expr::konst(report::OK))],
                        Process::stop(),
                    ),
                ),
            ]),
        ),
    );

    // Wait for the acknowledgement or time out.
    let after_timeout = Process::invariant(
        vec![ClockAtom::le(sc, to)],
        Process::alt(vec![
            Process::when(
                Expr::var(rc).lt(Expr::konst(max_retries)),
                Process::act_with(
                    retry,
                    vec![
                        Assignment::Var(rc, Expr::var(rc) + Expr::konst(1)),
                        Assignment::Clock(sc, 0),
                    ],
                    Process::call("Sender"),
                ),
            ),
            Process::when(
                Expr::var(rc).ge(Expr::konst(max_retries)) & Expr::var(i).lt(Expr::konst(n - 1)),
                Process::act_with(
                    report_nok,
                    vec![Assignment::Var(srep, Expr::konst(report::NOK))],
                    Process::stop(),
                ),
            ),
            Process::when(
                Expr::var(rc).ge(Expr::konst(max_retries)) & Expr::var(i).ge(Expr::konst(n - 1)),
                Process::act_with(
                    report_dk,
                    vec![Assignment::Var(srep, Expr::konst(report::DK))],
                    Process::stop(),
                ),
            ),
        ]),
    );
    m.define(
        "Wait",
        Process::invariant(
            vec![ClockAtom::le(sc, to)],
            Process::alt(vec![
                Process::act_with(
                    getack,
                    vec![
                        Assignment::Var(i, Expr::var(i) + Expr::konst(1)),
                        Assignment::Var(rc, Expr::konst(0)),
                        Assignment::Clock(sc, 0),
                    ],
                    Process::call("Sender"),
                ),
                Process::when_clock(
                    ClockAtom::ge(sc, to),
                    Process::act_with(
                        timeout,
                        vec![Assignment::Var(
                            premature,
                            Expr::var(premature) | Expr::var(kfull) | Expr::var(lfull),
                        )],
                        after_timeout,
                    ),
                ),
            ]),
        ),
    );

    // Receiver: acknowledge each chunk within one time unit.
    m.define(
        "Receiver",
        Process::act_with(
            get,
            vec![Assignment::Clock(rv, 0)],
            Process::invariant(
                vec![ClockAtom::le(rv, 1)],
                Process::act(putack, Process::call("Receiver")),
            ),
        ),
    );

    // The Fig. 5 channel with 2% message loss, for data and for acks.
    let channel = |action_in, action_out, clock, flag: VarId| {
        Process::palt(
            action_in,
            vec![
                PaltBranch {
                    weight: 98,
                    assignments: vec![
                        Assignment::Clock(clock, 0),
                        Assignment::Var(flag, Expr::konst(1)),
                    ],
                    then: Process::invariant(
                        vec![ClockAtom::le(clock, td)],
                        Process::act_with(
                            action_out,
                            vec![Assignment::Var(flag, Expr::konst(0))],
                            Process::skip(),
                        ),
                    ),
                },
                PaltBranch {
                    weight: 2,
                    assignments: vec![],
                    then: Process::skip(),
                },
            ],
        )
    };
    m.define(
        "ChannelK",
        channel(put, get, kc, kfull).then(Process::call("ChannelK")),
    );
    m.define(
        "ChannelL",
        channel(putack, getack, lc, lfull).then(Process::call("ChannelL")),
    );

    m.system(&["Sender", "Receiver", "ChannelK", "ChannelL"]);
    Brp {
        n,
        max_retries,
        td,
        pta: compile(&m),
        model: m,
        srep,
        i,
        premature,
        gt,
    }
}

impl Brp {
    /// TA1: no premature timeouts.
    #[must_use]
    pub fn ta1(&self) -> StateFormula {
        StateFormula::data(Expr::var(self.premature).eq(Expr::konst(0)))
    }

    /// TA2: failures are reported correctly (`NOK` never on the last
    /// chunk, `DK` only on it).
    #[must_use]
    pub fn ta2(&self) -> StateFormula {
        let nok_wrong = Expr::var(self.srep).eq(Expr::konst(report::NOK))
            & Expr::var(self.i).ge(Expr::konst(self.n - 1));
        let dk_wrong = Expr::var(self.srep).eq(Expr::konst(report::DK))
            & Expr::var(self.i).lt(Expr::konst(self.n - 1));
        StateFormula::data(!(nok_wrong | dk_wrong))
    }

    /// PA: success reported before the transfer completed (impossible).
    #[must_use]
    pub fn pa_goal(&self) -> StateFormula {
        StateFormula::data(
            Expr::var(self.srep).eq(Expr::konst(report::OK))
                & Expr::var(self.i).lt(Expr::konst(self.n)),
        )
    }

    /// PB: `NOK` reported on the last chunk (impossible).
    #[must_use]
    pub fn pb_goal(&self) -> StateFormula {
        StateFormula::data(
            Expr::var(self.srep).eq(Expr::konst(report::NOK))
                & Expr::var(self.i).ge(Expr::konst(self.n - 1)),
        )
    }

    /// P1: the sender eventually reports no success (`NOK` or `DK`).
    #[must_use]
    pub fn p1_goal(&self) -> StateFormula {
        StateFormula::data(
            Expr::var(self.srep).eq(Expr::konst(report::NOK))
                | Expr::var(self.srep).eq(Expr::konst(report::DK)),
        )
    }

    /// P2: the sender reports uncertainty (`DK`).
    #[must_use]
    pub fn p2_goal(&self) -> StateFormula {
        StateFormula::data(Expr::var(self.srep).eq(Expr::konst(report::DK)))
    }

    /// The success state (`srep == OK`).
    #[must_use]
    pub fn success(&self) -> StateFormula {
        StateFormula::data(Expr::var(self.srep).eq(Expr::konst(report::OK)))
    }

    /// Dmax goal: success within `bound` time units.
    #[must_use]
    pub fn dmax_goal(&self, bound: i64) -> StateFormula {
        StateFormula::and(vec![
            self.success(),
            StateFormula::clock(ClockAtom::le(self.gt, bound)),
        ])
    }

    /// Emax goal: the sender has reported (any verdict).
    #[must_use]
    pub fn done(&self) -> StateFormula {
        StateFormula::data(Expr::var(self.srep).ne(Expr::konst(report::NONE)))
    }

    /// Builds the `mcpta` analyzer for this model; `time_bound` widens
    /// the clock clamp for [`Brp::dmax_goal`] queries (use `0` when no
    /// time-bounded query is needed — the global clock then clamps at the
    /// model constants and the state space stays small).
    #[must_use]
    pub fn mcpta(&self, time_bound: i64, max_states: usize) -> Mcpta {
        self.mcpta_with(time_bound, McptaConfig::default(), max_states)
    }

    /// [`Brp::mcpta`] with explicit build options — BRP is mostly
    /// waiting (timeout countdowns, channel transit), so Dirac tick-chain
    /// compression ([`McptaConfig::compress_ticks`]) removes a large
    /// share of its digital states without changing any Table I value.
    ///
    /// # Panics
    ///
    /// Panics if the state space exceeds `max_states`.
    #[must_use]
    pub fn mcpta_with(&self, time_bound: i64, config: McptaConfig, max_states: usize) -> Mcpta {
        let extra = if time_bound > 0 {
            vec![ClockAtom::le(self.gt, time_bound)]
        } else {
            Vec::new()
        };
        Mcpta::try_build_with(
            &self.pta,
            &extra,
            config,
            &tempo_obs::Budget::unlimited().with_max_states(max_states as u64),
        )
        .into_value()
        .unwrap_or_else(|| panic!("digital-clocks MDP exceeds {max_states} states"))
    }
}

/// BRP as a plain network of timed automata, with the channel loss
/// probability encoded structurally for the uniform-choice stochastic
/// semantics of `tempo-smc`: at each channel's committed `Choice`
/// location, 49 duplicate "deliver" edges race against 1 "lose" edge,
/// so a message is lost with probability exactly `1/50 = 0.02` — the
/// same per-message loss as the MODEST model of [`brp`]. Loss is
/// signalled to the sender over a `lost` channel (the standard
/// premium-channel shortcut), so no probability mass hides in timing.
///
/// P1 is therefore analytically identical to the MODEST model's:
/// with per-try failure `q = 1 − 0.98²` a chunk aborts with
/// probability `q^(MAX+1)`, and
/// `P1 = 1 − (1 − q^(MAX+1))^N`. That makes this network the SMC side
/// of the engine-vs-engine differential against `mcpta`'s exact Pmax
/// on the compiled MODEST BRP.
#[derive(Debug)]
pub struct BrpNetwork {
    /// Number of chunks `N`.
    pub n: i64,
    /// Maximum number of retransmissions `MAX`.
    pub max_retries: i64,
    /// The network (Sender ∥ ChannelK ∥ Receiver ∥ ChannelL).
    pub net: tempo_ta::Network,
    /// The sender automaton.
    pub sender: tempo_ta::AutomatonId,
    /// The sender's absorbing failure location (report `NOK` or `DK`).
    pub failed: tempo_ta::LocationId,
    /// The sender's absorbing success location (report `OK`).
    pub done: tempo_ta::LocationId,
    /// Sender report variable (`report::*`).
    pub srep: VarId,
    /// Chunks successfully acknowledged so far.
    pub i: VarId,
    /// Retransmissions of the current chunk.
    pub rc: VarId,
}

impl BrpNetwork {
    /// P1: the sender eventually reports no success (`NOK` or `DK`).
    #[must_use]
    pub fn p1_goal(&self) -> StateFormula {
        StateFormula::at(self.sender, self.failed)
    }

    /// The success state (`srep == OK`).
    #[must_use]
    pub fn success(&self) -> StateFormula {
        StateFormula::at(self.sender, self.done)
    }

    /// The analytic P1 value (identical to the MODEST model's).
    #[must_use]
    pub fn exact_p1(&self) -> f64 {
        let q: f64 = 1.0 - 0.98 * 0.98;
        let per_chunk = q.powi(self.max_retries as i32 + 1);
        1.0 - (1.0 - per_chunk).powi(self.n as i32)
    }

    /// A time horizon by which every run has reported: each try takes
    /// at most `2·TD + 2` time units and there are at most
    /// `N·(MAX+1)` tries, plus slack for the committed cascades.
    #[must_use]
    pub fn time_bound(&self, td: i64) -> f64 {
        (self.n * (self.max_retries + 1) * (2 * td + 2) + 4) as f64
    }
}

/// Builds the TA-network BRP with parameters `(N, MAX, TD)`; see
/// [`BrpNetwork`] for the loss encoding.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
#[must_use]
pub fn brp_network(n: i64, max_retries: i64, td: i64) -> BrpNetwork {
    assert!(
        n > 0 && max_retries > 0 && td > 0,
        "parameters must be positive"
    );
    let mut b = tempo_ta::NetworkBuilder::new();
    let to = 2 * td + 2;

    let sc = b.clock("sc"); // sender timer
    let kc = b.clock("kc"); // data-channel transit
    let lc = b.clock("lc"); // ack-channel transit

    let i = b.decls_mut().int("i", 0, n);
    let rc = b.decls_mut().int("rc", 0, max_retries);
    let srep = b.decls_mut().int("srep", 0, 3);

    let put = b.channel("put");
    let get = b.channel("get");
    let putack = b.channel("putack");
    let ack = b.channel("ack");
    let lost = b.channel("lost");

    // Sender: committed dispatch (send next chunk or report), a timed
    // wait bounded by the timeout, and a committed timeout handler.
    let mut s = b.automaton("Sender");
    let next = s.committed_location("Next");
    let wait = s.location_with_invariant("Wait", vec![ClockAtom::le(sc, to)]);
    let timeout = s.committed_location("Timeout");
    let done = s.location("Done");
    let failed = s.location("Failed");
    s.edge(next, wait)
        .guard_data(Expr::var(i).lt(Expr::konst(n)))
        .send(put)
        .reset(sc, 0)
        .update(tempo_expr::Stmt::assign(rc, Expr::konst(0)))
        .done();
    s.edge(next, done)
        .guard_data(Expr::var(i).ge(Expr::konst(n)))
        .update(tempo_expr::Stmt::assign(srep, Expr::konst(report::OK)))
        .done();
    s.edge(wait, next)
        .recv(ack)
        .update(tempo_expr::Stmt::assign(i, Expr::var(i) + Expr::konst(1)))
        .done();
    s.edge(wait, timeout).recv(lost).done();
    s.edge(timeout, wait)
        .guard_data(Expr::var(rc).lt(Expr::konst(max_retries)))
        .send(put)
        .reset(sc, 0)
        .update(tempo_expr::Stmt::assign(rc, Expr::var(rc) + Expr::konst(1)))
        .done();
    s.edge(timeout, failed)
        .guard_data(
            Expr::var(rc).ge(Expr::konst(max_retries)) & Expr::var(i).lt(Expr::konst(n - 1)),
        )
        .update(tempo_expr::Stmt::assign(srep, Expr::konst(report::NOK)))
        .done();
    s.edge(timeout, failed)
        .guard_data(
            Expr::var(rc).ge(Expr::konst(max_retries)) & Expr::var(i).ge(Expr::konst(n - 1)),
        )
        .update(tempo_expr::Stmt::assign(srep, Expr::konst(report::DK)))
        .done();
    let sender = s.done();

    // Data channel K: 49 deliver edges vs 1 lose edge at the committed
    // choice — per-message loss 0.02 under uniform move choice.
    let mut k = b.automaton("ChannelK");
    let kidle = k.location("KIdle");
    let kchoice = k.committed_location("KChoice");
    let ktransit = k.location_with_invariant("KTransit", vec![ClockAtom::le(kc, td)]);
    k.edge(kidle, kchoice).recv(put).reset(kc, 0).done();
    for _ in 0..49 {
        k.edge(kchoice, ktransit).done();
    }
    k.edge(kchoice, kidle).send(lost).done();
    k.edge(ktransit, kidle).send(get).done();
    k.done();

    // Receiver: ack every frame immediately (duplicates included).
    let mut r = b.automaton("Receiver");
    let ridle = r.location("RIdle");
    let rack = r.committed_location("RAck");
    r.edge(ridle, rack).recv(get).done();
    r.edge(rack, ridle).send(putack).done();
    r.done();

    // Ack channel L: same 49-vs-1 loss structure.
    let mut l = b.automaton("ChannelL");
    let lidle = l.location("LIdle");
    let lchoice = l.committed_location("LChoice");
    let ltransit = l.location_with_invariant("LTransit", vec![ClockAtom::le(lc, td)]);
    l.edge(lidle, lchoice).recv(putack).reset(lc, 0).done();
    for _ in 0..49 {
        l.edge(lchoice, ltransit).done();
    }
    l.edge(lchoice, lidle).send(lost).done();
    l.edge(ltransit, lidle).send(ack).done();
    l.done();

    let net = b.build();
    BrpNetwork {
        n,
        max_retries,
        net,
        sender,
        failed,
        done,
        srep,
        i,
        rc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_modest::{Modes, Scheduler};

    /// Small instance for fast exact tests.
    fn small() -> Brp {
        brp(2, 1, 1)
    }

    #[test]
    fn invariants_hold() {
        let b = small();
        let mc = b.mcpta(0, 2_000_000);
        assert!(mc.check_invariant(&b.ta1()), "no premature timeouts");
        assert!(mc.check_invariant(&b.ta2()), "failures handled correctly");
    }

    #[test]
    fn impossible_events_have_probability_zero() {
        let b = small();
        let mc = b.mcpta(0, 2_000_000);
        assert_eq!(mc.pmax(&b.pa_goal()), 0.0);
        assert_eq!(mc.pmax(&b.pb_goal()), 0.0);
    }

    #[test]
    fn failure_probabilities_small_and_ordered() {
        let b = small();
        let mc = b.mcpta(0, 2_000_000);
        let p1 = mc.pmax(&b.p1_goal());
        let p2 = mc.pmax(&b.p2_goal());
        assert!(p1 > 0.0 && p1 < 0.05, "P1 = {p1}");
        assert!(p2 > 0.0 && p2 <= p1, "P2 = {p2} vs P1 = {p1}");
        // With MAX = 1: a chunk aborts after 2 lost rounds. A round is
        // lost iff data or ack is lost: q = 0.02 + 0.98·0.02 = 0.0396.
        // First chunk abort = NOK, second = DK.
        let q: f64 = 1.0 - 0.98 * 0.98;
        let per_chunk = q * q;
        let expected_p1 = per_chunk + (1.0 - per_chunk) * per_chunk;
        assert!(
            (p1 - expected_p1).abs() < 1e-9,
            "P1 = {p1}, hand-computed {expected_p1}"
        );
        let expected_p2 = (1.0 - per_chunk) * per_chunk;
        assert!((p2 - expected_p2).abs() < 1e-9);
    }

    #[test]
    fn success_is_almost_sure_complement() {
        let b = small();
        let mc = b.mcpta(0, 2_000_000);
        let p1 = mc.pmax(&b.p1_goal());
        let ps = mc.pmin(&b.success());
        assert!((ps + p1 - 1.0).abs() < 1e-9, "success + failure = 1");
    }

    #[test]
    fn expected_time_finite_and_positive() {
        let b = small();
        let mc = b.mcpta(0, 2_000_000);
        let emax = mc.emax_time(&b.done());
        assert!(emax.is_finite(), "every scheduler finishes");
        assert!(emax > 0.0 && emax < 100.0, "Emax = {emax}");
        let emin = mc.emin_time(&b.done());
        assert!(emin <= emax);
    }

    #[test]
    fn dmax_increases_with_bound() {
        let b = small();
        let mc = b.mcpta(30, 4_000_000);
        let d_small = mc.pmax(&b.dmax_goal(2));
        let d_large = mc.pmax(&b.dmax_goal(30));
        assert!(d_small <= d_large);
        assert!(
            d_large > 0.9,
            "almost all transfers finish within 30: {d_large}"
        );
    }

    #[test]
    fn tick_compression_shrinks_brp_without_changing_table_one() {
        let b = small();
        let full = b.mcpta(0, 2_000_000);
        let compressed = b.mcpta_with(
            0,
            McptaConfig {
                compress_ticks: true,
                ..McptaConfig::default()
            },
            2_000_000,
        );
        assert!(
            compressed.stats().states < full.stats().states,
            "compressed {} vs full {}",
            compressed.stats().states,
            full.stats().states
        );
        for goal in [b.p1_goal(), b.p2_goal(), b.pa_goal(), b.pb_goal()] {
            assert!((compressed.pmax(&goal) - full.pmax(&goal)).abs() < 1e-12);
        }
        assert!((compressed.pmin(&b.success()) - full.pmin(&b.success())).abs() < 1e-12);
        assert!((compressed.emax_time(&b.done()) - full.emax_time(&b.done())).abs() < 1e-9);
        assert!(compressed.check_invariant(&b.ta1()) && compressed.check_invariant(&b.ta2()));
    }

    #[test]
    fn network_brp_smc_estimate_matches_analytic_p1() {
        // The TA-network encoding must carry exactly the MODEST model's
        // probability structure: estimate P1 by simulation and check the
        // confidence interval brackets the closed form (≈ 3.13e-3 for
        // N = 2, MAX = 1 — large enough for plain Monte Carlo).
        let b = brp_network(2, 1, 1);
        let mut smc = tempo_smc::StatisticalChecker::new(&b.net, tempo_smc::RatePolicy::new(), 7);
        let est = smc.probability(&b.p1_goal(), b.time_bound(1), 20_000, 0.99);
        let exact = b.exact_p1();
        assert!(
            est.lower <= exact && exact <= est.upper,
            "CI [{}, {}] misses analytic P1 = {exact}",
            est.lower,
            est.upper
        );
        assert!(est.mean > 0.0, "rare but observable at 20k runs");
    }

    #[test]
    fn modes_simulation_agrees_on_shape() {
        let b = small();
        let mut modes = Modes::new(&b.pta, &[], Scheduler::Alap, 11);
        let done = b.done();
        let obs = modes.observe(500, 200, 10_000, |exp, run| {
            run.first_hit(exp, &done).is_some()
        });
        assert_eq!(
            obs.observations, 500,
            "every run reports within the horizon"
        );
        let ta1 = b.ta1();
        let safe = modes.observe(200, 200, 10_000, |exp, run| run.globally(exp, &ta1));
        assert_eq!(safe.observations, 200, "all runs satisfy TA1");
    }
}
