//! # tempo-models — the paper's example systems
//!
//! Executable versions of every model used in the evaluation of Bozga et
//! al., *State-of-the-Art Tools and Techniques for Quantitative Modeling
//! and Analysis of Embedded Systems* (DATE 2012):
//!
//! * [`train_gate()`] / [`train_gate_game`] — the §II.A train crossing
//!   (Figs. 1–3) for model checking, synthesis and SMC (Fig. 4);
//! * [`brp()`] — the §III.A Bounded Retransmission Protocol in MODEST,
//!   with every property of Table I;
//! * [`dala()`] — the §IV DALA rover functional level in BIP, for
//!   deadlock analysis, controller synthesis and fault injection;
//! * [`vending`] — untimed and timed specifications, implementations and
//!   mutants for the §V model-based-testing experiments;
//! * [`wcet`] — a METAMOC-style worst-case-execution-time model for the
//!   §II UPPAAL-CORA application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brp;
pub mod chain;
pub mod dala;
pub mod train_gate;
pub mod vending;
pub mod wcet;

pub use brp::{brp, brp_network, Brp, BrpNetwork};
pub use chain::{chain, Chain};
pub use dala::{dala, Dala};
pub use train_gate::{train_gate, train_gate_game, TrainGate, TrainGateGame, TrainLocs};
pub use wcet::{wcet_program, WcetProgram};
