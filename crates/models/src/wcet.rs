//! A worst-case-execution-time model in the style of METAMOC
//! (Dalsgaard et al., cited by the paper in §II as an application of
//! UPPAAL-CORA: "several applications to optimization for embedded
//! systems, including Worst-Case Execution Times (WCET) analysis").
//!
//! A small straight-line program with a bounded loop runs on a pipeline
//! whose instruction latency depends nondeterministically on the cache:
//! a hit costs `HIT` cycles, a miss `MISS` cycles. The WCET is the
//! maximum time to reach the final location; the BCET the minimum. Both
//! are computed exactly with `tempo-cora`.

use tempo_cora::{MaxCost, PricedNetwork};
use tempo_expr::{Expr, Stmt, VarId};
use tempo_ta::{AutomatonId, ClockAtom, LocationId, Network, NetworkBuilder, StateFormula};

/// Cycles for a cache hit.
pub const HIT: i64 = 1;
/// Cycles for a cache miss.
pub const MISS: i64 = 4;

/// Handles to the WCET model.
#[derive(Debug)]
pub struct WcetProgram {
    /// The program automaton network.
    pub net: Network,
    /// The program automaton.
    pub cpu: AutomatonId,
    /// The final location (program exit).
    pub exit: LocationId,
    /// Loop counter variable.
    pub counter: VarId,
    /// Number of loop iterations.
    pub iterations: i64,
}

/// Builds the WCET model: `prologue; loop(iterations) { body }; epilogue`
/// where every instruction fetch nondeterministically hits or misses the
/// cache.
///
/// # Panics
///
/// Panics if `iterations <= 0`.
#[must_use]
pub fn wcet_program(iterations: i64) -> WcetProgram {
    assert!(iterations > 0, "at least one loop iteration");
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let counter = b.decls_mut().int("i", 0, iterations);
    let mut cpu = b.automaton("Cpu");

    // Each instruction is a location whose dwell time is HIT or MISS,
    // modelled as two outgoing edges with exact-time guards under an
    // invariant of MISS.
    let instruction = |cpu: &mut tempo_ta::AutomatonBuilder<'_>, name: &str| {
        cpu.location_with_invariant(name, vec![ClockAtom::le(x, MISS)])
    };
    let prologue = instruction(&mut cpu, "Prologue");
    let loop_head = instruction(&mut cpu, "LoopHead");
    let body = instruction(&mut cpu, "Body");
    let epilogue = instruction(&mut cpu, "Epilogue");
    let exit = cpu.location("Exit");
    cpu.set_initial(prologue);

    // Fetch latencies: leave after exactly HIT (hit) or exactly MISS
    // (miss) cycles.
    let fetch = |cpu: &mut tempo_ta::AutomatonBuilder<'_>,
                 from: LocationId,
                 to: LocationId,
                 guard: Expr,
                 update: Stmt| {
        for latency in [HIT, MISS] {
            cpu.edge(from, to)
                .guard_clock(ClockAtom::ge(x, latency))
                .guard_clock(ClockAtom::le(x, latency))
                .guard_data(guard.clone())
                .update(update.clone())
                .reset(x, 0)
                .done();
        }
    };
    fetch(&mut cpu, prologue, loop_head, Expr::truth(), Stmt::skip());
    // Loop: enter the body while i < iterations, exit when done.
    fetch(
        &mut cpu,
        loop_head,
        body,
        Expr::var(counter).lt(Expr::konst(iterations)),
        Stmt::skip(),
    );
    fetch(
        &mut cpu,
        body,
        loop_head,
        Expr::truth(),
        Stmt::assign(counter, Expr::var(counter) + Expr::konst(1)),
    );
    fetch(
        &mut cpu,
        loop_head,
        epilogue,
        Expr::var(counter).ge(Expr::konst(iterations)),
        Stmt::skip(),
    );
    fetch(&mut cpu, epilogue, exit, Expr::truth(), Stmt::skip());
    let cpu = cpu.done();

    WcetProgram {
        net: b.build(),
        cpu,
        exit,
        counter,
        iterations,
    }
}

impl WcetProgram {
    /// The goal formula: program terminated.
    #[must_use]
    pub fn terminated(&self) -> StateFormula {
        StateFormula::at(self.cpu, self.exit)
    }

    /// Analytic WCET: every fetch misses.
    /// Instructions executed: prologue + (head+body)·n + head + epilogue.
    #[must_use]
    pub fn analytic_wcet(&self) -> i64 {
        self.instruction_count() * MISS
    }

    /// Analytic BCET: every fetch hits.
    #[must_use]
    pub fn analytic_bcet(&self) -> i64 {
        self.instruction_count() * HIT
    }

    fn instruction_count(&self) -> i64 {
        1 + 2 * self.iterations + 1 + 1
    }

    /// Computes (BCET, WCET) with the CORA engine.
    ///
    /// # Panics
    ///
    /// Panics if the program cannot terminate (never happens for this
    /// model).
    #[must_use]
    pub fn analyze(&self) -> (i64, i64) {
        let priced = PricedNetwork::new(self.net.clone());
        let goal = self.terminated();
        let bcet = priced.min_time_reach(&goal).expect("program terminates");
        let wcet = match priced.max_time_reach(&goal).expect("program terminates") {
            MaxCost::Bounded(c) => c,
            MaxCost::Unbounded => panic!("bounded loop cannot diverge"),
        };
        (bcet, wcet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcet_matches_analytic_bound() {
        for n in [1, 2, 4] {
            let p = wcet_program(n);
            let (bcet, wcet) = p.analyze();
            assert_eq!(bcet, p.analytic_bcet(), "BCET for n={n}");
            assert_eq!(wcet, p.analytic_wcet(), "WCET for n={n}");
            assert!(bcet < wcet);
        }
    }

    #[test]
    fn wcet_grows_linearly_with_iterations() {
        let w2 = wcet_program(2).analyze().1;
        let w4 = wcet_program(4).analyze().1;
        // Two extra iterations = 2 × (head + body) × MISS.
        assert_eq!(w4 - w2, 2 * 2 * MISS);
    }

    #[test]
    fn termination_is_certain() {
        let p = wcet_program(3);
        let mut mc = tempo_ta::ModelChecker::new(&p.net);
        assert!(mc.reachable(&p.terminated()).reachable);
        // The paper's liveness operator applies: the program always exits.
        let (live, _) = tempo_ta::leads_to(
            &p.net,
            &StateFormula::at(p.cpu, LocationId(0)),
            &p.terminated(),
        );
        assert!(live.holds());
    }
}
