//! A simplified BIP model of the DALA rover's functional and execution
//! control level (Bozga et al., DATE 2012, §IV and Fig. 6).
//!
//! The real DALA runs GenoM modules (NDD navigation, RFLEX wheel
//! controller, POM position manager, laser scanner, antenna, …) under a
//! BIP execution controller. This reproduction keeps the architecture —
//! one atomic component per module, rendezvous/broadcast connectors,
//! priorities — and the two documented safety rules:
//!
//! 1. the rover must not move while the antenna is communicating;
//! 2. the rover must not *start* moving on stale laser data.
//!
//! Faults are modelled as uncontrollable interactions (spontaneous
//! communication requests, laser data expiry), so the synthesized
//! execution controller must keep the system safe *despite* them — the
//! paper's fault-injection experiment.

use tempo_bip::{BipState, BipSystem, BipSystemBuilder, InteractionId};
use tempo_expr::{Expr, Stmt, VarId};

/// Handles to the DALA model.
#[derive(Debug)]
pub struct Dala {
    /// The composed BIP system.
    pub sys: BipSystem,
    /// Danger flag: raised when a safety rule is violated.
    pub danger: VarId,
    /// The interaction that starts motion.
    pub start_move: InteractionId,
    /// The uncontrollable communication request.
    pub comm_request: InteractionId,
    /// The uncontrollable laser-data expiry.
    pub laser_expire: InteractionId,
}

/// Builds the simplified DALA functional level.
#[must_use]
pub fn dala() -> Dala {
    let mut b = BipSystemBuilder::new();
    let danger = b.decls_mut().int("danger", 0, 1);
    let stale = b.decls_mut().int("stale", 0, 1);
    let comm = b.decls_mut().int("comm", 0, 1);
    let moving = b.decls_mut().int("moving", 0, 1);

    // RFLEX: the wheel controller.
    let mut rflex = b.component("RFLEX");
    let r_idle = rflex.state("Idle");
    let r_moving = rflex.state("Moving");
    let p_start = rflex.port("start");
    let p_stop = rflex.port("stop");
    rflex.transition(r_idle, r_moving, p_start);
    rflex.transition(r_moving, r_idle, p_stop);
    rflex.done();

    // NDD: navigation — produces speed references; must trigger RFLEX.
    let mut ndd = b.component("NDD");
    let n_idle = ndd.state("Idle");
    let n_track = ndd.state("Tracking");
    let p_plan = ndd.port("plan");
    let p_done = ndd.port("done");
    ndd.transition(n_idle, n_track, p_plan);
    ndd.transition(n_track, n_idle, p_done);
    ndd.done();

    // Laser scanner: data freshness.
    let mut laser = b.component("Laser");
    let l_fresh = laser.state("Fresh");
    let l_stale = laser.state("Stale");
    let p_expire = laser.port("expire");
    let p_scan = laser.port("scan");
    laser.transition(l_fresh, l_stale, p_expire);
    laser.transition(l_stale, l_fresh, p_scan);
    laser.done();

    // Antenna: communication windows requested by the orbiter
    // (uncontrollable), granted by the controller.
    let mut antenna = b.component("Antenna");
    let a_idle = antenna.state("Idle");
    let a_pending = antenna.state("Pending");
    let a_comm = antenna.state("Comm");
    let p_request = antenna.port("request");
    let p_grant = antenna.port("grant");
    let p_end = antenna.port("end");
    antenna.transition(a_idle, a_pending, p_request);
    antenna.transition(a_pending, a_comm, p_grant);
    antenna.transition(a_comm, a_idle, p_end);
    antenna.done();

    // POM: position manager, updated on every motion start/stop
    // (broadcast synchron).
    let mut pom = b.component("POM");
    let pom_s = pom.state("Track");
    let p_update = pom.port("update");
    pom.transition(pom_s, pom_s, p_update);
    pom.done();

    // Interactions.
    // Starting a move: NDD plans and RFLEX starts together; POM listens
    // (broadcast). Raises danger if the laser data is stale or a
    // communication is ongoing.
    let start_move = b.broadcast("start_move", &[p_start, p_update]);
    b.set_update(
        start_move,
        Stmt::seq(vec![
            Stmt::assign(moving, Expr::konst(1)),
            Stmt::if_then(
                Expr::var(stale).eq(Expr::konst(1)) | Expr::var(comm).eq(Expr::konst(1)),
                Stmt::assign(danger, Expr::konst(1)),
            ),
        ]),
    );
    let plan = b.rendezvous("plan", &[p_plan]);
    let _ = plan;
    let stop_move = b.broadcast("stop_move", &[p_stop, p_update]);
    b.set_update(stop_move, Stmt::assign(moving, Expr::konst(0)));
    let nav_done = b.rendezvous("nav_done", &[p_done]);
    let _ = nav_done;

    // Laser: expiry is a fault; scanning refreshes.
    let laser_expire = b.rendezvous("laser_expire", &[p_expire]);
    b.set_update(laser_expire, Stmt::assign(stale, Expr::konst(1)));
    b.set_uncontrollable(laser_expire);
    let scan = b.rendezvous("scan", &[p_scan]);
    b.set_update(scan, Stmt::assign(stale, Expr::konst(0)));

    // Antenna: requests arrive uncontrollably; granting is controllable;
    // a grant while moving raises danger.
    let comm_request = b.rendezvous("comm_request", &[p_request]);
    b.set_uncontrollable(comm_request);
    let grant = b.rendezvous("grant", &[p_grant]);
    // Granting a communication window while the rover is moving violates
    // safety rule 1.
    b.set_update(
        grant,
        Stmt::seq(vec![
            Stmt::assign(comm, Expr::konst(1)),
            Stmt::if_then(
                Expr::var(moving).eq(Expr::konst(1)),
                Stmt::assign(danger, Expr::konst(1)),
            ),
        ]),
    );
    let end_comm = b.rendezvous("end_comm", &[p_end]);
    b.set_update(end_comm, Stmt::assign(comm, Expr::konst(0)));

    // Priority: pending communication outranks starting a new move
    // (steering the engine, §IV: priorities "steer system evolution so as
    // to meet performance requirements e.g. scheduling policies").
    b.priority(start_move, grant);

    Dala {
        sys: b.build(),
        danger,
        start_move,
        comm_request,
        laser_expire,
    }
}

impl Dala {
    /// The unsafe-state predicate for synthesis and fault injection.
    pub fn bad(&self) -> impl Fn(&BipState) -> bool + '_ {
        let danger = self.danger;
        move |s: &BipState| s.store.get(danger) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_bip::{
        check_deadlock_freedom, fault_injection_campaign, synthesize_safety_controller,
        DfinderVerdict,
    };

    #[test]
    fn dala_is_deadlock_free() {
        let d = dala();
        // Explicit check.
        assert!(d.sys.find_deadlock(100_000).is_none());
        // Compositional check at least terminates and never *wrongly*
        // certifies: if it proves freedom, the explicit check must agree.
        match check_deadlock_freedom(&d.sys, 1_000_000) {
            DfinderVerdict::DeadlockFree { .. } => {}
            DfinderVerdict::Unknown { suspects } => {
                // The data-guarded grant interaction may leave suspects;
                // they must all be unreachable.
                let reachable = d.sys.reachable_states(100_000);
                for s in suspects {
                    assert!(
                        !reachable
                            .iter()
                            .any(|r| r.control == s && d.sys.enabled_interactions(r).is_empty()),
                        "suspect {s:?} is a real deadlock"
                    );
                }
            }
        }
    }

    #[test]
    fn controller_synthesis_succeeds() {
        let d = dala();
        let res = synthesize_safety_controller(&d.sys, d.bad(), 100_000);
        assert!(res.initial_safe, "DALA is controllable");
    }

    #[test]
    fn fault_injection_controller_blocks_danger() {
        let d = dala();
        let res = synthesize_safety_controller(&d.sys, d.bad(), 100_000);
        let without = fault_injection_campaign(&d.sys, None, d.bad(), 40, 200, 7);
        assert!(
            without.unsafe_runs > 0,
            "without the controller random execution reaches danger"
        );
        let with = fault_injection_campaign(&d.sys, Some(&res.controller), d.bad(), 40, 200, 7);
        assert_eq!(with.unsafe_runs, 0, "the controller keeps all runs safe");
        assert!(with.total_steps > 0, "the controlled system still runs");
    }
}
