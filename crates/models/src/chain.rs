//! A rare-event chain: `k` consecutive fair binary choices must all
//! come out "up" to reach the goal.
//!
//! Each stage `L0 … L(k-1)` offers exactly two unguarded internal
//! edges — one to the next stage, one to the absorbing `Fail` sink —
//! so under the uniform-choice stochastic semantics of `tempo-smc`
//! every stage advances with probability exactly `1/2`. The goal
//! probability is therefore analytic: `P(<> Goal) = 2^-k`, which at
//! `k = 20` is ≈ `9.54e-7` — the validation oracle for the
//! importance-splitting engine (ISSUE 9 asks for an exact reference
//! probability `p ≤ 1e-6`).
//!
//! Every stage carries the invariant `x ≤ 1` with `x` reset on both
//! outgoing edges, so runs take real time (duration ≤ `k`) and the
//! model prices naturally: a location cost rate on the stages makes
//! cost-bounded queries (`P[cost ≤ C](<> Goal)`) non-trivial.

use tempo_dbm::Clock;
use tempo_ta::{AutomatonId, ClockAtom, LocationId, Network, NetworkBuilder, StateFormula};

/// The chain model with its property handles.
#[derive(Debug)]
pub struct Chain {
    /// Number of fair binary stages `k`.
    pub k: usize,
    /// The network (one automaton).
    pub net: Network,
    /// The single automaton.
    pub aut: AutomatonId,
    /// Stage locations `L0 … L(k-1)`, then the goal.
    pub stages: Vec<LocationId>,
    /// The goal location (all `k` choices came out "up").
    pub goal_loc: LocationId,
    /// The absorbing failure sink.
    pub fail_loc: LocationId,
    /// The stage clock (reset on every choice).
    pub x: Clock,
}

impl Chain {
    /// The goal formula `<> Goal`, with analytic probability `2^-k`.
    #[must_use]
    pub fn goal(&self) -> StateFormula {
        StateFormula::at(self.aut, self.goal_loc)
    }

    /// The analytic goal probability `2^-k`.
    #[must_use]
    pub fn exact_probability(&self) -> f64 {
        0.5_f64.powi(self.k as i32)
    }

    /// A time bound that every run respects (each stage delays at most
    /// one time unit).
    #[must_use]
    pub fn time_bound(&self) -> f64 {
        self.k as f64 + 1.0
    }
}

/// Builds the `k`-stage chain; `k = 20` gives `p = 2^-20 ≈ 9.5e-7`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 1000` (the goal probability would
/// underflow any meaningful estimate).
#[must_use]
pub fn chain(k: usize) -> Chain {
    assert!(k > 0 && k <= 1000, "k must be in 1..=1000");
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("Chain");
    let stages: Vec<LocationId> = (0..k)
        .map(|i| a.location_with_invariant(&format!("L{i}"), vec![ClockAtom::le(x, 1)]))
        .collect();
    let goal_loc = a.location("Goal");
    let fail_loc = a.location("Fail");
    for (i, &from) in stages.iter().enumerate() {
        let up = if i + 1 < k { stages[i + 1] } else { goal_loc };
        a.edge(from, up).reset(x, 0).done();
        a.edge(from, fail_loc).reset(x, 0).done();
    }
    // Absorbing self-loops keep both sinks deadlock-free so runs end at
    // the time bound, not in a spurious timelock.
    a.edge(goal_loc, goal_loc)
        .guard_clock(ClockAtom::ge(x, 0))
        .done();
    a.edge(fail_loc, fail_loc)
        .guard_clock(ClockAtom::ge(x, 0))
        .done();
    let aut = a.done();
    let net = b.build();
    Chain {
        k,
        net,
        aut,
        stages,
        goal_loc,
        fail_loc,
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_built_and_goal_probability_is_analytic() {
        let c = chain(20);
        assert_eq!(c.stages.len(), 20);
        assert!((c.exact_probability() - 9.536_743_164_062_5e-7).abs() < 1e-18);
        assert!(c.exact_probability() <= 1e-6);
    }

    #[test]
    fn chain_goal_is_reachable_and_fail_absorbing() {
        let c = chain(5);
        let mut mc = tempo_ta::ModelChecker::new(&c.net);
        assert!(mc.reachable(&c.goal()).reachable);
        let mut mc = tempo_ta::ModelChecker::new(&c.net);
        assert!(
            mc.reachable(&StateFormula::at(c.aut, c.fail_loc)).reachable,
            "fail sink reachable"
        );
    }
}
