//! Vendored, dependency-free stand-in for the parts of the `criterion` crate
//! that the tempo workspace uses.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace pins `criterion` to this in-tree implementation via a path
//! dependency. It keeps the authoring surface (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`) and measures wall-clock time per
//! iteration, printing min / median / max per benchmark. There is no
//! statistical regression analysis — the numbers are honest measurements,
//! suitable for comparing variants within one run (e.g. thread-count
//! scaling), not for cross-run change detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line configuration is not
    /// supported by the vendored harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(None, &id.into().label, sample_size, f);
        self
    }
}

/// Identifier for one benchmark, optionally parameterised (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A parameterised id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into().label, self.sample_size, f);
        self
    }

    /// Run one benchmark that closes over a shared input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into().label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group. Results are printed as benchmarks run, so this only
    /// exists for API compatibility.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` performs the timing.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, running one untimed warm-up iteration and then
    /// `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            self.samples.push(elapsed);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    label: &str,
    sample_size: usize,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full:<56} (no samples: closure never called Bencher::iter)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let max = *bencher.samples.last().unwrap();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{full:<56} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a function that runs each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier to keep the optimiser from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(shim_benches, sample_bench);

    #[test]
    fn harness_runs() {
        shim_benches();
    }
}
