//! Integration tests of the analysis service: cache soundness (a cached
//! verdict is byte-identical to a fresh run at any worker-thread count),
//! disk-tier certificate replay (a tampered entry is rejected and
//! transparently recomputed), typed admission control, request
//! coalescing, all-owners cancellation, and the deterministic
//! spawn/cancel/shutdown guarantee under race stress.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use proptest::prelude::*;
use tempo_core::mdp::Opt;
use tempo_core::obs::{Budget, ExploreConfig};
use tempo_core::svc::{
    AnalysisService, JobError, JobKind, JobRequest, JobVerdict, Rejected, ServiceConfig,
    VerdictSource,
};
use tempo_core::ta::{
    AutomatonId, ClockAtom, LocationId, ModelChecker, Network, NetworkBuilder, StateFormula,
};
use tempo_models::{brp, dala, train_gate, train_gate_game};

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tempo-svc-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(tenant: &str, kind: JobKind) -> JobRequest {
    JobRequest {
        tenant: tenant.to_owned(),
        priority: 0,
        budget: Budget::unlimited(),
        kind,
    }
}

/// A fast job per engine family, cheap enough to run repeatedly under
/// proptest but exercising real state-space exploration.
fn workload() -> Vec<JobKind> {
    let tg = train_gate(2);
    let net = Arc::new(tg.net.clone());
    let game = train_gate_game(2);
    let model = brp(1, 1, 1);
    vec![
        JobKind::Reach {
            net: Arc::clone(&net),
            goal: tg.cross(0),
            explore: ExploreConfig::default(),
        },
        JobKind::LeadsTo {
            net: Arc::clone(&net),
            phi: tg.appr(0),
            psi: tg.cross(0),
        },
        JobKind::SafetyGame {
            net: Arc::new(game.net.clone()),
            bad: game.collision(),
        },
        JobKind::Probability {
            net,
            rates: tg.rates(),
            seed: 7,
            goal: tg.cross(0),
            bound: 100.0,
            runs: 200,
            confidence: 0.95,
        },
        JobKind::McptaReach {
            pta: Arc::new(model.pta.clone()),
            opt: Opt::Max,
            goal: model.p1_goal(),
            epsilon: 1e-9,
        },
        JobKind::BipDeadlock {
            sys: Arc::new(dala().sys.clone()),
        },
    ]
}

/// A slow job (seed-parameterized so distinct seeds never coalesce):
/// enough simulation runs that cancellation and backpressure tests can
/// reliably observe it still in flight.
fn slow_job(seed: u64, runs: usize) -> JobKind {
    let tg = train_gate(2);
    JobKind::Probability {
        net: Arc::new(tg.net.clone()),
        rates: tg.rates(),
        seed,
        goal: tg.cross(0),
        bound: 100.0,
        runs,
        confidence: 0.95,
    }
}

const LOCS: usize = 4;

#[derive(Debug, Clone)]
struct EdgeSpec {
    from: usize,
    to: usize,
    lower: Option<i64>,
    upper: Option<i64>,
    reset: bool,
}

fn arb_edges() -> impl Strategy<Value = Vec<EdgeSpec>> {
    prop::collection::vec(
        (
            0..LOCS,
            0..LOCS,
            prop::option::of(0..4_i64),
            prop::option::of(0..6_i64),
            prop::bool::ANY,
        )
            .prop_map(|(from, to, lower, upper, reset)| EdgeSpec {
                from,
                to,
                lower,
                upper,
                reset,
            }),
        1..8,
    )
}

fn build_random_net(edges: &[EdgeSpec], invariants: &[Option<i64>]) -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("A");
    let locs: Vec<LocationId> = (0..LOCS)
        .map(|i| match invariants[i] {
            Some(c) => a.location_with_invariant(&format!("L{i}"), vec![ClockAtom::le(x, c)]),
            None => a.location(&format!("L{i}")),
        })
        .collect();
    for e in edges {
        let mut eb = a.edge(locs[e.from], locs[e.to]);
        if let Some(lo) = e.lower {
            eb = eb.guard_clock(ClockAtom::ge(x, lo));
        }
        if let Some(hi) = e.upper {
            eb = eb.guard_clock(ClockAtom::le(x, hi));
        }
        if e.reset {
            eb = eb.reset(x, 0);
        }
        eb.done();
    }
    a.done();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite property: on random small networks, the cached verdict
    /// equals both the fresh service run and a direct engine run, at any
    /// worker-thread count.
    #[test]
    fn random_networks_cached_verdict_equals_fresh(
        edges in arb_edges(),
        invariants in prop::collection::vec(prop::option::of(1..8_i64), LOCS),
        workers in 1_usize..=4,
    ) {
        let net = Arc::new(build_random_net(&edges, &invariants));
        // Random nets can contain genuine modelling errors (a guard
        // contradicting an invariant is TA002); the admission lint gate
        // refuses those by design, so they are not inputs of this
        // property.
        if tempo_core::lint::check_network_first(&net, &tempo_core::lint::LintConfig::default())
            .is_err()
        {
            return;
        }
        let svc = AnalysisService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        for loc in 0..LOCS {
            let goal = StateFormula::at(AutomatonId(0), LocationId(loc));
            let expected = ModelChecker::new(&net).reachable(&goal).reachable;
            let kind = JobKind::Reach {
                net: Arc::clone(&net),
                goal,
                explore: ExploreConfig::default(),
            };
            let fresh = svc.run(request("rand", kind.clone())).expect("fresh");
            let cached = svc.run(request("rand", kind)).expect("cached");
            prop_assert_eq!(&fresh.verdict, &JobVerdict::Reachable(expected));
            prop_assert_eq!(cached.source, VerdictSource::MemoryHit);
            prop_assert_eq!(cached.verdict.render(), fresh.verdict.render());
        }
        svc.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance contract of the cache: for every engine family, a
    /// warm hit is byte-identical (canonical verdict render) to the
    /// fresh computed run, at any worker-thread count — and all thread
    /// counts agree with each other.
    #[test]
    fn cached_verdict_is_byte_identical_to_fresh_at_any_thread_count(workers in 1_usize..=4) {
        static REFERENCE: OnceLock<Vec<String>> = OnceLock::new();

        let svc = AnalysisService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        let jobs = workload();

        // Pass 1: cold — every job computes.
        let mut fresh = Vec::new();
        for kind in &jobs {
            let r = svc.run(request("prop", kind.clone())).expect("fresh run");
            prop_assert_ne!(r.source, VerdictSource::MemoryHit);
            fresh.push(r.verdict.render());
        }

        // Pass 2: warm — every job must hit the memory tier and render
        // byte-identically.
        for (kind, expected) in jobs.iter().zip(&fresh) {
            let r = svc.run(request("prop", kind.clone())).expect("warm run");
            prop_assert_eq!(r.source, VerdictSource::MemoryHit);
            prop_assert_eq!(&r.verdict.render(), expected);
        }
        let stats = svc.shutdown();
        prop_assert!(stats.hits >= jobs.len() as u64);
        prop_assert_eq!(stats.misses, jobs.len() as u64);

        // Cross-case: every worker count produces the same verdicts.
        let reference = REFERENCE.get_or_init(|| fresh.clone());
        prop_assert_eq!(&fresh, reference);
    }
}

/// Acceptance criterion: a corrupted disk entry is rejected by
/// certificate replay and transparently recomputed; an intact one is
/// served as a disk hit, byte-identical to the original verdict.
#[test]
fn tampered_disk_certificate_is_rejected_and_recomputed() {
    let dir = unique_dir("tamper");
    let model = brp(2, 1, 1);
    let kind = JobKind::McptaReach {
        pta: Arc::new(model.pta.clone()),
        opt: Opt::Max,
        goal: model.p1_goal(),
        epsilon: 1e-9,
    };
    let config = || ServiceConfig {
        workers: 1,
        disk_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    // Run once to populate the disk tier.
    let svc = AnalysisService::new(config());
    let handle = svc.submit(request("a", kind.clone())).expect("admitted");
    let original = handle.wait().expect("computed");
    assert_eq!(original.source, VerdictSource::Computed);
    let path = svc
        .disk_entry_path(&handle.cache_key())
        .expect("disk tier configured");
    svc.shutdown();
    let pristine = std::fs::read_to_string(&path).expect("entry persisted");

    // Fresh process (fresh service), intact entry: certificate replays,
    // verdict served from disk, byte-identical.
    let svc = AnalysisService::new(config());
    let r = svc.run(request("a", kind.clone())).expect("disk hit");
    assert_eq!(r.source, VerdictSource::DiskHit);
    assert_eq!(r.verdict.render(), original.verdict.render());
    let stats = svc.shutdown();
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.disk_rejected, 0);
    assert_eq!(stats.disk_evicted, 0);

    // Tamper with the claimed value inside the certificate: replay must
    // reject it and the service must recompute the correct verdict.
    let tampered = pristine.replacen("value ", "value 1", 1);
    assert_ne!(tampered, pristine, "tampering must change the entry");
    std::fs::write(&path, tampered).expect("tamper");
    let svc = AnalysisService::new(config());
    let r = svc.run(request("a", kind.clone())).expect("recomputed");
    assert_eq!(r.source, VerdictSource::Computed);
    assert_eq!(r.verdict.render(), original.verdict.render());
    let stats = svc.shutdown();
    assert_eq!(stats.disk_rejected, 1);
    assert_eq!(stats.misses, 1);
    // The dead entry is deleted on rejection (and re-persisted by the
    // recompute), so it never re-pays the replay cost.
    assert_eq!(stats.disk_evicted, 1);

    // Truncation (a crashed writer, a bad block) is also rejected.
    std::fs::write(&path, &pristine[..pristine.len() / 2]).expect("truncate");
    let svc = AnalysisService::new(config());
    let r = svc.run(request("a", kind)).expect("recomputed");
    assert_eq!(r.verdict.render(), original.verdict.render());
    let stats = svc.shutdown();
    assert_eq!(stats.disk_rejected, 1);
    assert_eq!(stats.disk_evicted, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a disk hit used to rebuild its [`RunReport`] from scratch
/// with only `certificate_bytes` set, so warm starts reported zero
/// states explored and zero wall time into the per-tenant rollups. The
/// original run's report line is persisted in the entry header and must
/// come back on the hit.
#[test]
fn disk_hit_preserves_the_original_run_report() {
    let dir = unique_dir("report");
    let model = train_gate(2);
    let kind = JobKind::Reach {
        net: Arc::new(model.net.clone()),
        goal: model.cross(0),
        explore: ExploreConfig::default(),
    };
    let config = || ServiceConfig {
        workers: 1,
        disk_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    let svc = AnalysisService::new(config());
    let original = svc.run(request("t", kind.clone())).expect("computed");
    assert_eq!(original.source, VerdictSource::Computed);
    assert!(original.report.states_explored > 0);
    svc.shutdown();

    // Fresh process: the verdict comes from disk, and the report is the
    // original run's work, not a zeroed-out shell.
    let svc = AnalysisService::new(config());
    let warm = svc.run(request("t", kind)).expect("disk hit");
    assert_eq!(warm.source, VerdictSource::DiskHit);
    assert_eq!(warm.verdict.render(), original.verdict.render());
    assert_eq!(
        warm.report.states_explored, original.report.states_explored,
        "disk hit must preserve the producing run's states_explored"
    );
    assert_eq!(warm.report.states_stored, original.report.states_stored);
    assert_eq!(warm.report.wall_time, original.report.wall_time);
    assert!(warm.report.wall_time.as_nanos() > 0);
    // The rollup the tenant sees aggregates the true work too.
    let rollup = svc.tenant_report("t").expect("tenant rollup");
    assert_eq!(rollup.states_explored, original.report.states_explored);
    svc.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm memory hits must be measurably faster than recomputation on the
/// BRP mcpta workload (the digital-clocks MDP construction is what the
/// hit skips). EXPERIMENTS.md reports the measured ratio; here we only
/// assert a conservative 2x to stay robust on loaded CI machines.
#[test]
fn warm_hit_is_faster_than_recompute_on_brp_mcpta() {
    let model = brp(4, 2, 1);
    let kind = JobKind::McptaReach {
        pta: Arc::new(model.pta.clone()),
        opt: Opt::Max,
        goal: model.p1_goal(),
        epsilon: 1e-9,
    };
    let svc = AnalysisService::new(ServiceConfig::default());

    let started = Instant::now();
    let cold = svc.run(request("bench", kind.clone())).expect("cold");
    let cold_time = started.elapsed();
    assert_eq!(cold.source, VerdictSource::Computed);

    let started = Instant::now();
    let warm = svc.run(request("bench", kind)).expect("warm");
    let warm_time = started.elapsed();
    assert_eq!(warm.source, VerdictSource::MemoryHit);

    assert_eq!(warm.verdict.render(), cold.verdict.render());
    assert!(
        warm_time * 2 < cold_time,
        "warm hit ({warm_time:?}) must beat recompute ({cold_time:?})"
    );
    svc.shutdown();
}

/// Identical concurrent requests coalesce onto one engine run; the
/// leader cancelling must not rob the follower of its verdict.
#[test]
fn coalescing_shares_one_run_and_survives_leader_cancellation() {
    let svc = AnalysisService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // Occupy the single worker so the next submissions stay queued.
    let blocker = svc
        .submit(request("t", slow_job(1, 30_000)))
        .expect("admitted");

    let leader = svc
        .submit(request("t", slow_job(2, 500)))
        .expect("admitted");
    let follower = svc
        .submit(request("t", slow_job(2, 500)))
        .expect("admitted");
    assert_eq!(leader.cache_key(), follower.cache_key());

    // Leader bails out; the computation must survive for the follower.
    leader.cancel();
    assert_eq!(leader.wait(), Err(JobError::Cancelled));
    blocker.cancel();
    let served = follower.wait().expect("follower still served");
    assert_eq!(served.source, VerdictSource::Coalesced);

    let stats = svc.shutdown();
    assert_eq!(stats.coalesced, 1);
    assert!(stats.cancelled >= 2);
}

/// The admission lint gate refuses a model its engine would refuse —
/// before it consumes queue capacity, tenant quota, or a cache slot —
/// with the blocking diagnostics attached.
#[test]
fn admission_lint_gate_rejects_broken_models_with_diagnostics() {
    // Guard x >= 5 under invariant x <= 3: TA002, error severity.
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("A");
    let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 3)]);
    let l1 = a.location("L1");
    a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 5)).done();
    a.edge(l0, l1)
        .guard_clock(ClockAtom::ge(x, 1))
        .reset(x, 0)
        .done();
    a.edge(l1, l0).guard_clock(ClockAtom::ge(x, 1)).done();
    a.done();
    let net = Arc::new(b.build());

    let svc = AnalysisService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let kind = JobKind::Reach {
        net: Arc::clone(&net),
        goal: StateFormula::at(AutomatonId(0), LocationId(1)),
        explore: ExploreConfig::default(),
    };
    match svc.submit(request("t", kind)).err() {
        Some(Rejected::Lint(e)) => {
            assert!(e.diagnostics.iter().any(|d| d.code == "TA002"), "{e}");
        }
        other => panic!("expected Rejected::Lint, got {other:?}"),
    }
    // The same refusal covers the game engines' gate.
    let bad_game = JobKind::SafetyGame {
        net,
        bad: StateFormula::at(AutomatonId(0), LocationId(1)),
    };
    assert!(matches!(
        svc.submit(request("t", bad_game)).err(),
        Some(Rejected::Lint(_))
    ));
    let stats = svc.shutdown();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.misses, 0, "nothing was queued");
}

/// Backpressure is typed: a full queue refuses with `QueueFull`, a
/// saturated tenant with `TenantQuotaExceeded` (while other tenants are
/// still admitted), and cancellation frees the tenant's slot.
#[test]
fn admission_control_is_typed_and_quota_is_released() {
    let svc = AnalysisService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        max_active_per_tenant: 2,
        ..ServiceConfig::default()
    });
    // Worker busy on the blocker (spin until it actually picked the
    // blocker up — with capacity 1 the queue must be empty again before
    // bob can be admitted), queue holding one more...
    let blocker = svc
        .submit(request("alice", slow_job(10, 200_000)))
        .expect("admitted");
    while svc.stats().misses == 0 {
        std::thread::yield_now();
    }
    let queued = svc
        .submit(request("bob", slow_job(11, 200)))
        .expect("admitted");
    // ...so the queue is full for everyone,
    assert_eq!(
        svc.submit(request("carol", slow_job(12, 200))).err(),
        Some(Rejected::QueueFull)
    );
    // and alice (blocker + a coalesced waiter = 2 active) is saturated
    // even for work that would coalesce without touching the queue.
    let coalesced = svc
        .submit(request("alice", slow_job(11, 200)))
        .expect("coalescing needs no queue slot");
    assert_eq!(
        svc.submit(request("alice", slow_job(11, 200))).err(),
        Some(Rejected::TenantQuotaExceeded)
    );
    // Cancelling alice's jobs frees her quota immediately.
    coalesced.cancel();
    blocker.cancel();
    let readmitted = svc
        .submit(request("alice", slow_job(11, 200)))
        .expect("quota released by cancellation");

    let _ = queued.wait();
    let _ = readmitted.wait();
    let stats = svc.shutdown();
    assert!(stats.rejected >= 2);
    assert!(stats.queue_peak >= 1);

    // After shutdown, submissions are refused, typed.
    assert_eq!(
        svc.submit(request("dave", slow_job(13, 10))).err(),
        Some(Rejected::ShuttingDown)
    );
}

/// Cancelling a running job stops the engine through its governor: the
/// owner resolves immediately and shutdown does not hang waiting for a
/// simulation that would otherwise run for minutes.
#[test]
fn cancellation_stops_a_running_engine() {
    let svc = AnalysisService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let handle = svc
        .submit(request("t", slow_job(42, 50_000_000)))
        .expect("admitted");
    // Give the worker a chance to actually start the engine.
    while svc.stats().misses == 0 {
        std::thread::yield_now();
    }
    handle.cancel();
    assert_eq!(handle.wait(), Err(JobError::Cancelled));
    // Joins the worker: only passes promptly if the engine unwound.
    svc.shutdown();
}

/// Deflake-guard for the spawn/cancel/shutdown race: submissions,
/// owner cancellations and service shutdown race freely; afterwards
/// every single handle must hold a result (wait() returns immediately)
/// and late submissions must be refused, not lost. Failure mode guarded
/// against: a handle orphaned by shutdown would hang wait() forever.
#[test]
fn shutdown_resolves_every_handle_under_race_stress() {
    for round in 0..8_u64 {
        let svc = Arc::new(AnalysisService::new(ServiceConfig {
            workers: 3,
            queue_capacity: 16,
            max_active_per_tenant: 16,
            ..ServiceConfig::default()
        }));
        let handles = Arc::new(Mutex::new(Vec::new()));
        let rejected = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..4_u64 {
                let svc = Arc::clone(&svc);
                let handles = Arc::clone(&handles);
                let rejected = Arc::clone(&rejected);
                scope.spawn(move || {
                    for i in 0..6_u64 {
                        let seed = round * 1000 + t * 100 + i;
                        match svc.submit(request(&format!("tenant-{t}"), slow_job(seed, 2_000))) {
                            Ok(h) => {
                                // Cancel roughly a third of submissions
                                // immediately, racing the workers.
                                if seed % 3 == 0 {
                                    h.cancel();
                                }
                                handles.lock().expect("collector").push(h);
                            }
                            Err(_) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            // Shut down while submitters are still racing.
            svc.shutdown();
        });
        let handles = std::mem::take(&mut *handles.lock().expect("collector"));
        assert!(
            !handles.is_empty() || rejected.load(Ordering::Relaxed) > 0,
            "round {round}: the race produced no traffic at all"
        );
        for h in &handles {
            // The shutdown contract: every accepted handle has a result
            // by now — try_result (non-blocking) must already be filled.
            let result = h
                .try_result()
                .unwrap_or_else(|| panic!("round {round}: handle {} unresolved", h.id()));
            if let Err(e) = result {
                assert!(
                    matches!(e, JobError::Cancelled),
                    "round {round}: unexpected error {e}"
                );
            }
        }
    }
}

/// Per-tenant rollups merge every completed job's report.
#[test]
fn tenant_reports_roll_up_across_jobs() {
    let svc = AnalysisService::new(ServiceConfig::default());
    let tg = train_gate(2);
    let net = Arc::new(tg.net.clone());
    let first = svc
        .run(request(
            "acme",
            JobKind::Reach {
                net: Arc::clone(&net),
                goal: tg.cross(0),
                explore: ExploreConfig::default(),
            },
        ))
        .expect("reach");
    let second = svc
        .run(request(
            "acme",
            JobKind::Reach {
                net,
                goal: tg.cross(1),
                explore: ExploreConfig::default(),
            },
        ))
        .expect("reach");
    let rollup = svc.tenant_report("acme").expect("rollup exists");
    assert_eq!(
        rollup.states_explored,
        first.report.states_explored + second.report.states_explored
    );
    assert!(rollup.wall_time >= first.report.wall_time);
    assert!(svc.tenant_report("nobody").is_none());
    svc.shutdown();
}
