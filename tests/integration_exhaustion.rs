//! Exhaustion test suite: every engine, a tiny model, and starvation
//! budgets (one state, one iteration, one millisecond, zero runs). Each
//! call must return `Outcome::Exhausted` with a well-formed partial
//! answer and run report — never panic, hang, or claim a definitive
//! verdict it did not earn.

use std::time::Duration;
use tempo_core::obs::{Budget, ExhaustionReason, Outcome, RunReport};
use tempo_core::ta::{ClockAtom, ModelChecker, Network, NetworkBuilder, StateFormula, Verdict};

/// A report produced under a starvation budget must stay internally
/// consistent: storage within the state budget and wall time recorded.
fn assert_well_formed(report: &RunReport, state_budget: Option<u64>) {
    if let Some(max) = state_budget {
        assert!(
            report.states_stored <= max,
            "stored {} states under a budget of {max}",
            report.states_stored
        );
    }
    assert!(report.wall_time <= Duration::from_secs(60));
}

/// The lamp network from the quickstart: Off -> On (x := 0), On -> Off
/// once x >= 1, with On's invariant forcing the dimmer within 5.
fn lamp() -> (
    Network,
    tempo_core::ta::AutomatonId,
    tempo_core::ta::LocationId,
) {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut lamp = b.automaton("Lamp");
    let off = lamp.location("Off");
    let on = lamp.location_with_invariant("On", vec![ClockAtom::le(x, 5)]);
    lamp.edge(off, on).reset(x, 0).done();
    lamp.edge(on, off).guard_clock(ClockAtom::ge(x, 1)).done();
    let lamp_id = lamp.done();
    (b.build(), lamp_id, on)
}

#[test]
fn ta_reachability_exhausts_gracefully() {
    let (net, aid, on) = lamp();
    let goal = StateFormula::at(aid, on);
    let mut mc = ModelChecker::new(&net);
    let out = mc.reachable_governed(&goal, &Budget::unlimited().with_max_states(1));
    assert_eq!(out.exhaustion(), Some(ExhaustionReason::States));
    assert!(
        !out.value().reachable,
        "a truncated search must not claim reachability without a witness"
    );
    assert_well_formed(out.report(), Some(1));
}

#[test]
fn ta_always_exhausted_is_not_a_proof() {
    let (net, aid, on) = lamp();
    let mut mc = ModelChecker::new(&net);
    let safe = StateFormula::not(StateFormula::at(aid, on));
    let out = mc.always_governed(&safe, &Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    // The partial verdict reads "no violation found so far" — the
    // exhaustion marker is what prevents it being read as a proof.
    assert_well_formed(out.report(), Some(1));
}

#[test]
fn ta_zero_wall_clock_deadline_expires() {
    let (net, aid, on) = lamp();
    let mut mc = ModelChecker::new(&net);
    let out = mc.reachable_governed(
        &StateFormula::at(aid, on),
        &Budget::unlimited().with_wall_time(Duration::ZERO),
    );
    assert!(out.is_exhausted());
    assert!(!out.value().reachable);
}

#[test]
fn ta_liveness_and_deadlock_respect_budgets() {
    let (net, aid, on) = lamp();
    let budget = Budget::unlimited().with_max_states(1);
    let out = tempo_core::ta::leads_to_governed(
        &net,
        &StateFormula::at(aid, on),
        &StateFormula::not(StateFormula::at(aid, on)),
        &budget,
    );
    assert!(out.is_exhausted());
    assert_well_formed(out.report(), Some(1));

    let mut mc = ModelChecker::new(&net);
    let out = mc.deadlock_free_governed(&budget);
    assert!(out.is_exhausted());
    let (verdict, _) = out.value();
    assert!(
        matches!(verdict, Verdict::Satisfied),
        "no deadlock may be reported without a concrete witness"
    );
}

#[test]
fn cora_min_cost_exhausts_without_a_bogus_cost() {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("Job");
    let start = a.location("Start");
    let done = a.location("Done");
    a.edge(start, done).guard_clock(ClockAtom::ge(x, 2)).done();
    let job = a.done();
    let net = b.build();
    let priced = tempo_core::cora::PricedNetwork::new(net);
    let out = priced.min_cost_reach_governed(
        &StateFormula::at(job, done),
        &Budget::unlimited().with_max_states(1),
    );
    assert!(out.is_exhausted());
    assert!(
        out.value().is_none(),
        "a truncated cost search must not invent an optimum"
    );
    assert_well_formed(out.report(), Some(1));
}

#[test]
fn tiga_games_never_claim_winning_when_starved() {
    // The door game: controller can win with an unlimited budget.
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("Door");
    let closed = a.location_with_invariant("Closed", vec![ClockAtom::le(x, 2)]);
    let open = a.location_with_invariant("Open", vec![ClockAtom::le(x, 1)]);
    let inside = a.location("Inside");
    let missed = a.location("Missed");
    a.edge(closed, open).reset(x, 0).uncontrollable().done();
    a.edge(open, inside).guard_clock(ClockAtom::le(x, 1)).done();
    a.edge(open, missed)
        .guard_clock(ClockAtom::ge(x, 1))
        .uncontrollable()
        .done();
    let aid = a.done();
    let net = b.build();
    let solver = tempo_core::tiga::GameSolver::new(&net);
    let goal = StateFormula::at(aid, inside);

    assert!(solver.solve_reachability(&goal).winning, "sanity: winnable");

    let out = solver.solve_reachability_governed(&goal, &Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    assert!(
        !out.value().winning,
        "a starved game solver must not certify a winning strategy"
    );
    assert_well_formed(out.report(), Some(1));

    let out = solver.solve_safety_governed(
        &StateFormula::at(aid, missed),
        &Budget::unlimited().with_max_iterations(0),
    );
    assert!(out.is_exhausted());
    assert!(!out.value().winning);
}

#[test]
fn smc_zero_run_budget_reports_exhaustion() {
    let (net, aid, on) = lamp();
    let mut smc =
        tempo_core::smc::StatisticalChecker::new(&net, tempo_core::smc::RatePolicy::new(), 7);
    let goal = StateFormula::at(aid, on);
    let out = smc
        .probability_governed(
            &goal,
            10.0,
            100,
            0.95,
            &Budget::unlimited().with_max_runs(0),
        )
        .expect("valid parameters");
    assert_eq!(out.exhaustion(), Some(ExhaustionReason::Runs));
    assert!(out.value().is_none(), "zero runs yields no estimate");
    assert_eq!(out.report().runs_simulated, 0);

    // A partial run budget still yields an estimate over completed runs.
    let out = smc
        .probability_governed(
            &goal,
            10.0,
            100,
            0.95,
            &Budget::unlimited().with_max_runs(5),
        )
        .expect("valid parameters");
    assert!(out.is_exhausted());
    assert!(out.value().is_some());
    assert_eq!(out.report().runs_simulated, 5);
}

#[test]
fn mdp_value_iteration_stops_at_the_sweep_budget() {
    let mut b = tempo_core::mdp::MdpBuilder::new();
    let s0 = b.add_state();
    let heads = b.add_state();
    let tails = b.add_state();
    b.add_action(s0, None, 1.0, vec![(heads, 0.5), (tails, 0.5)])
        .unwrap();
    let mdp = b.build(s0).unwrap();
    let mut goal = vec![false; mdp.num_states()];
    goal[heads.0] = true;

    let out = tempo_core::mdp::reachability_governed(
        &mdp,
        tempo_core::mdp::Opt::Max,
        &goal,
        &Budget::unlimited().with_max_iterations(0),
    );
    assert_eq!(out.exhaustion(), Some(ExhaustionReason::Iterations));
    let v = out.value().initial_value;
    assert!(
        (0.0..=1.0).contains(&v),
        "partial value stays a probability"
    );
    assert!(
        v <= 0.5 + 1e-9,
        "value iteration from below must not overshoot the fixpoint"
    );
}

#[test]
fn ecdar_refinement_exhausted_is_not_a_verdict() {
    let mut b = tempo_core::ecdar::TioaBuilder::new("Spec");
    let x = b.clock("x");
    let idle = b.location("Idle");
    let busy = b.location_with_invariant("Busy", vec![tempo_core::ecdar::TioaAtom::le(x, 5)]);
    b.input(idle, busy, "coin").reset(x).done();
    b.output(busy, idle, "coffee")
        .guard(tempo_core::ecdar::TioaAtom::ge(x, 2))
        .done();
    let spec = b.build();

    let out =
        tempo_core::ecdar::refines_governed(&spec, &spec, &Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    assert!(
        out.value().is_ok(),
        "a truncated product exploration must not fabricate a refinement error"
    );
    // The refinement explorer may overshoot the state budget by one
    // pair's out-degree (interning stays consistent with the obligation
    // lists), so only the generic well-formedness applies here.
    assert_well_formed(out.report(), None);

    let out = tempo_core::ecdar::find_inconsistency_governed(
        &spec,
        &Budget::unlimited().with_max_states(1),
    );
    assert!(out.is_exhausted());
    assert!(out.value().is_none());
}

#[test]
fn bip_exploration_truncates_instead_of_panicking() {
    let mut b = tempo_core::bip::BipSystemBuilder::new();
    let mut ping = b.component("Ping");
    let p0 = ping.state("P0");
    let p1 = ping.state("P1");
    let hello = ping.port("hello");
    let back = ping.port("back");
    ping.transition(p0, p1, hello);
    ping.transition(p1, p0, back);
    ping.done();
    b.rendezvous("go", &[hello]);
    b.rendezvous("return", &[back]);
    let sys = b.build();

    let out = sys.reachable_states_governed(&Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    assert_eq!(out.value().len(), 1);
    assert_well_formed(out.report(), Some(1));

    let out = sys.find_deadlock_governed(&Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    assert!(
        out.value().is_none(),
        "a deadlock verdict requires actually popping a stuck state"
    );

    let out = tempo_core::bip::check_deadlock_freedom_governed(
        &sys,
        1_000,
        &Budget::unlimited().with_max_iterations(0),
    );
    assert!(out.is_exhausted());
    assert!(
        matches!(out.value(), tempo_core::bip::DfinderVerdict::Unknown { .. }),
        "a starved D-Finder run must stay inconclusive"
    );
}

#[test]
fn modest_backends_exhaust_gracefully() {
    // A one-action PTA via the MODEST frontend.
    let mut m = tempo_core::modest::ModestModel::new();
    let x = m.clock("x");
    let fire = m.action("fire");
    let done = m.decls_mut().int("done", 0, 1);
    m.define(
        "P",
        tempo_core::modest::Process::when_clock(
            ClockAtom::ge(x, 1),
            tempo_core::modest::Process::palt(
                fire,
                vec![tempo_core::modest::PaltBranch {
                    weight: 1,
                    assignments: vec![tempo_core::modest::Assignment::Var(
                        done,
                        tempo_core::expr::Expr::konst(1),
                    )],
                    then: tempo_core::modest::Process::stop(),
                }],
            ),
        ),
    );
    m.system(&["P"]);
    let pta = tempo_core::modest::compile(&m);

    // mcpta: a starved digital-clocks construction yields no MDP at all.
    let out =
        tempo_core::modest::Mcpta::try_build(&pta, &[], &Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    assert!(
        out.value().is_none(),
        "a truncated MDP would silently distort every probability"
    );
    assert_well_formed(out.report(), Some(1));

    // mctau: exhaustion keeps the trivial (sound) probability bounds.
    let mctau = tempo_core::modest::Mctau::new(&pta);
    let goal =
        StateFormula::data(tempo_core::expr::Expr::var(done).eq(tempo_core::expr::Expr::konst(1)));
    let out = mctau.probability_bounds_governed(&goal, &Budget::unlimited().with_max_states(1));
    assert!(out.is_exhausted());
    let bounds = out.value();
    assert!(
        (bounds.lower, bounds.upper) == (0.0, 1.0),
        "an exhausted bound computation must stay trivially sound"
    );

    // modes: a zero-run budget completes no runs and says so.
    let mut modes =
        tempo_core::modest::Modes::new(&pta, &[], tempo_core::modest::Scheduler::Asap, 3);
    let out = modes.observe_governed(
        50,
        10,
        100,
        |exp, run| run.first_hit(exp, &goal).is_some(),
        &Budget::unlimited().with_max_runs(0),
    );
    assert_eq!(out.exhaustion(), Some(ExhaustionReason::Runs));
    assert_eq!(out.value().runs, 0);
    assert_eq!(out.report().runs_simulated, 0);
}

#[test]
fn unlimited_budgets_always_complete() {
    let (net, aid, on) = lamp();
    let mut mc = ModelChecker::new(&net);
    let out = mc.reachable_governed(&StateFormula::at(aid, on), &Budget::unlimited());
    assert!(matches!(out, Outcome::Complete { .. }));
    assert!(out.value().reachable);
    assert!(out.report().states_stored > 0);
}
