//! Integration test: the §III.A BRP experiment (Table I) run through all
//! three MODEST backends on a small instance, checking the cross-backend
//! consistency the paper demonstrates.

use tempo_core::modest::{Mctau, Modes, Scheduler};
use tempo_models::brp::brp;

#[test]
fn table1_shape_on_small_instance() {
    let model = brp(4, 2, 1);
    // mctau: exact invariants, exact zeros for unreachable goals,
    // trivial bounds otherwise.
    let mctau = Mctau::new(&model.pta);
    assert!(mctau.check_invariant(&model.ta1()));
    assert!(mctau.check_invariant(&model.ta2()));
    assert_eq!(mctau.probability_bounds(&model.pa_goal()).upper, 0.0);
    assert_eq!(mctau.probability_bounds(&model.pb_goal()).upper, 0.0);
    assert_eq!(mctau.probability_bounds(&model.p1_goal()).upper, 1.0);

    // mcpta: exact probabilities.
    let mc = model.mcpta(0, 5_000_000);
    assert!(mc.check_invariant(&model.ta1()));
    assert!(mc.check_invariant(&model.ta2()));
    assert_eq!(mc.pmax(&model.pa_goal()), 0.0);
    assert_eq!(mc.pmax(&model.pb_goal()), 0.0);
    let p1 = mc.pmax(&model.p1_goal());
    let p2 = mc.pmax(&model.p2_goal());
    assert!(p1 > 0.0 && p1 < 0.01, "P1 = {p1}");
    assert!(p2 > 0.0 && p2 < p1, "P2 = {p2}");
    let emax = mc.emax_time(&model.done());
    assert!(emax.is_finite() && emax > 0.0);

    // Consistency across backends: anything mctau reports unreachable
    // must have probability 0 in mcpta.
    for goal in [model.pa_goal(), model.pb_goal()] {
        if mctau.probability_bounds(&goal).upper == 0.0 {
            assert_eq!(mc.pmax(&goal), 0.0);
        }
    }
}

#[test]
fn modes_rare_events_and_expectation() {
    let model = brp(4, 2, 1);
    let mc = model.mcpta(0, 5_000_000);
    let emax = mc.emax_time(&model.done());

    let mut modes = Modes::new(&model.pta, &[], Scheduler::Alap, 2024);
    let runs = 1000;
    let horizon = (emax.ceil() as i64) * 10 + 50;

    // Rare events go unobserved with realistic sample sizes (the paper's
    // point about simulation vs rare events).
    let pa = model.pa_goal();
    let obs = modes.observe(runs, horizon, 100_000, |exp, run| {
        run.first_hit(exp, &pa).is_some()
    });
    assert_eq!(obs.observations, 0);

    // The ALAP scheduler's mean completion time approximates Emax.
    let done = model.done();
    let est = modes.expected(runs, horizon, 100_000, |exp, run| {
        run.first_hit(exp, &done).unwrap_or(horizon) as f64
    });
    assert!(
        (est.mean - emax).abs() < emax * 0.25,
        "modes µ = {} vs mcpta Emax = {emax}",
        est.mean
    );

    // All simulated runs satisfy TA1 and TA2 (Table I's "all 10k runs").
    let ta1 = model.ta1();
    let safe = modes.observe(200, horizon, 100_000, |exp, run| run.globally(exp, &ta1));
    assert_eq!(safe.observations, 200);
}

#[test]
fn dmax_converges_to_total_success_probability() {
    let model = brp(2, 1, 1);
    let mc_plain = model.mcpta(0, 2_000_000);
    let p_success = mc_plain.pmax(&model.success());
    let mc_timed = model.mcpta(60, 5_000_000);
    let d_60 = mc_timed.pmax(&model.dmax_goal(60));
    // By t=60 a (2,1,1) transfer has certainly resolved, so Dmax(60)
    // equals the total success probability.
    assert!(
        (d_60 - p_success).abs() < 1e-9,
        "Dmax(60) = {d_60} vs P(success) = {p_success}"
    );
}

#[test]
fn larger_files_fail_more_often() {
    // Monotonicity in N: more chunks, more opportunities to abort.
    let p1_small = {
        let m = brp(2, 1, 1);
        m.mcpta(0, 2_000_000).pmax(&m.p1_goal())
    };
    let p1_large = {
        let m = brp(6, 1, 1);
        m.mcpta(0, 5_000_000).pmax(&m.p1_goal())
    };
    assert!(p1_large > p1_small, "{p1_large} > {p1_small}");
}

#[test]
fn more_retries_help() {
    let p1_few = {
        let m = brp(3, 1, 1);
        m.mcpta(0, 2_000_000).pmax(&m.p1_goal())
    };
    let p1_many = {
        let m = brp(3, 3, 1);
        m.mcpta(0, 5_000_000).pmax(&m.p1_goal())
    };
    assert!(p1_many < p1_few, "{p1_many} < {p1_few}");
}

/// The BRP rewritten in MODEST *concrete syntax* and parsed with the
/// `tempo-modest` parser must agree with the programmatically built
/// model on every probabilistic quantity — a strong end-to-end check of
/// lexer, parser, compiler and analysis for the paper's §III.
#[test]
fn textual_brp_agrees_with_ast_brp() {
    use tempo_core::expr::Expr;
    use tempo_core::modest::{compile, parse_modest, Mcpta};
    use tempo_core::ta::StateFormula;

    let source = r"
        const N = 2;
        const MAX = 1;
        const TD = 1;
        const TO = 4; // 2*TD + 2
        clock sc, kc, lc, rv;
        action put, get, putack, getack;
        action report_ok, timeout, retry, report_nok, report_dk;
        int [0, N] i;
        int [0, MAX] rc;
        int [0, 3] srep;
        int [0, 1] kfull;
        int [0, 1] lfull;
        int [0, 1] premature;

        process Sender() {
          invariant(sc <= 0) alt {
            :: when(i < N) put {= sc = 0 =}; Wait()
            :: when(i >= N) report_ok {= srep = 1 =}; stop
          }
        }
        process Wait() {
          invariant(sc <= TO) alt {
            :: getack {= i = i + 1, rc = 0, sc = 0 =}; Sender()
            :: when(sc >= TO)
               timeout {= premature = premature || kfull || lfull =};
               invariant(sc <= TO) alt {
                 :: when(rc < MAX) retry {= rc = rc + 1, sc = 0 =}; Sender()
                 :: when(rc >= MAX && i < N - 1) report_nok {= srep = 2 =}; stop
                 :: when(rc >= MAX && i >= N - 1) report_dk {= srep = 3 =}; stop
               }
          }
        }
        process Receiver() {
          get {= rv = 0 =}; invariant(rv <= 1) putack; Receiver()
        }
        process ChannelK() {
          put palt {
            :98: {= kc = 0, kfull = 1 =}; invariant(kc <= TD) get {= kfull = 0 =}
            : 2: {==}
          }; ChannelK()
        }
        process ChannelL() {
          putack palt {
            :98: {= lc = 0, lfull = 1 =}; invariant(lc <= TD) getack {= lfull = 0 =}
            : 2: {==}
          }; ChannelL()
        }
        system Sender() || Receiver() || ChannelK() || ChannelL();
    ";
    let textual = parse_modest(source).expect("the textual BRP parses");
    let pta = compile(&textual);
    let mc = Mcpta::build(&pta, &[], 5_000_000);
    let srep = textual.decls().lookup("srep").unwrap();
    let premature = textual.decls().lookup("premature").unwrap();
    let p1_text = mc.pmax(&StateFormula::data(
        Expr::var(srep).eq(Expr::konst(2)) | Expr::var(srep).eq(Expr::konst(3)),
    ));
    let p2_text = mc.pmax(&StateFormula::data(Expr::var(srep).eq(Expr::konst(3))));
    let emax_text = mc.emax_time(&StateFormula::data(Expr::var(srep).ne(Expr::konst(0))));
    assert!(mc.check_invariant(&StateFormula::data(Expr::var(premature).eq(Expr::konst(0)))));

    let ast = brp(2, 1, 1);
    let mc_ast = ast.mcpta(0, 5_000_000);
    let p1_ast = mc_ast.pmax(&ast.p1_goal());
    let p2_ast = mc_ast.pmax(&ast.p2_goal());
    let emax_ast = mc_ast.emax_time(&ast.done());
    assert!(
        (p1_text - p1_ast).abs() < 1e-9,
        "P1 text {p1_text} vs ast {p1_ast}"
    );
    assert!(
        (p2_text - p2_ast).abs() < 1e-9,
        "P2 text {p2_text} vs ast {p2_ast}"
    );
    assert!(
        (emax_text - emax_ast).abs() < 1e-6,
        "Emax text {emax_text} vs ast {emax_ast}"
    );
}
