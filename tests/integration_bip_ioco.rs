//! Integration test: the §IV DALA experiment (BIP deadlock analysis,
//! controller synthesis, fault injection) and the §V testing experiment
//! (ioco campaign over the dispenser models, rtioco over the timed
//! controller).

use tempo_core::bip::{
    check_deadlock_freedom, fault_injection_campaign, synthesize_safety_controller, DfinderVerdict,
};
use tempo_core::ioco::{check_ioco, LtsIut, TestGenerator, TimedTester};
use tempo_models::dala::dala;
use tempo_models::vending::{
    controller_spec, dispenser_good, dispenser_mutant_output, dispenser_mutant_refund,
    dispenser_mutant_silent, dispenser_spec, FixedDelayController,
};

#[test]
fn e5_dala_full_chain() {
    let d = dala();
    // Deadlock-freedom: explicit and compositional agree.
    assert!(d.sys.find_deadlock(500_000).is_none());
    assert!(matches!(
        check_deadlock_freedom(&d.sys, 1_000_000),
        DfinderVerdict::DeadlockFree { .. }
    ));
    // Synthesis and fault injection.
    let synthesis = synthesize_safety_controller(&d.sys, d.bad(), 500_000);
    assert!(synthesis.initial_safe);
    let uncontrolled = fault_injection_campaign(&d.sys, None, d.bad(), 60, 300, 3);
    let controlled =
        fault_injection_campaign(&d.sys, Some(&synthesis.controller), d.bad(), 60, 300, 3);
    assert!(
        uncontrolled.unsafe_runs > 0,
        "faults do reach unsafe states unguarded"
    );
    assert_eq!(
        controlled.unsafe_runs, 0,
        "the controller blocks every unsafe run"
    );
    assert!(
        controlled.total_steps > 1000,
        "the controlled system is not frozen"
    );
}

#[test]
fn e6_ioco_relation_and_campaigns_agree() {
    let spec = dispenser_spec();
    let cases: Vec<(tempo_core::ioco::Lts, bool)> = vec![
        (dispenser_good(), true),
        (dispenser_mutant_output(), false),
        (dispenser_mutant_silent(), false),
        (dispenser_mutant_refund(), false),
    ];
    for (imp, should_conform) in cases {
        let analytic = check_ioco(&imp, &spec).is_ok();
        assert_eq!(analytic, should_conform);
        // Testing is sound: conforming implementations never fail.
        // It is exhaustive in the limit: mutants fail within the budget.
        let mut gen = TestGenerator::new(&spec, 31);
        let mut iut = LtsIut::new(imp, 37);
        let (failures, _) = gen.campaign(&mut iut, 300, 25);
        if should_conform {
            assert_eq!(failures, 0, "sound testing");
        } else {
            assert!(failures > 0, "exhaustive-in-the-limit testing");
        }
    }
}

#[test]
fn e6_rtioco_deadline_boundary() {
    let spec = controller_spec(3);
    for (delay, should_pass) in [(0, true), (1, true), (3, true), (4, false), (7, false)] {
        let mut tester = TimedTester::new(&spec, &["req"], &["resp"], 41);
        let mut iut = FixedDelayController::new(delay);
        let (failures, _) = tester.campaign(&mut iut, 40, 50);
        assert_eq!(
            failures == 0,
            should_pass,
            "delay {delay}: {failures}/40 failures"
        );
    }
}

#[test]
fn verified_spec_then_tested_implementation() {
    // The paper's workflow: verify the model, then test implementations
    // against it. The timed spec is verified deadlock-free with the
    // UPPAAL substrate, then used as the rtioco test oracle.
    let spec = controller_spec(3);
    let mut mc = tempo_core::ta::ModelChecker::new(&spec);
    let (dl, _) = mc.deadlock_free();
    assert!(dl.holds(), "the spec itself is deadlock-free");
    let mut tester = TimedTester::new(&spec, &["req"], &["resp"], 13);
    let (failures, _) = tester.campaign(&mut FixedDelayController::new(2), 30, 50);
    assert_eq!(failures, 0);
}
