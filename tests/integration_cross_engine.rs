//! Cross-engine consistency tests: the same system analysed by several
//! engines must agree. This is the point of the paper's "single
//! formalism, multiple solutions" philosophy — and a strong correctness
//! oracle for the reproduction.

use tempo_core::cora::PricedNetwork;
use tempo_core::expr::Expr;
use tempo_core::modest::{
    compile, Assignment, Mcpta, Mctau, Modes, ModestModel, PaltBranch, Process, Scheduler,
};
use tempo_core::smc::{RatePolicy, StatisticalChecker};
use tempo_core::ta::{ClockAtom, DigitalExplorer, ModelChecker, NetworkBuilder, StateFormula};

/// A two-automata handshake model used across engines.
fn handshake() -> (tempo_core::ta::Network, StateFormula) {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let c = b.channel("c");
    let mut p = b.automaton("P");
    let p0 = p.location_with_invariant("P0", vec![ClockAtom::le(x, 4)]);
    let p1 = p.location("P1");
    p.edge(p0, p1)
        .guard_clock(ClockAtom::ge(x, 2))
        .send(c)
        .done();
    let pid = p.done();
    let mut q = b.automaton("Q");
    let q0 = q.location("Q0");
    let q1 = q.location("Q1");
    q.edge(q0, q1).recv(c).done();
    q.done();
    let goal = StateFormula::at(pid, p1);
    (b.build(), goal)
}

#[test]
fn symbolic_and_digital_reachability_agree() {
    let (net, goal) = handshake();
    // Symbolic.
    let mut mc = ModelChecker::new(&net);
    let symbolic = mc.reachable(&goal).reachable;
    // Digital (via min-time search).
    let priced = PricedNetwork::new(net.clone());
    let digital = priced.min_time_reach(&goal);
    assert!(symbolic);
    assert_eq!(digital, Some(2), "earliest handshake at x = 2");
    // Digital explorer agrees on the initial state.
    let exp = DigitalExplorer::new(&net);
    assert!(!exp.satisfies(&exp.initial_state(), &goal));
}

#[test]
fn smc_estimates_match_exact_probability_one() {
    // The handshake always happens by time 4 (invariant): SMC must see
    // probability ~1 with bound 10.
    let (net, goal) = handshake();
    let mut smc = StatisticalChecker::new(&net, RatePolicy::new(), 77);
    let est = smc.probability(&goal, 10.0, 500, 0.99);
    assert!(est.mean > 0.97, "estimate {est}");
}

/// A probabilistic retry model checked by mcpta and simulated by modes.
fn retry_model() -> (tempo_core::modest::Pta, StateFormula) {
    let mut m = ModestModel::new();
    let send = m.action("send");
    let ok = m.decls_mut().int("ok", 0, 1);
    let tries = m.decls_mut().int("tries", 0, 2);
    m.define(
        "P",
        Process::when(
            Expr::var(tries).lt(Expr::konst(2)),
            Process::palt(
                send,
                vec![
                    PaltBranch {
                        weight: 7,
                        assignments: vec![Assignment::Var(ok, Expr::konst(1))],
                        then: Process::stop(),
                    },
                    PaltBranch {
                        weight: 3,
                        assignments: vec![Assignment::Var(
                            tries,
                            Expr::var(tries) + Expr::konst(1),
                        )],
                        then: Process::call("P"),
                    },
                ],
            ),
        ),
    );
    m.system(&["P"]);
    let goal = StateFormula::data(Expr::var(ok).eq(Expr::konst(1)));
    (compile(&m), goal)
}

#[test]
fn mcpta_and_modes_agree_on_probability() {
    let (pta, goal) = retry_model();
    let mc = Mcpta::build(&pta, &[], 10_000);
    let exact = mc.pmax(&goal);
    let expected = 1.0 - 0.3_f64.powi(2);
    assert!((exact - expected).abs() < 1e-9);
    let mut modes = Modes::new(&pta, &[], Scheduler::Asap, 3);
    let obs = modes.observe(4000, 50, 100, |exp, run| {
        run.first_hit(exp, &goal).is_some()
    });
    assert!(
        (obs.mean - exact).abs() < 0.03,
        "modes {} vs mcpta {exact}",
        obs.mean
    );
}

#[test]
fn mctau_bounds_contain_mcpta_value() {
    let (pta, goal) = retry_model();
    let mctau = Mctau::new(&pta);
    let bounds = mctau.probability_bounds(&goal);
    let mc = Mcpta::build(&pta, &[], 10_000);
    let exact = mc.pmax(&goal);
    assert!(bounds.lower <= exact && exact <= bounds.upper);
    // And for an impossible goal, all engines give exactly zero.
    let impossible = StateFormula::data(Expr::konst(0));
    assert_eq!(mctau.probability_bounds(&impossible).upper, 0.0);
    assert_eq!(mc.pmax(&impossible), 0.0);
}

#[test]
fn deadlock_checks_agree_between_engines() {
    // A model with a genuine timed deadlock (guard window missed).
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("A");
    let l0 = a.location("L0");
    let l1 = a.location("L1");
    a.edge(l0, l1).guard_clock(ClockAtom::le(x, 2)).done();
    a.done();
    let net = b.build();
    let mut mc = ModelChecker::new(&net);
    let (dl, _) = mc.deadlock_free();
    assert!(!dl.holds(), "symbolic engine finds the missed window");
    // The digital explorer sees it too: at x = 3 nothing is enabled.
    let exp = DigitalExplorer::new(&net);
    let mut s = exp.initial_state();
    for _ in 0..3 {
        s = exp.tick(&s).expect("no invariant stops time");
    }
    assert!(exp.moves(&s).is_empty());
}
