//! Integration tests for `tempo-rare`: importance splitting against
//! analytic and mcpta-exact rare-event probabilities, priced SMC,
//! determinism across repeats and worker counts, certificate replay,
//! and the naive-vs-splitting budget comparison that motivates the
//! whole subsystem.

use std::sync::Arc;
use tempo_core::cora::PricedNetwork;
use tempo_core::obs::Budget;
use tempo_core::rare::{
    certified_cost_probability, certified_splitting_probability, run_cost, PricedChecker,
    RareChecker, SplitConfig, SplitEstimate, SplitMethod,
};
use tempo_core::smc::{RatePolicy, StatisticalChecker};
use tempo_core::svc::{AnalysisService, JobKind, JobRequest, JobVerdict, ServiceConfig};
use tempo_core::witness::certify::Certificate;
use tempo_core::witness::format;
use tempo_models::{brp, brp_network, chain};

/// The headline claim: on an event of probability ~1e-6, fixed-effort
/// splitting produces a confidence interval that excludes 0 and contains
/// the exact probability, using under 1% of the runs the naive estimator
/// needs to *expect a single success* — and the naive estimator, given
/// splitting's exact budget, sees nothing at all.
#[test]
fn splitting_brackets_rare_chain_probability_at_a_fraction_of_naive_budget() {
    let c = chain(20);
    let exact = c.exact_probability(); // 2^-20 ≈ 9.54e-7
    assert!(exact < 1e-6);

    let mut rc = RareChecker::new(&c.net, RatePolicy::new(), 11);
    let est = rc.probability(&c.goal(), c.time_bound(), &SplitConfig::default());

    assert!(est.lower > 0.0, "CI must exclude 0: {est:?}");
    assert!(
        est.lower <= exact && exact <= est.upper,
        "CI [{}, {}] misses exact p = {exact}",
        est.lower,
        est.upper
    );
    let naive_runs_to_one_success = 1.0 / exact; // ≈ 1.05e6
    assert!(
        (est.runs_total as f64) <= naive_runs_to_one_success / 100.0,
        "splitting used {} runs, over 1% of the naive {naive_runs_to_one_success}",
        est.runs_total
    );

    // Equal budget, naive estimator: the event is invisible.
    let mut smc = StatisticalChecker::new(&c.net, RatePolicy::new(), 11);
    let naive = smc.probability(
        &c.goal(),
        c.time_bound(),
        usize::try_from(est.runs_total).unwrap(),
        0.95,
    );
    assert_eq!(
        naive.successes, 0,
        "naive MC should see nothing at this budget"
    );
    assert_eq!(naive.lower, 0.0, "naive CI cannot exclude 0");
}

/// Splitting is a deterministic function of `(model, query, seed,
/// config)`: repeats are byte-identical and the worker count never
/// changes a single bit of the estimate or its work counters.
#[test]
fn splitting_is_byte_identical_across_repeats_and_worker_counts() {
    let c = chain(12);
    let config = SplitConfig {
        effort: 64,
        ..SplitConfig::default()
    };
    let run = |threads: usize| -> SplitEstimate {
        let mut rc = RareChecker::new(&c.net, RatePolicy::new(), 7).with_threads(threads);
        rc.probability(&c.goal(), c.time_bound(), &config)
    };
    let reference = run(1);
    let repeat = run(1);
    assert_eq!(reference.p_hat.to_bits(), repeat.p_hat.to_bits());
    for threads in 2..=4 {
        let est = run(threads);
        assert_eq!(
            reference.p_hat.to_bits(),
            est.p_hat.to_bits(),
            "p_hat differs at {threads} workers"
        );
        assert_eq!(reference.lower.to_bits(), est.lower.to_bits());
        assert_eq!(reference.upper.to_bits(), est.upper.to_bits());
        assert_eq!(reference.runs_total, est.runs_total);
        assert_eq!(reference.splits_spawned, est.splits_spawned);
    }
}

/// The RESTART estimator agrees with the analytic probability on a
/// moderately rare chain (its replication mean is unbiased; branch
/// factor 2 matches the per-level probability 1/2 exactly).
#[test]
fn restart_estimator_brackets_chain_probability() {
    let c = chain(10);
    let exact = c.exact_probability(); // 2^-10
    let config = SplitConfig {
        method: SplitMethod::Restart,
        branch: 2,
        replications: 512,
        ..SplitConfig::default()
    };
    let mut rc = RareChecker::new(&c.net, RatePolicy::new(), 23);
    let est = rc.probability(&c.goal(), c.time_bound(), &config);
    assert!(
        est.lower <= exact && exact <= est.upper,
        "RESTART CI [{}, {}] misses exact p = {exact}",
        est.lower,
        est.upper
    );
    assert!(est.p_hat > exact / 3.0 && est.p_hat < exact * 3.0);
    assert!(est.splits_spawned > 0, "no clone was ever spawned");
}

/// Cross-check against the digital-clocks oracle: mcpta's exact Pmax on
/// BRP P1 matches the closed form, and the splitting CI brackets it on
/// an instance (P1 ≈ 1.9e-7) far beyond naive Monte Carlo.
#[test]
fn splitting_matches_mcpta_exact_probability_on_brp() {
    let b = brp_network(2, 4, 1);
    let exact = b.exact_p1(); // ≈ 1.94e-7
    assert!(exact < 1e-6);

    let m = brp(2, 4, 1);
    let mcpta_p1 = m.mcpta(0, 2_000_000).pmax(&m.p1_goal());
    // Value iteration converges to ~1e-6 absolute precision; at p ≈ 2e-7
    // that leaves a relative slack of a few 1e-5.
    assert!(
        ((mcpta_p1 - exact) / exact).abs() < 1e-3,
        "mcpta P1 = {mcpta_p1} vs analytic {exact}"
    );

    // BRP's score is non-monotone along failure paths (the retry counter
    // resets whenever a chunk finally gets through), which distorts the
    // level-entry distribution when levels are thin; a few coarse levels
    // with a large per-level effort keep the estimator well-centred.
    let config = SplitConfig {
        effort: 4096,
        max_levels: 4,
        ..SplitConfig::default()
    };
    let mut rc = RareChecker::new(&b.net, RatePolicy::new(), 5).with_threads(4);
    let est = rc.probability(&b.p1_goal(), b.time_bound(1), &config);
    assert!(est.lower > 0.0, "CI must exclude 0: {est:?}");
    assert!(
        est.lower <= mcpta_p1 && mcpta_p1 <= est.upper,
        "splitting CI [{}, {}] misses mcpta P1 = {mcpta_p1}",
        est.lower,
        est.upper
    );
}

/// Differential test (satellite): on a BRP instance where naive SMC is
/// viable, the SMC confidence interval brackets mcpta's exact Pmax at
/// three seeds and every worker count from 1 to 4.
#[test]
fn smc_probability_brackets_mcpta_exact_p1_across_seeds_and_workers() {
    let b = brp_network(2, 1, 1);
    let exact = b.exact_p1(); // ≈ 3.13e-3
    let m = brp(2, 1, 1);
    let mcpta_p1 = m.mcpta(0, 2_000_000).pmax(&m.p1_goal());
    assert!(
        ((mcpta_p1 - exact) / exact).abs() < 1e-6,
        "mcpta P1 = {mcpta_p1} vs analytic {exact}"
    );
    for seed in [3, 17, 91] {
        for workers in 1..=4 {
            let mut smc =
                StatisticalChecker::new(&b.net, RatePolicy::new(), seed).with_threads(workers);
            let est = smc.probability(&b.p1_goal(), b.time_bound(1), 5_000, 0.99);
            assert!(
                est.lower <= mcpta_p1 && mcpta_p1 <= est.upper,
                "seed {seed}, {workers} workers: CI [{}, {}] misses {mcpta_p1}",
                est.lower,
                est.upper
            );
        }
    }
}

/// Priced SMC: with rate 1 in every location the accumulated cost is the
/// elapsed time, so cost-bounded and unbounded queries pin each other
/// down and the expected cost stays below the horizon.
#[test]
fn priced_checker_estimates_cost_bounded_probability_and_expected_cost() {
    let c = chain(6);
    let mut pnet = PricedNetwork::new(c.net.clone());
    let aut = c.aut;
    for (li, _) in c.net.automata()[aut.index()].locations.iter().enumerate() {
        pnet.set_rate(aut, tempo_core::ta::LocationId(li), 1);
    }
    let exact = c.exact_probability(); // 2^-6
    let mut chk = PricedChecker::new(&pnet, RatePolicy::new(), 9).with_threads(2);

    // Unconstrained cost: plain time-bounded reachability.
    let est = chk.cost_probability(&c.goal(), f64::INFINITY, c.time_bound(), 8_000, 0.99);
    assert!(
        est.lower <= exact && exact <= est.upper,
        "CI [{}, {}] misses exact p = {exact}",
        est.lower,
        est.upper
    );

    // Cost bound 0: unreachable without spending (every delay accrues).
    let zero = chk.cost_probability(&c.goal(), 0.0, c.time_bound(), 1_000, 0.95);
    assert_eq!(zero.successes, 0);

    // Expected cost = expected elapsed time, within the horizon.
    let mean = chk.expected_cost(c.time_bound(), 2_000);
    assert!(mean.mean > 0.0 && mean.mean <= c.time_bound() + 1.0);

    // Cost CDF of goal hits: monotone, bounded by the success fraction.
    let cdf = chk.cost_cdf(&c.goal(), c.time_bound(), 4_000);
    assert!(cdf.hits() > 0);
    assert!(cdf.at(c.time_bound()) <= 1.0);
}

/// Priced determinism: the same experiment is byte-identical at any
/// worker count (trials are seeded by index, not by worker).
#[test]
fn priced_checker_is_byte_identical_across_worker_counts() {
    let c = chain(4);
    let pnet = PricedNetwork::new(c.net.clone());
    let run = |threads: usize| {
        let mut chk = PricedChecker::new(&pnet, RatePolicy::new(), 31).with_threads(threads);
        chk.cost_probability(&c.goal(), f64::INFINITY, c.time_bound(), 500, 0.95)
    };
    let reference = run(1);
    for threads in 2..=4 {
        let est = run(threads);
        assert_eq!(reference.mean.to_bits(), est.mean.to_bits());
        assert_eq!(reference.successes, est.successes);
    }
}

/// Certified priced estimation: exported runs replay through the
/// independent validator with costs re-summed bit-exactly, and the
/// certificate round-trips through the text format.
#[test]
fn certified_cost_probability_replays_and_round_trips() {
    let c = chain(5);
    let mut pnet = PricedNetwork::new(c.net.clone());
    let aut = c.aut;
    for (li, _) in c.net.automata()[aut.index()].locations.iter().enumerate() {
        pnet.set_rate(aut, tempo_core::ta::LocationId(li), 2);
    }
    for ei in 0..c.net.automata()[aut.index()].edges.len() {
        pnet.set_edge_cost(aut, ei, 3);
    }
    let (out, cert) = certified_cost_probability(
        &pnet,
        &RatePolicy::new(),
        9,
        &c.goal(),
        1e12,
        c.time_bound(),
        200,
        0.95,
        10,
        &Budget::unlimited(),
    )
    .expect("certification must succeed");
    assert!(out.value().is_some());
    assert_eq!(cert.runs.len(), 10);
    assert!(out.report().certificate_bytes > 0);
    assert!(cert.costs.iter().any(|&c| c > 0.0));
    // `validate` already replayed inside the wrapper; prove the text
    // round-trip preserves bit-exact costs and replayability.
    let text = format::render(&Certificate::PricedRuns(cert.clone()));
    let parsed = match format::parse(&c.net, &text).expect("parse") {
        Certificate::PricedRuns(p) => p,
        other => panic!("wrong certificate kind: {other:?}"),
    };
    assert_eq!(parsed.costs.len(), cert.costs.len());
    for (a, b) in parsed.costs.iter().zip(&cert.costs) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    parsed
        .validate(&pnet)
        .expect("parsed certificate must replay");
}

/// Certified splitting: the exported goal trajectories are contiguous
/// legal runs from the initial state — each reaches the goal and
/// replays, cost re-summed exactly, through the independent validator.
#[test]
fn certified_splitting_exports_replayable_goal_trajectories() {
    let c = chain(12);
    let pnet = PricedNetwork::new(c.net.clone());
    let config = SplitConfig {
        effort: 64,
        ..SplitConfig::default()
    };
    let (out, cert) = certified_splitting_probability(
        &pnet,
        &RatePolicy::new(),
        13,
        &c.goal(),
        c.time_bound(),
        &config,
        5,
        &Budget::unlimited(),
    )
    .expect("certification must succeed");
    let est = out.value().as_ref().expect("estimate");
    assert!(est.lower > 0.0);
    assert!(!cert.runs.is_empty(), "no goal trajectory exported");
    assert!(cert.runs.len() <= 5);
    for (run, &cost) in cert.runs.iter().zip(&cert.costs) {
        assert!(
            run.satisfies_eventually(&c.net, &c.goal(), c.time_bound()),
            "exported run misses the goal"
        );
        assert_eq!(cost.to_bits(), run_cost(&pnet, run).to_bits());
    }
    assert!(out.report().splitting_levels > 0);
    assert!(out.report().splits_spawned > 0);
}

/// Budget governance: exhausting the run budget mid-experiment yields an
/// exhausted outcome with *no* value — a partial product of level
/// fractions is not an estimate — and honest work counters.
#[test]
fn splitting_under_tiny_budget_reports_exhaustion_without_a_value() {
    let c = chain(20);
    let mut rc = RareChecker::new(&c.net, RatePolicy::new(), 3);
    let out = rc
        .probability_governed(
            &c.goal(),
            c.time_bound(),
            &SplitConfig::default(),
            &Budget::unlimited().with_max_runs(10),
        )
        .expect("valid parameters");
    assert!(out.is_exhausted());
    assert!(
        out.value().is_none(),
        "partial product must not be reported"
    );
    assert!(out.report().runs_total <= 11);
}

/// Service integration: rare-event and priced jobs execute end to end,
/// their verdicts render/parse bit-exactly, and their cache keys
/// partition on seed and configuration.
#[test]
fn service_runs_rare_event_and_priced_smc_jobs() {
    let request = |kind: JobKind| JobRequest {
        tenant: "rare".to_owned(),
        priority: 0,
        budget: Budget::unlimited(),
        kind,
    };
    let c = chain(8);
    let net = Arc::new(c.net.clone());
    let pnet = Arc::new(PricedNetwork::new(c.net.clone()));
    let svc = AnalysisService::new(ServiceConfig::default());

    let rare_kind = JobKind::RareEvent {
        net: Arc::clone(&net),
        rates: RatePolicy::new(),
        seed: 11,
        goal: c.goal(),
        bound: c.time_bound(),
        config: SplitConfig {
            effort: 32,
            ..SplitConfig::default()
        },
    };
    let res = svc
        .run(request(rare_kind.clone()))
        .expect("rare job must run");
    let JobVerdict::RareProbability {
        p_hat,
        lower,
        upper,
        ..
    } = res.verdict
    else {
        panic!("wrong verdict kind: {:?}", res.verdict);
    };
    let exact = c.exact_probability();
    assert!(
        lower <= exact && exact <= upper,
        "[{lower}, {upper}] vs {exact}"
    );
    assert!(p_hat > 0.0);
    assert_eq!(
        JobVerdict::parse(&res.verdict.render()),
        Some(res.verdict.clone())
    );

    let priced_kind = JobKind::PricedSmc {
        pnet: Arc::clone(&pnet),
        rates: RatePolicy::new(),
        seed: 7,
        goal: c.goal(),
        cost_bound: f64::INFINITY,
        bound: c.time_bound(),
        runs: 500,
        confidence: 0.95,
    };
    let res = svc.run(request(priced_kind.clone())).expect("priced job");
    let JobVerdict::PricedProbability(est) = &res.verdict else {
        panic!("wrong verdict kind: {:?}", res.verdict);
    };
    assert!(est.lower <= exact && exact <= est.upper);
    assert_eq!(
        JobVerdict::parse(&res.verdict.render()),
        Some(res.verdict.clone())
    );

    // Cache keys: the same experiment shares a slot; a different seed or
    // splitting method does not.
    let budget = Budget::unlimited();
    assert_eq!(rare_kind.cache_key(&budget), rare_kind.cache_key(&budget));
    let other_seed = JobKind::RareEvent {
        net: Arc::clone(&net),
        rates: RatePolicy::new(),
        seed: 12,
        goal: c.goal(),
        bound: c.time_bound(),
        config: SplitConfig {
            effort: 32,
            ..SplitConfig::default()
        },
    };
    assert_ne!(rare_kind.cache_key(&budget), other_seed.cache_key(&budget));
    let other_method = JobKind::RareEvent {
        net: Arc::clone(&net),
        rates: RatePolicy::new(),
        seed: 11,
        goal: c.goal(),
        bound: c.time_bound(),
        config: SplitConfig {
            effort: 32,
            method: SplitMethod::Restart,
            ..SplitConfig::default()
        },
    };
    assert_ne!(
        rare_kind.cache_key(&budget),
        other_method.cache_key(&budget)
    );
    assert!(!rare_kind.persists_to_disk());
    assert!(!priced_kind.persists_to_disk());
    svc.shutdown();
}
