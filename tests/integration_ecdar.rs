//! Integration test: the ECDAR specification theory against the rest of
//! the toolkit — most importantly the *cross-theory consistency* between
//! refinement (ECDAR, §II) and timed conformance testing (rtioco, §V):
//! an implementation whose response delay is `d` refines the deadline-3
//! contract exactly when online rtioco testing passes it.

use tempo_core::ecdar::{
    conjunction, find_inconsistency, parallel, refines, Tioa, TioaAtom, TioaBuilder,
};
use tempo_core::ioco::TimedTester;
use tempo_models::vending::{controller_spec, FixedDelayController};

/// TIOA model of the deadline-`d` request/response contract.
fn contract(deadline: i64) -> Tioa {
    let mut b = TioaBuilder::new("Contract");
    let t = b.clock("t");
    let idle = b.location("Idle");
    let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(t, deadline)]);
    b.input(idle, busy, "req").reset(t).done();
    b.output(busy, idle, "resp").done();
    b.build()
}

/// TIOA model of an implementation that responds after exactly `d`.
fn fixed_delay(d: i64) -> Tioa {
    let mut b = TioaBuilder::new("Fixed");
    let t = b.clock("t");
    let idle = b.location("Idle");
    let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(t, d)]);
    b.input(idle, busy, "req").reset(t).done();
    b.output(busy, idle, "resp")
        .guard(TioaAtom::ge(t, d))
        .done();
    b.build()
}

#[test]
fn refinement_and_rtioco_agree_on_the_deadline() {
    let spec_tioa = contract(3);
    let spec_net = controller_spec(3);
    for delay in 0..=6 {
        let should_conform = delay <= 3;
        // ECDAR view: alternating timed simulation.
        let refine_ok = refines(&fixed_delay(delay), &spec_tioa).is_ok();
        assert_eq!(
            refine_ok, should_conform,
            "refinement verdict for delay {delay}"
        );
        // rtioco view: online testing in simulated time.
        let mut tester = TimedTester::new(&spec_net, &["req"], &["resp"], 11);
        let mut iut = FixedDelayController::new(delay);
        let (failures, _) = tester.campaign(&mut iut, 25, 40);
        assert_eq!(
            failures == 0,
            should_conform,
            "rtioco verdict for delay {delay}: {failures}/25 failures"
        );
    }
}

#[test]
fn refinement_is_a_preorder_on_the_ladder() {
    // Tighter deadlines refine looser ones: D2 ≤ D4 ≤ D8.
    let d2 = contract(2);
    let d4 = contract(4);
    let d8 = contract(8);
    assert!(refines(&d2, &d4).is_ok());
    assert!(refines(&d4, &d8).is_ok());
    assert!(refines(&d2, &d8).is_ok(), "transitivity on the ladder");
    assert!(refines(&d8, &d4).is_err());
    // Reflexivity.
    for c in [&d2, &d4, &d8] {
        assert!(refines(c, c).is_ok());
    }
}

#[test]
fn conjunction_is_the_tightest_common_contract() {
    let early = {
        // resp no earlier than 2.
        let mut b = TioaBuilder::new("NotBefore2");
        let t = b.clock("t");
        let idle = b.location("Idle");
        let busy = b.location_with_invariant("Busy", vec![TioaAtom::le(t, 9)]);
        b.input(idle, busy, "req").reset(t).done();
        b.output(busy, idle, "resp")
            .guard(TioaAtom::ge(t, 2))
            .done();
        b.build()
    };
    let late = contract(5); // resp no later than 5.
    let band = conjunction(&early, &late).expect("same interface");
    assert!(refines(&band, &early).is_ok());
    assert!(refines(&band, &late).is_ok());
    // An implementation inside the band refines the conjunction …
    assert!(refines(&fixed_delay(3), &band).is_ok());
    // … and ones outside it do not.
    assert!(refines(&fixed_delay(1), &band).is_err());
    assert!(refines(&fixed_delay(6), &band).is_err());
}

#[test]
fn composition_preserves_consistency_and_contracts() {
    let responder = fixed_delay(2);
    let logger = {
        let mut b = TioaBuilder::new("Logger");
        let y = b.clock("y");
        let w = b.location("Wait");
        // The logger commits to logging within 2 time units; without this
        // deadline the composite could delay `log` forever and would
        // (correctly) fail to refine the end-to-end contract below.
        let n = b.location_with_invariant("Note", vec![TioaAtom::le(y, 2)]);
        b.input(w, n, "resp").reset(y).done();
        b.output(n, w, "log").done();
        b.build()
    };
    let sys = parallel(&responder, &logger).expect("compatible");
    assert!(find_inconsistency(&sys).is_none());
    // End-to-end contract over the composite alphabet: after req, a log
    // eventually (within 12).
    let e2e = {
        let mut b = TioaBuilder::new("E2E");
        let t = b.clock("t");
        let idle = b.location("Idle");
        let pending = b.location_with_invariant("Pending", vec![TioaAtom::le(t, 12)]);
        b.input(idle, pending, "req").reset(t).done();
        b.output(pending, pending, "resp").done();
        b.output(pending, idle, "log").done();
        b.build()
    };
    assert!(refines(&sys, &e2e).is_ok());
}
